//! Bounded lock-free single-producer/single-consumer rings with
//! adaptive spin-then-park waiting.
//!
//! The sharded event loop (`radar-sim`'s `simulate --shards N`) moves
//! work between the sequencer thread and its decision workers. With
//! `std::sync::mpsc` every hand-off paid a Mutex-guarded enqueue plus a
//! wake, and the waiting side burned a core in a `spin_loop` poll. This
//! module replaces that transport:
//!
//! * [`channel`] — a fixed-capacity SPSC ring. One atomic head, one
//!   atomic tail, each on its own cache line, so the producer and the
//!   consumer never contend on anything but the slot they exchange.
//! * [`Doorbell`] — a park/unpark wake-up flag. Several rings can share
//!   one bell, which is how the sequencer sleeps on *all* of its
//!   per-worker reply rings at once.
//! * [`Backoff`] — the adaptive spin-then-park wait policy: spin
//!   briefly (the common case when the peer is mid-reply), yield a few
//!   times (the single-core case, where spinning only starves the
//!   peer), then park on the bell. A wait that ends in a park teaches
//!   the next wait to skip the spin phase, so a lane that is genuinely
//!   idle stops burning its core immediately.
//!
//! Both halves are single-owner (`&mut self` on every operation and no
//! `Clone`), which is what makes the unchecked slot access sound; see
//! the safety notes on the private `Ring` type.

// The ring's slot array is the workspace's one other sanctioned
// `unsafe` site (next to the counting allocator in `radar-bench`):
// `UnsafeCell<MaybeUninit<T>>` slots handed off by a Release/Acquire
// head/tail protocol. Every unsafe block carries its invariant.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;

/// Pads (and aligns) a value to a cache line so the producer's tail and
/// the consumer's head never false-share. 128 bytes covers the common
/// 64-byte line and the 128-byte prefetch pairs on recent x86.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// A park/unpark wake-up flag shared by a waiting consumer and the
/// producer(s) that feed it.
///
/// The consumer calls [`park_until`](Doorbell::park_until) with a
/// readiness check; producers call [`ring`](Doorbell::ring) after
/// publishing work. The flag makes the hand-off race-free: the consumer
/// announces it is going to sleep *before* its final readiness check,
/// and a producer that observes the announcement clears it and unparks.
/// A wake-up delivered between the announcement and the park is banked
/// by `std::thread::park`'s permit, so no wake-up is ever lost.
#[derive(Debug, Default)]
pub struct Doorbell {
    /// True while the consumer is (about to go) asleep.
    sleeping: AtomicBool,
    /// The consumer thread's handle, registered on its first wait.
    waiter: OnceLock<Thread>,
}

impl Doorbell {
    /// Creates a bell nobody is sleeping on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes the consumer if it is parked (or about to park). Called by
    /// producers after publishing work; a no-op while the consumer is
    /// awake, so steady-state hand-offs never touch the scheduler.
    pub fn ring(&self) {
        // SeqCst pairs with the fence in `park_until`: either this swap
        // observes `sleeping == true` (and unparks), or the consumer's
        // readiness check observes the work published before this call.
        if self.sleeping.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.waiter.get() {
                t.unpark();
            }
        }
    }

    /// Parks the calling thread until `ready()` holds. Returns as soon
    /// as the condition is observed; spurious wake-ups re-check it.
    /// Must only ever be called from one thread per bell (the consumer).
    pub fn park_until(&self, mut ready: impl FnMut() -> bool) {
        self.waiter.get_or_init(std::thread::current);
        loop {
            self.sleeping.store(true, Ordering::SeqCst);
            // Order the sleep announcement before the readiness check;
            // pairs with the SeqCst swap in `ring`.
            fence(Ordering::SeqCst);
            if ready() {
                self.sleeping.store(false, Ordering::Relaxed);
                return;
            }
            std::thread::park();
            self.sleeping.store(false, Ordering::Relaxed);
            if ready() {
                return;
            }
        }
    }
}

/// Spin iterations before the first yield, when the last wait found
/// work without parking.
const SPIN_LIMIT: u32 = 64;
/// `yield_now` calls between spinning and parking — on a single core
/// this is the step that actually lets the peer run.
const YIELD_LIMIT: u32 = 4;

/// The adaptive spin-then-park wait policy.
///
/// Call [`idle`](Backoff::idle) each time a poll comes up empty and
/// [`success`](Backoff::success) when work is found. Escalation per
/// wait: spin → yield → park on the [`Doorbell`]. A wait that had to
/// park teaches the next wait to skip straight to yielding (the lane is
/// evidently not in a tight hand-off loop), and a wait satisfied
/// without parking restores the spin phase.
#[derive(Debug)]
pub struct Backoff {
    /// Empty polls in the current wait.
    step: u32,
    /// Spin budget for the current wait (0 right after a parked wait).
    spin_limit: u32,
    /// Whether the current wait has parked at least once.
    parked: bool,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// A fresh policy with the full spin budget.
    pub fn new() -> Self {
        Backoff {
            step: 0,
            spin_limit: SPIN_LIMIT,
            parked: false,
        }
    }

    /// One empty poll: spins, yields, or parks on `bell` until `ready()`
    /// holds, depending on how long this wait has already lasted.
    pub fn idle(&mut self, bell: &Doorbell, ready: impl FnMut() -> bool) {
        if self.step < self.spin_limit {
            std::hint::spin_loop();
        } else if self.step < self.spin_limit + YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            self.parked = true;
            bell.park_until(ready);
        }
        self.step = self.step.saturating_add(1);
    }

    /// Work was found: reset for the next wait, adapting the spin budget
    /// to whether this wait had to park.
    pub fn success(&mut self) {
        self.spin_limit = if self.parked { 0 } else { SPIN_LIMIT };
        self.parked = false;
        self.step = 0;
    }
}

/// The shared ring buffer. `head` is only advanced by the consumer,
/// `tail` only by the producer; a slot is owned by the producer from
/// `tail` reservation to the `tail` publication, then by the consumer
/// until its `head` publication — the Release/Acquire pair on each
/// counter transfers the slot's contents.
struct Ring<T> {
    /// Slot-index mask (capacity is a power of two).
    mask: usize,
    /// Next slot the consumer will read. Monotonic, wraps via `mask`.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Monotonic, wraps via `mask`.
    tail: CachePadded<AtomicUsize>,
    /// Set by either half's drop; consumers treat empty+closed as EOF.
    closed: AtomicBool,
    /// Rung by the producer after every publication (and on close).
    bell: Arc<Doorbell>,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: the ring is shared between exactly one producer and one
// consumer thread (the halves are neither Clone nor operable through
// `&self`), and every slot hand-off is ordered by the Release/Acquire
// (or stronger) protocol on `head`/`tail`. `T: Send` is required
// because values cross from the producer's thread to the consumer's.
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: as above — concurrent access from the two owning threads is
// the designed use; all shared state is atomic or protocol-guarded.
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Sole owner now (both halves gone): drop undelivered values.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            // SAFETY: slots in [head, tail) were written by the
            // producer and never consumed; `get_mut` proves exclusive
            // access, so each is a validly initialized `T` read once.
            unsafe { self.slots[i & self.mask].get_mut().assume_init_drop() };
        }
    }
}

/// The sending half of a [`channel`]. Single-owner: all operations take
/// `&mut self` and the type is not `Clone`.
#[derive(Debug)]
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
}

/// The receiving half of a [`channel`]. Single-owner, like [`Sender`].
#[derive(Debug)]
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
}

impl<T> std::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &(self.mask + 1))
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Creates a bounded SPSC ring of at least `capacity` slots (rounded up
/// to a power of two) whose consumer sleeps on `bell`. Pass a shared
/// bell to let one consumer wait on several rings at once.
pub fn channel<T>(capacity: usize, bell: Arc<Doorbell>) -> (Sender<T>, Receiver<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let ring = Arc::new(Ring {
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        bell,
        slots,
    });
    (
        Sender {
            ring: Arc::clone(&ring),
        },
        Receiver { ring },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, or hands it back when the ring is full. On
    /// success the consumer's bell is rung.
    pub fn try_send(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(ring.head.0.load(Ordering::Acquire)) > ring.mask {
            return Err(value);
        }
        // SAFETY: `tail` is this producer's exclusive cursor and the
        // capacity check above proves the consumer has released this
        // slot (head has advanced past its previous lap), so no other
        // access to it can be live.
        unsafe { (*ring.slots[tail & ring.mask].get()).write(value) };
        ring.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        ring.bell.ring();
        Ok(())
    }

    /// Number of enqueued-but-unreceived values (approximate under
    /// concurrency, exact bounds: never over-reports for the producer).
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(ring.head.0.load(Ordering::Acquire))
    }

    /// `true` when no value is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once the receiving half was dropped. Values already sent
    /// may never be received; producers should stop sending.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
        // Wake a parked consumer so it can observe EOF.
        self.ring.bell.ring();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        // Let the producer's next `is_closed` observe the hang-up.
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next value, or `None` when the ring is currently
    /// empty (closed or not — drain with [`is_closed`](Self::is_closed)
    /// to distinguish EOF).
    pub fn try_recv(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        if ring.tail.0.load(Ordering::Acquire) == head {
            return None;
        }
        // SAFETY: `head` is this consumer's exclusive cursor and the
        // tail check proves the producer published this slot; the
        // Acquire load ordered the slot write before this read, and
        // advancing `head` below releases the slot back.
        let value = unsafe { (*ring.slots[head & ring.mask].get()).assume_init_read() };
        ring.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// `true` once the other half was dropped. Values still in the ring
    /// remain receivable.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// `true` when no value is waiting. Usable from a [`Doorbell`]
    /// readiness closure (no `&mut` needed).
    pub fn is_empty(&self) -> bool {
        let ring = &*self.ring;
        ring.tail.0.load(Ordering::Acquire) == ring.head.0.load(Ordering::Relaxed)
    }

    /// The bell this receiver's producer rings.
    pub fn bell(&self) -> &Arc<Doorbell> {
        &self.ring.bell
    }

    /// Blocking receive with the adaptive [`Backoff`] policy: returns
    /// the next value, or `None` once the ring is closed and drained.
    pub fn recv(&mut self, backoff: &mut Backoff) -> Option<T> {
        loop {
            if let Some(value) = self.try_recv() {
                backoff.success();
                return Some(value);
            }
            if self.is_closed() {
                // Re-check after observing the close: the producer may
                // have published between our empty poll and its drop.
                let value = self.try_recv();
                if value.is_some() {
                    backoff.success();
                }
                return value;
            }
            let ring = Arc::clone(&self.ring);
            self.ring.bell.park_ready_check(backoff, || {
                ring.tail.0.load(Ordering::SeqCst) != ring.head.0.load(Ordering::SeqCst)
                    || ring.closed.load(Ordering::SeqCst)
            });
        }
    }
}

impl Doorbell {
    /// One escalation step of `backoff` against this bell — split out so
    /// `Receiver::recv` can borrow the ring inside the readiness check.
    fn park_ready_check(&self, backoff: &mut Backoff, ready: impl FnMut() -> bool) {
        backoff.idle(self, ready);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let bell = Arc::new(Doorbell::new());
        let (mut tx, mut rx) = channel::<u32>(4, bell);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx.try_send(99), Err(99), "ring holds exactly capacity");
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
        assert!(rx.is_empty() && tx.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (mut tx, _rx) = channel::<u8>(5, Arc::new(Doorbell::new()));
        for i in 0..8 {
            tx.try_send(i).unwrap();
        }
        assert!(tx.try_send(8).is_err());
    }

    #[test]
    fn wrapping_reuse_of_slots() {
        let (mut tx, mut rx) = channel::<u64>(2, Arc::new(Doorbell::new()));
        for round in 0..1000u64 {
            tx.try_send(round).unwrap();
            assert_eq!(rx.try_recv(), Some(round));
        }
    }

    #[test]
    fn close_is_observed_after_drain() {
        let (mut tx, mut rx) = channel::<String>(4, Arc::new(Doorbell::new()));
        tx.try_send("last".to_string()).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        let mut backoff = Backoff::new();
        assert_eq!(rx.recv(&mut backoff).as_deref(), Some("last"));
        assert_eq!(rx.recv(&mut backoff), None, "closed and drained");
    }

    #[test]
    fn undelivered_values_drop_exactly_once() {
        #[derive(Debug)]
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut tx, rx) = channel::<Counted>(8, Arc::new(Doorbell::new()));
        for _ in 0..5 {
            tx.try_send(Counted(Arc::clone(&drops))).unwrap();
        }
        drop(rx);
        drop(tx);
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn cross_thread_stress_with_parking() {
        // A tiny ring forces constant wrap-around and full/empty edges;
        // the consumer uses the blocking recv (park path included).
        const N: u64 = 200_000;
        let bell = Arc::new(Doorbell::new());
        let (mut tx, mut rx) = channel::<u64>(4, bell);
        let consumer = std::thread::spawn(move || {
            let mut backoff = Backoff::new();
            let mut sum = 0u64;
            let mut expect = 0u64;
            while let Some(v) = rx.recv(&mut backoff) {
                assert_eq!(v, expect, "FIFO order violated");
                expect += 1;
                sum = sum.wrapping_add(v);
            }
            sum
        });
        let mut full_spins = 0u64;
        for i in 0..N {
            let mut v = i;
            while let Err(back) = tx.try_send(v) {
                v = back;
                full_spins += 1;
                std::thread::yield_now();
            }
        }
        drop(tx);
        let sum = consumer.join().expect("consumer clean exit");
        assert_eq!(sum, N * (N - 1) / 2);
        // With capacity 4 and 200k sends the producer must have hit the
        // full edge at least once on any realistic scheduler; the check
        // documents that the test really exercised it (not a hard
        // guarantee, so only assert when it happened).
        let _ = full_spins;
    }

    #[test]
    fn doorbell_wakes_a_parked_consumer() {
        let bell = Arc::new(Doorbell::new());
        let (mut tx, mut rx) = channel::<u32>(2, Arc::clone(&bell));
        let consumer = std::thread::spawn(move || {
            let mut backoff = Backoff::new();
            // Force the park path immediately: no spin budget.
            backoff.spin_limit = 0;
            backoff.step = YIELD_LIMIT + 1;
            rx.recv(&mut backoff)
        });
        // Give the consumer time to reach the park (best-effort; the
        // protocol is correct regardless of whether it actually parked).
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.try_send(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn backoff_adapts_after_a_park() {
        let bell = Doorbell::new();
        let mut b = Backoff::new();
        assert_eq!(b.spin_limit, SPIN_LIMIT);
        // A wait that escalates all the way to the bell...
        let mut polls = 0u32;
        while !b.parked {
            b.idle(&bell, || {
                polls += 1;
                true // ready immediately: park_until returns at once
            });
        }
        b.success();
        // ...teaches the next wait to skip the spin phase entirely.
        assert_eq!(b.spin_limit, 0);
        b.parked = true;
        b.success();
        assert_eq!(b.spin_limit, 0);
        b.success();
        assert_eq!(b.spin_limit, SPIN_LIMIT, "clean wait restores spinning");
    }
}
