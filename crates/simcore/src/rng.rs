//! Seeded random number generation for reproducible experiments.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulation's random number generator: a [`StdRng`] seeded from a
/// single `u64`, with the handful of sampling helpers the workloads need.
///
/// Every experiment in the reproduction is a pure function of
/// `(scenario, seed)`; all randomness flows through this type.
///
/// # Examples
///
/// ```
/// use radar_simcore::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.index(1000), b.index(1000)); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator, e.g. one per traffic
    /// source, so adding a source does not perturb the others' streams.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id into fresh seed material drawn from self.
        let base = self.inner.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform sample from `range` (e.g. `0..53`, `0.0..2.5`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// A uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot sample an index from an empty collection");
        self.inner.gen_range(0..len)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed sample with the given `rate`
    /// (mean `1/rate`), for Poisson arrival processes.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive and finite, got {rate}"
        );
        // Inverse-CDF; 1-unit() is in (0,1] so ln() is finite.
        -(1.0 - self.unit()).ln() / rate
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5, "streams should diverge, {same} collisions");
    }

    #[test]
    fn forked_streams_are_independent_and_reproducible() {
        let mut root1 = SimRng::seed_from(99);
        let mut root2 = SimRng::seed_from(99);
        let mut c1 = root1.fork(3);
        let mut c2 = root2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut root3 = SimRng::seed_from(99);
        let mut other = root3.fork(4);
        // Extremely unlikely to collide if streams differ.
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = r.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(5.0)); // clamped
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut r = SimRng::seed_from(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn index_bounds() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn index_of_empty_panics() {
        let mut r = SimRng::seed_from(3);
        let _ = r.index(0);
    }

    #[test]
    #[should_panic(expected = "exponential rate")]
    fn bad_exponential_rate_panics() {
        let mut r = SimRng::seed_from(3);
        let _ = r.exponential(0.0);
    }
}
