//! Seeded random number generation for reproducible experiments.
//!
//! The generator is a self-contained xoshiro256++ implementation seeded
//! through SplitMix64, so the whole workspace builds without any external
//! crates and every stream is stable across platforms and compiler
//! versions.

/// The simulation's random number generator: xoshiro256++ seeded from a
/// single `u64` via SplitMix64, with the handful of sampling helpers the
/// workloads need.
///
/// Every experiment in the reproduction is a pure function of
/// `(scenario, seed)`; all randomness flows through this type.
///
/// # Examples
///
/// ```
/// use radar_simcore::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.index(1000), b.index(1000)); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            *slot = splitmix64(&mut sm);
        }
        // SplitMix64 cannot emit four zeros for any seed, but guard the
        // all-zero fixed point anyway.
        if state == [0; 4] {
            state = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { state }
    }

    /// Derives an independent child generator, e.g. one per traffic
    /// source, so adding a source does not perturb the others' streams.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id into fresh seed material drawn from self.
        let base = self.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next raw 64-bit output of the generator.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// The next raw 32-bit output (high bits of [`next_u64`](Self::next_u64)).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)`, built from the top 53 bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, len)`.
    ///
    /// Uses Lemire's widening-multiply rejection method, so every index
    /// is exactly equally likely.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot sample an index from an empty collection");
        let n = len as u64;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            // Reject the partial final stripe to stay unbiased.
            if lo >= n.wrapping_neg() % n {
                return hi as usize;
            }
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed sample with the given `rate`
    /// (mean `1/rate`), for Poisson arrival processes.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive and finite, got {rate}"
        );
        // Inverse-CDF; 1-unit() is in (0,1] so ln() is finite.
        -(1.0 - self.unit()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5, "streams should diverge, {same} collisions");
    }

    #[test]
    fn forked_streams_are_independent_and_reproducible() {
        let mut root1 = SimRng::seed_from(99);
        let mut root2 = SimRng::seed_from(99);
        let mut c1 = root1.fork(3);
        let mut c2 = root2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut root3 = SimRng::seed_from(99);
        let mut other = root3.fork(4);
        // Extremely unlikely to collide if streams differ.
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = r.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn unit_mean_close_to_half() {
        let mut r = SimRng::seed_from(17);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(5.0)); // clamped
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut r = SimRng::seed_from(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn index_bounds() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn index_covers_all_values() {
        let mut r = SimRng::seed_from(8);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn index_of_empty_panics() {
        let mut r = SimRng::seed_from(3);
        let _ = r.index(0);
    }

    #[test]
    #[should_panic(expected = "exponential rate")]
    fn bad_exponential_rate_panics() {
        let mut r = SimRng::seed_from(3);
        let _ = r.exponential(0.0);
    }
}
