//! Future-event list with deterministic ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A single scheduled entry in the heap. Ordering is by time, then by
/// insertion sequence number, so simultaneous events dequeue in the order
/// they were scheduled (FIFO tie-break) — the property that makes runs
/// reproducible.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future-event list of a discrete-event simulation.
///
/// Events carry an arbitrary payload `E`. [`pop`](Self::pop) returns
/// events in non-decreasing time order; events scheduled for the same
/// instant come out in scheduling order.
///
/// The queue also tracks the current simulation time: popping an event
/// advances [`now`](Self::now) to that event's timestamp, and scheduling
/// into the past is rejected (a scheduling bug would otherwise silently
/// corrupt causality).
///
/// # Examples
///
/// ```
/// use radar_simcore::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), "later");
/// q.schedule(SimTime::from_secs(1.0), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "sooner")));
/// assert_eq!(q.now(), SimTime::from_secs(1.0));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E: std::fmt::Debug> std::fmt::Debug for Scheduled<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduled")
            .field("time", &self.time)
            .field("seq", &self.seq)
            .field("payload", &self.payload)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time — the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`now`](Self::now) — scheduling
    /// into the past is always a simulation bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "cannot schedule event at {time} before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Reserves the next insertion sequence number without scheduling
    /// anything.
    ///
    /// A reserved number can later be attached to an event via
    /// [`schedule_reserved`](Self::schedule_reserved). This lets a caller
    /// that *defers* work (e.g. a parallel decision stage) pin down, at
    /// defer time, exactly where the eventual event will sort among
    /// simultaneous events — so the deferred schedule is indistinguishable
    /// from having scheduled immediately. Unused reservations are harmless:
    /// sequence numbers only break ties, so gaps never reorder anything.
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Reserves `count` consecutive insertion sequence numbers and
    /// returns the first of the run.
    ///
    /// Equivalent to `count` calls of [`reserve_seq`](Self::reserve_seq)
    /// with nothing scheduled in between: the reserved numbers are
    /// `first..first + count`. A batching caller (e.g. the sharded event
    /// loop deferring a whole run of decisions at once) uses this to pin
    /// every item of the run with one reservation instead of `count`.
    pub fn reserve_seqs(&mut self, count: u64) -> u64 {
        let first = self.next_seq;
        self.next_seq += count;
        first
    }

    /// Schedules `payload` at `time` under a sequence number previously
    /// obtained from [`reserve_seq`](Self::reserve_seq).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`now`](Self::now), or if `seq`
    /// was never reserved (i.e. is not below the current sequence
    /// counter).
    pub fn schedule_reserved(&mut self, time: SimTime, seq: u64, payload: E) {
        assert!(
            time >= self.now,
            "cannot schedule event at {time} before current time {}",
            self.now
        );
        assert!(seq < self.next_seq, "sequence {seq} was never reserved");
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the simulation has run dry.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "event queue emitted out of order");
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.time)
    }

    /// Full ordering key `(time, seq)` of the next event without removing
    /// it. Useful for callers that compare the queue head against deferred
    /// work holding [reserved](Self::reserve_seq) sequence numbers.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|ev| (ev.time, ev.seq))
    }

    /// Payload of the next event without removing it. Lets a dispatcher
    /// inspect the head (e.g. to decide whether it can be coalesced into
    /// a batch) before committing to the pop.
    pub fn peek(&self) -> Option<&E> {
        self.heap.peek().map(|ev| &ev.payload)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), "a");
        q.pop();
        q.schedule(SimTime::from_secs(1.0), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "b")));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2.0), ());
        q.schedule(SimTime::from_secs(1.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
    }

    #[test]
    fn reserved_seq_orders_like_immediate_schedule() {
        // Reserving a sequence at defer time and scheduling later must
        // sort exactly where an immediate schedule would have.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        q.schedule(t, "a"); // seq 0
        let held = q.reserve_seq(); // seq 1
        q.schedule(t, "c"); // seq 2
        q.schedule_reserved(t, held, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn unused_reservations_leave_gaps_harmlessly() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), "x"); // seq 0
        let _dropped = q.reserve_seq(); // seq 1, never scheduled
        q.schedule(SimTime::from_secs(1.0), "y"); // seq 2
        assert_eq!(q.pop().unwrap().1, "x");
        assert_eq!(q.pop().unwrap().1, "y");
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "never reserved")]
    fn scheduling_unreserved_seq_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_reserved(SimTime::from_secs(1.0), 7, ());
    }

    #[test]
    fn reserve_seqs_matches_repeated_reserve_seq() {
        // A block reservation must pin items exactly where per-item
        // reservations would have.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        q.schedule(t, "a"); // seq 0
        let first = q.reserve_seqs(3); // seqs 1, 2, 3
        assert_eq!(first, 1);
        q.schedule(t, "e"); // seq 4
        q.schedule_reserved(t, first + 2, "d");
        q.schedule_reserved(t, first, "b");
        q.schedule_reserved(t, first + 1, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn peek_exposes_head_payload() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek(), None);
        q.schedule(SimTime::from_secs(2.0), "late");
        q.schedule(SimTime::from_secs(1.0), "early");
        assert_eq!(q.peek(), Some(&"early"));
        assert_eq!(q.len(), 2, "peek must not consume");
    }

    #[test]
    fn peek_key_exposes_time_and_seq() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_key(), None);
        q.schedule(SimTime::from_secs(2.0), "late"); // seq 0
        q.schedule(SimTime::from_secs(1.0), "early"); // seq 1
        assert_eq!(q.peek_key(), Some((SimTime::from_secs(1.0), 1)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // A popped handler scheduling new events keeps global ordering.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), "first");
        let (t, _) = q.pop().unwrap();
        q.schedule(t + crate::SimDuration::from_secs(1.0), "second");
        q.schedule(t + crate::SimDuration::from_secs(0.5), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "second");
    }
}
