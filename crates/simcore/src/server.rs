//! First-come-first-serve server with busy-until arithmetic.

use crate::{SimDuration, SimTime};

/// What happened to a request offered to a [`FifoServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// When service began (arrival time, or later if the queue was busy).
    pub start: SimTime,
    /// When service finished and the response left the server.
    pub completion: SimTime,
}

impl ServiceOutcome {
    /// Time the request spent waiting before service began.
    pub fn queueing_delay(&self, arrival: SimTime) -> SimDuration {
        self.start.saturating_since(arrival)
    }

    /// Total time at the server (queueing + service).
    pub fn sojourn(&self, arrival: SimTime) -> SimDuration {
        self.completion.saturating_since(arrival)
    }
}

/// A single-queue FIFO server with deterministic per-request service time.
///
/// The paper's host model: "Each node services requests one by one in
/// first-come-first-serve order" at a fixed capacity (200 req/s ⇒ a 5 ms
/// service time). Because service is FIFO and non-preemptive, the queue
/// never needs to be materialized: a request arriving at `t` starts at
/// `max(t, busy_until)` and the server's `busy_until` advances by one
/// service time. This keeps the simulator at O(1) per request.
///
/// # Examples
///
/// ```
/// use radar_simcore::{FifoServer, SimDuration, SimTime};
/// let mut host = FifoServer::new(SimDuration::from_millis(5.0));
/// let a = host.offer(SimTime::from_secs(0.0));
/// let b = host.offer(SimTime::from_secs(0.0)); // queues behind `a`
/// assert_eq!(a.completion.as_secs(), 0.005);
/// assert_eq!(b.start.as_secs(), 0.005);
/// assert_eq!(b.completion.as_secs(), 0.010);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoServer {
    service_time: SimDuration,
    busy_until: SimTime,
    serviced: u64,
    busy_time: SimDuration,
}

impl FifoServer {
    /// Creates a server with the given fixed service time per request.
    ///
    /// # Panics
    ///
    /// Panics if `service_time` is zero (an infinite-capacity server hides
    /// configuration errors; model one explicitly if needed).
    pub fn new(service_time: SimDuration) -> Self {
        assert!(
            !service_time.is_zero(),
            "service time must be positive; an infinite-capacity server is almost always a config bug"
        );
        Self {
            service_time,
            busy_until: SimTime::ZERO,
            serviced: 0,
            busy_time: SimDuration::ZERO,
        }
    }

    /// Creates a server from a capacity in requests/second.
    ///
    /// # Panics
    ///
    /// Panics if `requests_per_sec` is not strictly positive and finite.
    pub fn with_capacity(requests_per_sec: f64) -> Self {
        assert!(
            requests_per_sec.is_finite() && requests_per_sec > 0.0,
            "capacity must be positive and finite, got {requests_per_sec}"
        );
        Self::new(SimDuration::from_secs(1.0 / requests_per_sec))
    }

    /// The fixed per-request service time.
    pub fn service_time(&self) -> SimDuration {
        self.service_time
    }

    /// Accepts a request arriving at `arrival` and returns when it starts
    /// and completes service.
    ///
    /// Arrivals may be offered in any order relative to `busy_until`, but
    /// within a simulation they should be offered in non-decreasing
    /// arrival order for the FIFO discipline to be meaningful.
    pub fn offer(&mut self, arrival: SimTime) -> ServiceOutcome {
        let start = self.busy_until.max(arrival);
        let completion = start + self.service_time;
        self.busy_until = completion;
        self.serviced += 1;
        self.busy_time += self.service_time;
        ServiceOutcome { start, completion }
    }

    /// The time at which the server will next be idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Number of requests in (or through) the queue whose service has not
    /// completed by `now` — the instantaneous backlog, including the one
    /// in service.
    pub fn backlog_at(&self, now: SimTime) -> u64 {
        let remaining = self.busy_until.saturating_since(now);
        // Ceiling division: a partially served request still counts.
        let st = self.service_time.as_micros();
        remaining.as_micros().div_ceil(st)
    }

    /// Total number of requests ever accepted.
    pub fn serviced(&self) -> u64 {
        self.serviced
    }

    /// Cumulative time spent serving (busy time), for utilization reports.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Utilization over `[0, now]`: busy time divided by elapsed time.
    /// Returns 0 at time zero.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        // busy_time may exceed `now` if work is still queued; clamp to 1.
        (self.busy_time.as_secs() / now.as_secs()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: f64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new(ms(5.0));
        let out = s.offer(at(1.0));
        assert_eq!(out.start, at(1.0));
        assert_eq!(out.completion.as_secs(), 1.005);
        assert_eq!(out.queueing_delay(at(1.0)), SimDuration::ZERO);
        assert_eq!(out.sojourn(at(1.0)), ms(5.0));
    }

    #[test]
    fn busy_server_queues() {
        let mut s = FifoServer::new(ms(10.0));
        s.offer(at(0.0));
        let out = s.offer(at(0.001));
        assert_eq!(out.start.as_secs(), 0.010);
        assert_eq!(out.completion.as_secs(), 0.020);
        assert_eq!(out.queueing_delay(at(0.001)).as_secs(), 0.009);
    }

    #[test]
    fn queue_drains_when_arrivals_slow() {
        let mut s = FifoServer::new(ms(5.0));
        s.offer(at(0.0));
        // Next arrival long after the first completes: no queueing.
        let out = s.offer(at(1.0));
        assert_eq!(out.start, at(1.0));
    }

    #[test]
    fn with_capacity_sets_service_time() {
        let s = FifoServer::with_capacity(200.0);
        assert_eq!(s.service_time(), ms(5.0));
    }

    #[test]
    fn backlog_counts_queued_and_in_service() {
        let mut s = FifoServer::new(ms(10.0));
        for _ in 0..5 {
            s.offer(at(0.0));
        }
        assert_eq!(s.backlog_at(at(0.0)), 5);
        assert_eq!(s.backlog_at(at(0.015)), 4); // one done, one half-served
        assert_eq!(s.backlog_at(at(0.050)), 0);
    }

    #[test]
    fn serviced_and_busy_time_accumulate() {
        let mut s = FifoServer::new(ms(5.0));
        s.offer(at(0.0));
        s.offer(at(10.0));
        assert_eq!(s.serviced(), 2);
        assert_eq!(s.busy_time(), ms(10.0));
        assert!((s.utilization(at(10.005)) - 0.01 / 10.005).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamps_to_one_under_overload() {
        let mut s = FifoServer::new(ms(100.0));
        for _ in 0..100 {
            s.offer(at(0.0));
        }
        assert_eq!(s.utilization(at(1.0)), 1.0);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "service time must be positive")]
    fn zero_service_time_rejected() {
        let _ = FifoServer::new(SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bad_capacity_rejected() {
        let _ = FifoServer::with_capacity(0.0);
    }
}
