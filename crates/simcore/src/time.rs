//! Integer simulation clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in simulated time, measured in integer microseconds since the
/// start of the run.
///
/// An integer clock keeps the future-event list's ordering exact: two
/// events scheduled from the same arithmetic always compare identically,
/// so simulations are bit-reproducible given the same seed. Microsecond
/// resolution is 5000× finer than the finest constant in the paper's
/// parameter table (5 ms service time), so rounding is negligible.
///
/// # Examples
///
/// ```
/// use radar_simcore::{SimDuration, SimTime};
/// let t = SimTime::from_secs(1.5) + SimDuration::from_millis(250.0);
/// assert_eq!(t.as_secs(), 1.75);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from (non-negative, finite) seconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    /// The time as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The time as floating-point seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Saturating subtraction producing a duration (zero if `earlier` is
    /// actually later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs())
    }
}

/// A span of simulated time in integer microseconds.
///
/// # Examples
///
/// ```
/// use radar_simcore::SimDuration;
/// let d = SimDuration::from_millis(10.0) * 3;
/// assert_eq!(d.as_secs(), 0.03);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }

    /// Creates a duration from (non-negative, finite) milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative, NaN, or too large to represent.
    pub fn from_millis(millis: f64) -> Self {
        Self::from_secs(millis / 1e3)
    }

    /// The duration as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration as floating-point seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs())
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time must be finite and non-negative, got {secs}"
    );
    let micros = secs * MICROS_PER_SEC as f64;
    assert!(
        micros <= u64::MAX as f64,
        "time {secs}s overflows the simulation clock"
    );
    micros.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Duration between two times.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, wraps in release) if `rhs` is later than
    /// `self`; use [`SimTime::saturating_since`] when order is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(1.0).as_micros(), 1_000_000);
        assert_eq!(SimTime::from_micros(500).as_secs(), 0.0005);
        assert_eq!(SimDuration::from_millis(10.0).as_micros(), 10_000);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn rounding_to_nearest_microsecond() {
        assert_eq!(SimTime::from_secs(0.0000004).as_micros(), 0);
        assert_eq!(SimTime::from_secs(0.0000006).as_micros(), 1);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_rejected() {
        let _ = SimDuration::from_secs(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2.0);
        let d = SimDuration::from_secs(0.5);
        assert_eq!((t + d).as_secs(), 2.5);
        assert_eq!((t + d) - t, d);
        assert_eq!((d * 4).as_secs(), 2.0);
        assert_eq!((d / 2).as_secs(), 0.25);
        let mut acc = t;
        acc += d;
        assert_eq!(acc.as_secs(), 2.5);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!(b.saturating_since(a).as_secs(), 2.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1.0) < SimTime::from_secs(1.000001));
        assert!(SimTime::MAX > SimTime::from_secs(1e9));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=3).map(|i| SimDuration::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 6.0);
    }

    #[test]
    fn display_formats_in_seconds() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_millis(2.0).to_string(), "0.002000s");
    }
}
