//! Deterministic discrete-event simulation engine.
//!
//! The paper's evaluation (§6) is "an event-driven simulation of our
//! algorithm" built on an in-house simulator toolkit. That toolkit is not
//! available, so this crate rebuilds the substrate from scratch:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer microsecond clock. Using
//!   integers (not `f64`) keeps event ordering exact and runs perfectly
//!   reproducible across platforms.
//! * [`EventQueue`] — a binary-heap future-event list with FIFO
//!   tie-breaking for simultaneous events, the classic DES core.
//! * [`FifoServer`] — the paper's host service model: "Each node services
//!   requests one by one in first-come-first-serve order" with a fixed
//!   per-request service time (capacity 200 req/s ⇒ 5 ms). Implemented
//!   with busy-until arithmetic so no extra events are needed per request.
//! * [`PeriodicTimer`] — placement-decision (100 s) and load-measurement
//!   (20 s) ticks.
//! * [`SimRng`] — a seeded `rand` wrapper so every experiment is
//!   reproducible from a single `u64` seed.
//! * [`spsc`] — bounded lock-free single-producer/single-consumer rings
//!   with adaptive spin-then-park waiting, the transport under the
//!   sharded event loop's sequencer↔worker hand-off.
//!
//! # Examples
//!
//! Run a tiny simulation that counts scheduled ticks:
//!
//! ```
//! use radar_simcore::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev {
//!     Tick(u32),
//! }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(1.0), Ev::Tick(1));
//! q.schedule(SimTime::from_secs(0.5), Ev::Tick(0));
//!
//! let mut order = Vec::new();
//! while let Some((t, ev)) = q.pop() {
//!     let Ev::Tick(n) = ev;
//!     order.push((t.as_secs(), n));
//! }
//! assert_eq!(order, vec![(0.5, 0), (1.0, 1)]);
//! ```

// `deny` rather than `forbid`: the `spsc` module carries the crate's
// one sanctioned `unsafe` site (the lock-free ring's slot array) behind
// a module-level allow with per-block safety comments.
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod event;
mod rng;
mod server;
pub mod spsc;
mod time;
mod timer;

pub use event::EventQueue;
pub use rng::SimRng;
pub use server::{FifoServer, ServiceOutcome};
pub use time::{SimDuration, SimTime};
pub use timer::PeriodicTimer;
