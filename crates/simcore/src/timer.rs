//! Periodic timers for placement decisions and load measurements.

use crate::{SimDuration, SimTime};

/// A fixed-period timer: fires at `start + k·period` for `k = 0, 1, 2, …`
/// (or `k = 1, 2, …` if created with [`PeriodicTimer::starting_after`]).
///
/// The simulator reschedules the next tick each time one fires; this type
/// just owns the arithmetic so phase errors can't creep in.
///
/// # Examples
///
/// ```
/// use radar_simcore::{PeriodicTimer, SimDuration, SimTime};
/// let mut t = PeriodicTimer::new(SimDuration::from_secs(100.0));
/// assert_eq!(t.next_fire(), SimTime::ZERO);
/// assert_eq!(t.fire().as_secs(), 0.0);
/// assert_eq!(t.next_fire().as_secs(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicTimer {
    period: SimDuration,
    next: SimTime,
}

impl PeriodicTimer {
    /// A timer firing at `0, period, 2·period, …`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: SimDuration) -> Self {
        Self::starting_at(SimTime::ZERO, period)
    }

    /// A timer firing at `start, start+period, …`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn starting_at(start: SimTime, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "timer period must be positive");
        Self {
            period,
            next: start,
        }
    }

    /// A timer whose first firing is one full period after `start` —
    /// the natural choice for "every 100 seconds" semantics where nothing
    /// should happen at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn starting_after(start: SimTime, period: SimDuration) -> Self {
        Self::starting_at(start + period, period)
    }

    /// The timer's period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// When the timer will next fire.
    pub fn next_fire(&self) -> SimTime {
        self.next
    }

    /// Consumes the pending firing, returning its time and arming the next.
    pub fn fire(&mut self) -> SimTime {
        let t = self.next;
        self.next = t + self.period;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_grid() {
        let mut t = PeriodicTimer::new(SimDuration::from_secs(20.0));
        let times: Vec<f64> = (0..4).map(|_| t.fire().as_secs()).collect();
        assert_eq!(times, vec![0.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn starting_after_skips_time_zero() {
        let mut t = PeriodicTimer::starting_after(SimTime::ZERO, SimDuration::from_secs(100.0));
        assert_eq!(t.fire().as_secs(), 100.0);
        assert_eq!(t.fire().as_secs(), 200.0);
    }

    #[test]
    fn starting_at_offset() {
        let mut t =
            PeriodicTimer::starting_at(SimTime::from_secs(5.0), SimDuration::from_secs(10.0));
        assert_eq!(t.fire().as_secs(), 5.0);
        assert_eq!(t.next_fire().as_secs(), 15.0);
    }

    #[test]
    #[should_panic(expected = "timer period must be positive")]
    fn zero_period_rejected() {
        let _ = PeriodicTimer::new(SimDuration::ZERO);
    }
}
