//! Property tests of the discrete-event engine: total ordering of the
//! event list and conservation laws of the FIFO server.

use proptest::prelude::*;
use radar_simcore::{EventQueue, FifoServer, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_queue_pops_sorted_and_stable(
        times in proptest::collection::vec(0u64..1_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), (t, seq));
        }
        let mut popped = Vec::new();
        while let Some((t, payload)) = q.pop() {
            prop_assert_eq!(t.as_micros(), payload.0);
            popped.push(payload);
        }
        prop_assert_eq!(popped.len(), times.len());
        // Non-decreasing times; equal times preserve scheduling order.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn event_queue_interleaved_operations_keep_order(
        ops in proptest::collection::vec((0u64..1_000, any::<bool>()), 1..200)
    ) {
        // Mix schedules and pops; popped timestamps must never go
        // backwards, and schedules always land at/after "now".
        let mut q = EventQueue::new();
        let mut last_popped = SimTime::ZERO;
        for &(dt, pop) in &ops {
            if pop {
                if let Some((t, ())) = q.pop() {
                    prop_assert!(t >= last_popped);
                    last_popped = t;
                }
            } else {
                let t = q.now() + SimDuration::from_micros(dt);
                q.schedule(t, ());
            }
        }
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last_popped);
            last_popped = t;
        }
    }

    #[test]
    fn fifo_server_conserves_work(
        gaps in proptest::collection::vec(0u64..20_000, 1..300),
        service_us in 1u64..10_000,
    ) {
        let mut server = FifoServer::new(SimDuration::from_micros(service_us));
        let mut t = SimTime::ZERO;
        let mut last_completion = SimTime::ZERO;
        let mut total_busy = 0u64;
        for &gap in &gaps {
            t += SimDuration::from_micros(gap);
            let out = server.offer(t);
            // FIFO: completions never reorder.
            prop_assert!(out.completion > last_completion);
            // Service starts no earlier than arrival and no earlier than
            // the previous completion.
            prop_assert!(out.start >= t);
            prop_assert!(out.start >= last_completion);
            // Exactly one service time per request.
            prop_assert_eq!(out.completion - out.start, SimDuration::from_micros(service_us));
            prop_assert!(out.sojourn(t) >= SimDuration::from_micros(service_us));
            last_completion = out.completion;
            total_busy += service_us;
        }
        prop_assert_eq!(server.serviced(), gaps.len() as u64);
        prop_assert_eq!(server.busy_time().as_micros(), total_busy);
        // Work conservation: the server is never idle while work waits,
        // so the last completion is exactly max over prefixes of
        // (arrival_i + remaining work at i).
        prop_assert!(server.busy_until() == last_completion);
        // Backlog drains to zero after the last completion.
        prop_assert_eq!(server.backlog_at(last_completion), 0);
    }

    #[test]
    fn fifo_backlog_counts_unfinished_work(
        burst in 1u64..100,
        service_ms in 1u64..50,
    ) {
        let service = SimDuration::from_micros(service_ms * 1000);
        let mut server = FifoServer::new(service);
        for _ in 0..burst {
            server.offer(SimTime::ZERO);
        }
        // At time k × service, exactly k requests have finished.
        for k in 0..=burst {
            let now = SimTime::ZERO + service * k;
            prop_assert_eq!(server.backlog_at(now), burst - k);
        }
    }
}
