//! Property tests of the discrete-event engine: total ordering of the
//! event list and conservation laws of the FIFO server, exercised over
//! deterministic seeded sweeps of random schedules.

use radar_simcore::{EventQueue, FifoServer, SimDuration, SimRng, SimTime};

#[test]
fn event_queue_pops_sorted_and_stable() {
    let mut rng = SimRng::seed_from(0xE7E27);
    for _ in 0..256 {
        let times: Vec<u64> = (0..1 + rng.index(199))
            .map(|_| rng.index(1000) as u64)
            .collect();
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), (t, seq));
        }
        let mut popped = Vec::new();
        while let Some((t, payload)) = q.pop() {
            assert_eq!(t.as_micros(), payload.0);
            popped.push(payload);
        }
        assert_eq!(popped.len(), times.len());
        // Non-decreasing times; equal times preserve scheduling order.
        for w in popped.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}

#[test]
fn event_queue_interleaved_operations_keep_order() {
    // Mix schedules and pops; popped timestamps must never go
    // backwards, and schedules always land at/after "now".
    let mut rng = SimRng::seed_from(0x17E21);
    for _ in 0..256 {
        let ops: Vec<(u64, bool)> = (0..1 + rng.index(199))
            .map(|_| (rng.index(1000) as u64, rng.chance(0.5)))
            .collect();
        let mut q = EventQueue::new();
        let mut last_popped = SimTime::ZERO;
        for &(dt, pop) in &ops {
            if pop {
                if let Some((t, ())) = q.pop() {
                    assert!(t >= last_popped);
                    last_popped = t;
                }
            } else {
                let t = q.now() + SimDuration::from_micros(dt);
                q.schedule(t, ());
            }
        }
        while let Some((t, ())) = q.pop() {
            assert!(t >= last_popped);
            last_popped = t;
        }
    }
}

#[test]
fn fifo_server_conserves_work() {
    let mut rng = SimRng::seed_from(0xF1F0);
    for _ in 0..256 {
        let gaps: Vec<u64> = (0..1 + rng.index(299))
            .map(|_| rng.index(20_000) as u64)
            .collect();
        let service_us = 1 + rng.index(9_999) as u64;
        let mut server = FifoServer::new(SimDuration::from_micros(service_us));
        let mut t = SimTime::ZERO;
        let mut last_completion = SimTime::ZERO;
        let mut total_busy = 0u64;
        for &gap in &gaps {
            t += SimDuration::from_micros(gap);
            let out = server.offer(t);
            // FIFO: completions never reorder.
            assert!(out.completion > last_completion);
            // Service starts no earlier than arrival and no earlier than
            // the previous completion.
            assert!(out.start >= t);
            assert!(out.start >= last_completion);
            // Exactly one service time per request.
            assert_eq!(
                out.completion - out.start,
                SimDuration::from_micros(service_us)
            );
            assert!(out.sojourn(t) >= SimDuration::from_micros(service_us));
            last_completion = out.completion;
            total_busy += service_us;
        }
        assert_eq!(server.serviced(), gaps.len() as u64);
        assert_eq!(server.busy_time().as_micros(), total_busy);
        // Work conservation: the server is never idle while work waits,
        // so the last completion is exactly max over prefixes of
        // (arrival_i + remaining work at i).
        assert!(server.busy_until() == last_completion);
        // Backlog drains to zero after the last completion.
        assert_eq!(server.backlog_at(last_completion), 0);
    }
}

#[test]
fn fifo_backlog_counts_unfinished_work() {
    let mut rng = SimRng::seed_from(0xBAC1);
    for _ in 0..64 {
        let burst = 1 + rng.index(99) as u64;
        let service_ms = 1 + rng.index(49) as u64;
        let service = SimDuration::from_micros(service_ms * 1000);
        let mut server = FifoServer::new(service);
        for _ in 0..burst {
            server.offer(SimTime::ZERO);
        }
        // At time k × service, exactly k requests have finished.
        for k in 0..=burst {
            let now = SimTime::ZERO + service * k;
            assert_eq!(server.backlog_at(now), burst - k);
        }
    }
}
