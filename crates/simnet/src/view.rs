//! An incrementally maintained view of routing state: distances, paths,
//! and link liveness, with a generation counter for downstream caches.
//!
//! [`RoutingView`] is the routing layer of the simulator's layered
//! engine: it owns a [`Topology`], the live [`RoutingTable`] over the
//! currently-up links, and the materialized preference paths the
//! protocol consumes. Link up/down transitions are applied with
//! [`set_link`](RoutingView::set_link), which rebuilds **only the
//! destinations whose BFS could actually change** instead of re-running
//! the full O(n³) all-pairs construction.
//!
//! # Why the dirty rule is exact
//!
//! Routing is one BFS per destination `d` with a deterministic
//! discovery-order tie-break. For a link event on edge `(a, b)`,
//! destination `d` needs recomputation **iff the pre-event distances
//! `dist[d][a]` and `dist[d][b]` differ** (treating two unreachable
//! endpoints as equal):
//!
//! * Every present edge connects nodes whose depths from `d` differ by
//!   at most one, so equal depths mean depth difference zero.
//! * BFS enqueues all depth-`k` nodes while processing depth `k-1`,
//!   before any depth-`k` node is dequeued. When the first endpoint of
//!   an equal-depth edge is dequeued, the other endpoint is therefore
//!   already discovered, so scanning that edge is a no-op. Removing or
//!   adding such an edge removes or adds only no-op scans: the entire
//!   BFS trace — distances, parent (next-hop) assignments, and queue
//!   order — is unchanged.
//! * An edge connecting different depths (or a reachable endpoint to an
//!   unreachable one) can shorten paths or change the deterministic
//!   parent assignment; those destinations are rebuilt by re-running
//!   the same per-destination BFS a from-scratch build uses.
//!
//! Dirty destinations are thus recomputed exactly and clean ones are
//! provably identical, so the incremental view always equals a full
//! rebuild (property-tested in `tests/routing_view_incremental.rs`).

use std::collections::HashMap;

use crate::routing::bfs_to_destination;
use crate::{NodeId, RoutingTable, Topology};

/// Incrementally maintained routing state over a [`Topology`] with
/// per-link liveness, materialized paths, and a generation counter.
///
/// # Examples
///
/// ```
/// use radar_simnet::{builders, NodeId, RoutingView};
///
/// let mut view = RoutingView::new(builders::ring(4));
/// let (a, b) = (NodeId::new(0), NodeId::new(1));
/// assert_eq!(view.distance(a, b), 1);
/// let g0 = view.generation();
/// view.set_link(a, b, false);
/// assert_eq!(view.distance(a, b), 3); // the long way around
/// assert!(view.generation() > g0);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingView {
    topology: Topology,
    table: RoutingTable,
    /// `paths[d][u]` = materialized path from `u` to destination `d`
    /// (empty when unreachable; `[u]` for `u == d`).
    paths: Vec<Vec<Vec<NodeId>>>,
    /// Liveness per link id (parallel to `topology.links()`).
    link_up: Vec<bool>,
    /// Link id for each normalized `(min, max)` endpoint pair.
    link_index: HashMap<(u16, u16), usize>,
    /// Bumped on every effective link transition; caches keyed on the
    /// generation stay valid exactly as long as routing is unchanged.
    generation: u64,
}

impl RoutingView {
    /// Builds the view over `topology` with every link up.
    pub fn new(topology: Topology) -> Self {
        let table = topology.routes();
        let n = topology.len();
        let mut paths = Vec::with_capacity(n);
        for d in topology.nodes() {
            let mut row = Vec::with_capacity(n);
            for u in topology.nodes() {
                row.push(table.path(u, d));
            }
            paths.push(row);
        }
        let link_index = topology
            .links()
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| ((a.index() as u16, b.index() as u16), i))
            .collect();
        Self {
            link_up: vec![true; topology.links().len()],
            topology,
            table,
            paths,
            link_index,
            generation: 0,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The live routing table over the currently-up links.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Monotonic counter, bumped whenever a link transition changes the
    /// routing state. Equal generations guarantee identical distances,
    /// paths, and reachability.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Hop distance between two nodes over the currently-up links
    /// ([`RoutingTable::UNREACHABLE`] when partitioned).
    pub fn distance(&self, from: NodeId, to: NodeId) -> u32 {
        self.table.distance(from, to)
    }

    /// `true` when a path currently exists between the two nodes.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.table.reachable(from, to)
    }

    /// The materialized path from `from` to `to` (the paper's preference
    /// path), or an empty slice when unreachable. No allocation — the
    /// paths are kept materialized and patched per destination on link
    /// events.
    pub fn path(&self, from: NodeId, to: NodeId) -> &[NodeId] {
        &self.paths[to.index()][from.index()]
    }

    /// Current liveness of the link between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if no such link exists in the topology.
    pub fn link_is_up(&self, a: NodeId, b: NodeId) -> bool {
        self.link_up[self.link_id(a, b).expect("unknown link")]
    }

    /// The dense link id of the `a`–`b` link (its index in
    /// [`Topology::links`]), or `None` when the nodes are not adjacent.
    pub fn link_id(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let (x, y) = (a.index() as u16, b.index() as u16);
        self.link_index.get(&(x.min(y), x.max(y))).copied()
    }

    /// Applies a link up/down transition and incrementally rebuilds the
    /// affected destinations (see the module docs for why the dirty set
    /// is exact). Returns `true` when the transition changed anything
    /// (and hence bumped [`generation`](Self::generation)).
    ///
    /// # Panics
    ///
    /// Panics if no `a`–`b` link exists in the topology.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, up: bool) -> bool {
        let id = self.link_id(a, b).expect("unknown link");
        if self.link_up[id] == up {
            return false;
        }
        self.link_up[id] = up;
        self.generation += 1;

        let RoutingView {
            ref topology,
            ref link_up,
            ref link_index,
            ref mut table,
            ref mut paths,
            ..
        } = *self;
        let mask = |x: NodeId, y: NodeId| {
            let (i, j) = (x.index() as u16, y.index() as u16);
            link_up[link_index[&(i.min(j), i.max(j))]]
        };
        for (d, dest_paths) in paths.iter_mut().enumerate() {
            // Pre-event depths: `table.dist` still holds the old BFS for
            // this destination at this point.
            let da = table.dist[d][a.index()];
            let db = table.dist[d][b.index()];
            if da == db {
                continue;
            }
            let (dv, nv) = bfs_to_destination(topology, NodeId::new(d as u16), &mask);
            table.dist[d] = dv;
            table.next_hop[d] = nv;
            let dest = NodeId::new(d as u16);
            for (u, path) in dest_paths.iter_mut().enumerate() {
                *path = table
                    .try_path(NodeId::new(u as u16), dest)
                    .unwrap_or_default();
            }
        }
        table.refresh_metadata();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn node(i: u16) -> NodeId {
        NodeId::new(i)
    }

    /// Full rebuild over the view's current link state, for equivalence
    /// checks.
    fn scratch(view: &RoutingView) -> RoutingTable {
        RoutingTable::for_topology_masked(view.topology(), &|a, b| view.link_is_up(a, b))
    }

    #[test]
    fn fresh_view_matches_plain_routes() {
        let topo = builders::uunet();
        let view = RoutingView::new(topo.clone());
        assert_eq!(*view.table(), topo.routes());
        assert_eq!(view.generation(), 0);
        for a in topo.nodes() {
            for b in topo.nodes() {
                assert_eq!(view.path(a, b), topo.routes().path(a, b).as_slice());
            }
        }
    }

    #[test]
    fn link_down_reroutes_and_bumps_generation() {
        let mut view = RoutingView::new(builders::ring(4));
        assert!(view.set_link(node(0), node(1), false));
        assert_eq!(view.generation(), 1);
        assert_eq!(view.distance(node(0), node(1)), 3);
        assert_eq!(
            view.path(node(0), node(1)),
            &[node(0), node(3), node(2), node(1)]
        );
        assert_eq!(*view.table(), scratch(&view));
    }

    #[test]
    fn redundant_transition_is_a_no_op() {
        let mut view = RoutingView::new(builders::ring(4));
        assert!(!view.set_link(node(0), node(1), true), "already up");
        assert_eq!(view.generation(), 0);
        assert!(view.set_link(node(0), node(1), false));
        assert!(!view.set_link(node(0), node(1), false), "already down");
        assert_eq!(view.generation(), 1);
    }

    #[test]
    fn partition_reported_unreachable_and_heals() {
        // Line 0-1-2: killing 1-2 strands node 2.
        let mut view = RoutingView::new(builders::line(3));
        view.set_link(node(1), node(2), false);
        assert!(!view.reachable(node(0), node(2)));
        assert!(view.path(node(0), node(2)).is_empty());
        assert_eq!(*view.table(), scratch(&view));
        view.set_link(node(1), node(2), true);
        assert!(view.reachable(node(0), node(2)));
        assert_eq!(view.path(node(0), node(2)), &[node(0), node(1), node(2)]);
        assert_eq!(
            *view.table(),
            RoutingView::new(builders::line(3)).table().clone()
        );
    }

    #[test]
    fn metadata_tracks_the_masked_rebuild() {
        let mut view = RoutingView::new(builders::uunet());
        view.set_link(node(0), node(1), false);
        let full = scratch(&view);
        assert_eq!(view.table().centroid(), full.centroid());
        assert_eq!(view.table().diameter(), full.diameter());
    }

    #[test]
    fn link_id_matches_topology_order() {
        let topo = builders::uunet();
        let view = RoutingView::new(topo.clone());
        for (i, &(a, b)) in topo.links().iter().enumerate() {
            assert_eq!(view.link_id(a, b), Some(i));
            assert_eq!(view.link_id(b, a), Some(i), "lookup is symmetric");
        }
        assert_eq!(view.link_id(node(0), node(0)), None);
    }
}
