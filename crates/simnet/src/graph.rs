//! The backbone graph.

use std::fmt;

/// Identifier of a backbone node (router + co-located hosting server, per
/// the paper's system model, Fig. 1).
///
/// Node ids are dense indices assigned in insertion order, so they double
/// as vector indices throughout the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a dense index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Geographic region of a backbone node.
///
/// The paper's *regional* workload partitions the 53 UUNET nodes into
/// exactly these four regions (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// Western North America.
    WesternNorthAmerica,
    /// Eastern North America.
    EasternNorthAmerica,
    /// Europe.
    Europe,
    /// Pacific Rim and Australia.
    PacificAustralia,
}

impl Region {
    /// All regions, in a fixed order.
    pub const ALL: [Region; 4] = [
        Region::WesternNorthAmerica,
        Region::EasternNorthAmerica,
        Region::Europe,
        Region::PacificAustralia,
    ];

    /// Dense index of the region in [`Region::ALL`].
    pub fn index(self) -> usize {
        match self {
            Region::WesternNorthAmerica => 0,
            Region::EasternNorthAmerica => 1,
            Region::Europe => 2,
            Region::PacificAustralia => 3,
        }
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Region::WesternNorthAmerica => "Western NA",
            Region::EasternNorthAmerica => "Eastern NA",
            Region::Europe => "Europe",
            Region::PacificAustralia => "Pacific/Australia",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors from topology construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link endpoint referred to a node that does not exist.
    UnknownNode(NodeId),
    /// A link connected a node to itself.
    SelfLoop(NodeId),
    /// The same link was added twice.
    DuplicateLink(NodeId, NodeId),
    /// The graph is not connected (some node pair has no path).
    Disconnected {
        /// A node unreachable from node 0.
        unreachable: NodeId,
    },
    /// The topology has no nodes.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "link references unknown node {n}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link {a}–{b}"),
            TopologyError::Disconnected { unreachable } => {
                write!(
                    f,
                    "topology is disconnected: {unreachable} unreachable from n0"
                )
            }
            TopologyError::Empty => write!(f, "topology has no nodes"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected backbone graph of routers/hosts.
///
/// Build one with [`Topology::builder`] (or a ready-made constructor from
/// [`crate::builders`]), then derive a [`crate::RoutingTable`] via
/// [`routes`](Topology::routes). Construction validates that the graph is
/// non-empty, free of self-loops and duplicate links, and connected —
/// the protocol assumes any host can reach any gateway.
///
/// # Examples
///
/// ```
/// use radar_simnet::{Region, Topology};
///
/// let mut b = Topology::builder();
/// let a = b.add_node("a", Region::Europe);
/// let c = b.add_node("c", Region::Europe);
/// b.add_link(a, c);
/// let topo = b.build()?;
/// assert_eq!(topo.len(), 2);
/// assert_eq!(topo.neighbors(a), &[c]);
/// # Ok::<(), radar_simnet::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    names: Vec<String>,
    regions: Vec<Region>,
    /// Sorted adjacency lists (ascending id) — sorted order is what makes
    /// routing tie-breaks deterministic.
    adjacency: Vec<Vec<NodeId>>,
    links: Vec<(NodeId, NodeId)>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if the topology has no nodes (never true for a built
    /// topology, which validates non-emptiness; provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over all node ids in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u16).map(NodeId::new)
    }

    /// The node's human-readable name.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn name(&self, node: NodeId) -> &str {
        &self.names[node.index()]
    }

    /// The node's region.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn region(&self, node: NodeId) -> Region {
        self.regions[node.index()]
    }

    /// All nodes in `region`, ascending.
    pub fn nodes_in_region(&self, region: Region) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.region(n) == region).collect()
    }

    /// Neighbors of `node`, sorted ascending by id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// All undirected links as `(lower, higher)` pairs in insertion order.
    pub fn links(&self) -> &[(NodeId, NodeId)] {
        &self.links
    }

    /// Computes the all-pairs routing table for this topology.
    ///
    /// This is `O(nodes × links)` and is meant to be done once per
    /// experiment, mirroring the paper's premise that routes are extracted
    /// from router databases "asynchronously with client requests".
    pub fn routes(&self) -> crate::RoutingTable {
        crate::RoutingTable::for_topology(self)
    }
}

/// Incremental builder for [`Topology`]. See [`Topology::builder`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    names: Vec<String>,
    regions: Vec<Region>,
    links: Vec<(NodeId, NodeId)>,
}

impl TopologyBuilder {
    /// Adds a node and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` nodes are added.
    pub fn add_node(&mut self, name: impl Into<String>, region: Region) -> NodeId {
        let id = u16::try_from(self.names.len()).expect("too many nodes for u16 ids");
        self.names.push(name.into());
        self.regions.push(region);
        NodeId::new(id)
    }

    /// Adds an undirected link between `a` and `b`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        self.links.push((a.min(b), a.max(b)));
        self
    }

    /// Validates and builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if the graph is empty, references unknown
    /// nodes, contains self-loops or duplicate links, or is disconnected.
    pub fn build(&self) -> Result<Topology, TopologyError> {
        let n = self.names.len();
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &self.links {
            if a.index() >= n {
                return Err(TopologyError::UnknownNode(a));
            }
            if b.index() >= n {
                return Err(TopologyError::UnknownNode(b));
            }
            if a == b {
                return Err(TopologyError::SelfLoop(a));
            }
            if !seen.insert((a, b)) {
                return Err(TopologyError::DuplicateLink(a, b));
            }
            adjacency[a.index()].push(b);
            adjacency[b.index()].push(a);
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        // Connectivity check: BFS from node 0.
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::from([NodeId::new(0)]);
        visited[0] = true;
        while let Some(u) = queue.pop_front() {
            for &v in &adjacency[u.index()] {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        if let Some(i) = visited.iter().position(|&v| !v) {
            return Err(TopologyError::Disconnected {
                unreachable: NodeId::new(i as u16),
            });
        }
        Ok(Topology {
            names: self.names.clone(),
            regions: self.regions.clone(),
            adjacency,
            links: self.links.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_nodes() -> TopologyBuilder {
        let mut b = Topology::builder();
        let a = b.add_node("a", Region::Europe);
        let c = b.add_node("b", Region::Europe);
        b.add_link(a, c);
        b
    }

    #[test]
    fn builds_valid_topology() {
        let topo = two_nodes().build().unwrap();
        assert_eq!(topo.len(), 2);
        assert!(!topo.is_empty());
        assert_eq!(topo.name(NodeId::new(0)), "a");
        assert_eq!(topo.region(NodeId::new(1)), Region::Europe);
        assert_eq!(topo.links().len(), 1);
    }

    #[test]
    fn empty_topology_rejected() {
        assert_eq!(
            Topology::builder().build().unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = Topology::builder();
        let a = b.add_node("a", Region::Europe);
        b.add_link(a, a);
        assert_eq!(b.build().unwrap_err(), TopologyError::SelfLoop(a));
    }

    #[test]
    fn duplicate_link_rejected_either_direction() {
        let mut b = Topology::builder();
        let a = b.add_node("a", Region::Europe);
        let c = b.add_node("b", Region::Europe);
        b.add_link(a, c);
        b.add_link(c, a);
        assert_eq!(b.build().unwrap_err(), TopologyError::DuplicateLink(a, c));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = Topology::builder();
        let a = b.add_node("a", Region::Europe);
        b.add_link(a, NodeId::new(9));
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::UnknownNode(NodeId::new(9))
        );
    }

    #[test]
    fn disconnected_rejected() {
        let mut b = Topology::builder();
        let _a = b.add_node("a", Region::Europe);
        let _c = b.add_node("b", Region::Europe);
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::Disconnected {
                unreachable: NodeId::new(1)
            }
        );
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = Topology::builder();
        let n0 = b.add_node("0", Region::Europe);
        let n1 = b.add_node("1", Region::Europe);
        let n2 = b.add_node("2", Region::Europe);
        b.add_link(n0, n2);
        b.add_link(n0, n1);
        let topo = b.build().unwrap();
        assert_eq!(topo.neighbors(n0), &[n1, n2]);
    }

    #[test]
    fn nodes_in_region_filters() {
        let mut b = Topology::builder();
        let e = b.add_node("e", Region::Europe);
        let w = b.add_node("w", Region::WesternNorthAmerica);
        b.add_link(e, w);
        let topo = b.build().unwrap();
        assert_eq!(topo.nodes_in_region(Region::Europe), vec![e]);
        assert_eq!(topo.nodes_in_region(Region::PacificAustralia), vec![]);
    }

    #[test]
    fn region_labels_and_indices_consistent() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert!(!r.label().is_empty());
        }
        assert_eq!(Region::Europe.to_string(), "Europe");
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<TopologyError> = vec![
            TopologyError::Empty,
            TopologyError::SelfLoop(NodeId::new(1)),
            TopologyError::UnknownNode(NodeId::new(2)),
            TopologyError::DuplicateLink(NodeId::new(0), NodeId::new(1)),
            TopologyError::Disconnected {
                unreachable: NodeId::new(3),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
