//! Ready-made topology constructors.
//!
//! [`uunet`] is the evaluation testbed: a 53-node, four-region stand-in
//! for the 1998 UUNET commercial backbone the paper simulated. The
//! original map (`www.uu.net`, paper reference 34) is no longer published, so
//! we reconstruct a topology with the same node count, the paper's
//! regional partition (Western NA / Eastern NA / Europe / Pacific &
//! Australia), ring-plus-chord regional meshes, and a small number of
//! transoceanic trunk links — the structure UUNET's published maps of the
//! era showed. The protocol consumes only hop distances and shortest
//! paths, so any graph with this shape exercises identical code paths
//! (see DESIGN.md §2).
//!
//! The remaining builders are small parametric graphs used by tests,
//! examples, and property suites.

use crate::{NodeId, Region, Topology};

/// Builds the 53-node UUNET-like evaluation backbone.
///
/// Region sizes: Western North America 16, Eastern North America 17,
/// Europe 12, Pacific/Australia 8. Each region is a ring with chords to
/// two regional hubs; regions connect via trunk links (6 transcontinental
/// US, 5 transatlantic, 5 transpacific). Europe and the Pacific
/// interconnect only through North America, as UUNET's 1998 backbone
/// did. The mesh density approximates the published maps of the era —
/// density matters, because the protocol's placement candidates are the
/// nodes that concentrate preference paths (see DESIGN.md §2).
///
/// # Examples
///
/// ```
/// use radar_simnet::{builders, Region};
/// let topo = builders::uunet();
/// assert_eq!(topo.len(), 53);
/// assert_eq!(topo.nodes_in_region(Region::EasternNorthAmerica).len(), 17);
/// assert!(topo.routes().diameter() <= 12);
/// ```
pub fn uunet() -> Topology {
    let mut b = Topology::builder();

    use Region::*;
    let western = [
        "Seattle",
        "Portland",
        "San Francisco",
        "San Jose",
        "Sacramento",
        "Los Angeles",
        "San Diego",
        "Las Vegas",
        "Phoenix",
        "Tucson",
        "Salt Lake City",
        "Denver",
        "Albuquerque",
        "Boise",
        "Vancouver",
        "Calgary",
    ];
    let eastern = [
        "New York",
        "Newark",
        "Boston",
        "Philadelphia",
        "Washington DC",
        "Baltimore",
        "Atlanta",
        "Miami",
        "Orlando",
        "Charlotte",
        "Pittsburgh",
        "Cleveland",
        "Detroit",
        "Chicago",
        "St. Louis",
        "Toronto",
        "Montreal",
    ];
    let europe = [
        "London",
        "Amsterdam",
        "Paris",
        "Frankfurt",
        "Brussels",
        "Stockholm",
        "Copenhagen",
        "Zurich",
        "Milan",
        "Madrid",
        "Dublin",
        "Vienna",
    ];
    let pacific = [
        "Tokyo",
        "Osaka",
        "Seoul",
        "Hong Kong",
        "Taipei",
        "Singapore",
        "Sydney",
        "Melbourne",
    ];

    let w: Vec<NodeId> = western
        .iter()
        .map(|&n| b.add_node(n, WesternNorthAmerica))
        .collect();
    let e: Vec<NodeId> = eastern
        .iter()
        .map(|&n| b.add_node(n, EasternNorthAmerica))
        .collect();
    let eu: Vec<NodeId> = europe.iter().map(|&n| b.add_node(n, Europe)).collect();
    let p: Vec<NodeId> = pacific
        .iter()
        .map(|&n| b.add_node(n, PacificAustralia))
        .collect();

    // Each region: a ring plus chords to two regional hubs (the region's
    // first node and its midpoint node). The doubled hub structure gives
    // preference paths the fan-out the real 1998 backbone had; with a
    // single hub per region, placement candidate sets (the paper's
    // `> REPL_RATIO` path-share rule) collapse to one or two nodes and
    // replication spreads measurably less than the paper reports.
    for region in [&w, &e, &eu, &p] {
        let n = region.len();
        for i in 0..n {
            b.add_link(region[i], region[(i + 1) % n]);
        }
        let h2 = n / 2;
        for i in (2..n - 1).step_by(3) {
            b.add_link(region[0], region[i]);
        }
        for i in (1..n).step_by(3) {
            if i != h2 && i != h2 + 1 && i != (h2 + n - 1) % n {
                b.add_link(region[h2], region[i]);
            }
        }
    }

    // Transcontinental US trunks.
    b.add_link(w[2], e[0]); // San Francisco — New York
    b.add_link(w[11], e[13]); // Denver — Chicago
    b.add_link(w[5], e[6]); // Los Angeles — Atlanta
    b.add_link(w[0], e[12]); // Seattle — Detroit
    b.add_link(w[10], e[14]); // Salt Lake City — St. Louis
    b.add_link(w[8], e[7]); // Phoenix — Miami
                            // Transatlantic trunks.
    b.add_link(e[0], eu[0]); // New York — London
    b.add_link(e[4], eu[2]); // Washington DC — Paris
    b.add_link(e[2], eu[10]); // Boston — Dublin
    b.add_link(e[1], eu[1]); // Newark — Amsterdam
    b.add_link(e[16], eu[5]); // Montreal — Stockholm
                              // Transpacific trunks.
    b.add_link(w[2], p[0]); // San Francisco — Tokyo
    b.add_link(w[0], p[2]); // Seattle — Seoul
    b.add_link(w[5], p[6]); // Los Angeles — Sydney
    b.add_link(w[1], p[1]); // Portland — Osaka
    b.add_link(w[6], p[3]); // San Diego — Hong Kong

    b.build().expect("uunet topology is valid by construction")
}

/// A path graph `0 — 1 — … — (n-1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: u16) -> Topology {
    let mut b = Topology::builder();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| b.add_node(format!("line-{i}"), Region::EasternNorthAmerica))
        .collect();
    for w in nodes.windows(2) {
        b.add_link(w[0], w[1]);
    }
    b.build().expect("line topology is valid for n >= 1")
}

/// A cycle graph of `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: u16) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 nodes, got {n}");
    let mut b = Topology::builder();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| b.add_node(format!("ring-{i}"), Region::EasternNorthAmerica))
        .collect();
    for i in 0..nodes.len() {
        b.add_link(nodes[i], nodes[(i + 1) % nodes.len()]);
    }
    b.build().expect("ring topology is valid for n >= 3")
}

/// A star: node 0 is the hub, nodes `1..n` are leaves.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: u16) -> Topology {
    assert!(n >= 2, "a star needs at least 2 nodes, got {n}");
    let mut b = Topology::builder();
    let hub = b.add_node("hub", Region::EasternNorthAmerica);
    for i in 1..n {
        let leaf = b.add_node(format!("leaf-{i}"), Region::EasternNorthAmerica);
        b.add_link(hub, leaf);
    }
    b.build().expect("star topology is valid for n >= 2")
}

/// A `w × h` grid with 4-neighbor links; nodes indexed row-major.
///
/// # Panics
///
/// Panics if `w == 0` or `h == 0`.
pub fn grid(w: u16, h: u16) -> Topology {
    assert!(
        w > 0 && h > 0,
        "grid dimensions must be positive, got {w}x{h}"
    );
    let mut b = Topology::builder();
    let mut ids = Vec::with_capacity((w as usize) * (h as usize));
    for y in 0..h {
        for x in 0..w {
            ids.push(b.add_node(format!("g{x},{y}"), Region::EasternNorthAmerica));
        }
    }
    let at = |x: u16, y: u16| ids[(y as usize) * (w as usize) + x as usize];
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_link(at(x, y), at(x + 1, y));
            }
            if y + 1 < h {
                b.add_link(at(x, y), at(x, y + 1));
            }
        }
    }
    b.build().expect("grid topology is valid for positive dims")
}

/// A random connected topology: a random spanning tree plus `extra`
/// additional random links, with regions assigned round-robin. Driven
/// entirely by the caller's seed, for randomized testing and synthetic
/// backbone studies.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let mut seed = 42u64;
/// let topo = radar_simnet::builders::random_connected(20, 10, &mut seed);
/// assert_eq!(topo.len(), 20);
/// assert!(topo.routes().diameter() >= 1);
/// ```
pub fn random_connected(n: u16, extra: u16, seed: &mut u64) -> Topology {
    assert!(n > 0, "a topology needs at least one node");
    // SplitMix64 — self-contained so this crate needs no RNG dependency.
    let next = move |seed: &mut u64| -> u64 {
        *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut b = Topology::builder();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| b.add_node(format!("rnd-{i}"), Region::ALL[i as usize % 4]))
        .collect();
    let mut edges = std::collections::BTreeSet::new();
    for i in 1..n as usize {
        let parent = (next(seed) % i as u64) as usize;
        edges.insert((parent.min(i), parent.max(i)));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < extra as u32 * 10 + 10 {
        attempts += 1;
        if n < 2 {
            break;
        }
        let a = (next(seed) % n as u64) as usize;
        let c = (next(seed) % n as u64) as usize;
        if a != c && edges.insert((a.min(c), a.max(c))) {
            added += 1;
        }
    }
    for (a, c) in edges {
        b.add_link(nodes[a], nodes[c]);
    }
    b.build().expect("spanning tree guarantees connectivity")
}

/// The paper's §3 motivating scenario: two hosts, "one in America and the
/// other in Europe", joined by a single transatlantic link. Node 0 is the
/// American host, node 1 the European one.
pub fn two_continents() -> Topology {
    let mut b = Topology::builder();
    let us = b.add_node("America", Region::EasternNorthAmerica);
    let eu = b.add_node("Europe", Region::Europe);
    b.add_link(us, eu);
    b.build().expect("two-node topology is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uunet_has_53_nodes_with_paper_region_split() {
        let t = uunet();
        assert_eq!(t.len(), 53);
        assert_eq!(t.nodes_in_region(Region::WesternNorthAmerica).len(), 16);
        assert_eq!(t.nodes_in_region(Region::EasternNorthAmerica).len(), 17);
        assert_eq!(t.nodes_in_region(Region::Europe).len(), 12);
        assert_eq!(t.nodes_in_region(Region::PacificAustralia).len(), 8);
    }

    #[test]
    fn uunet_is_connected_with_realistic_diameter() {
        let t = uunet();
        let r = t.routes();
        // 1998 backbone scale: a handful of hops coast-to-coast, more
        // for Europe <-> Pacific (which transits North America).
        assert!(r.diameter() >= 5, "diameter {} too small", r.diameter());
        assert!(r.diameter() <= 12, "diameter {} too large", r.diameter());
    }

    #[test]
    fn uunet_europe_to_pacific_transits_north_america() {
        let t = uunet();
        let r = t.routes();
        let london = t
            .nodes()
            .find(|&n| t.name(n) == "London")
            .expect("London exists");
        let tokyo = t
            .nodes()
            .find(|&n| t.name(n) == "Tokyo")
            .expect("Tokyo exists");
        let path = r.path(london, tokyo);
        assert!(path.iter().any(|&n| matches!(
            t.region(n),
            Region::EasternNorthAmerica | Region::WesternNorthAmerica
        )));
    }

    #[test]
    fn uunet_node_names_unique() {
        let t = uunet();
        let mut names: Vec<&str> = t.nodes().map(|n| t.name(n)).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 53);
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let t = grid(4, 3);
        let r = t.routes();
        assert_eq!(t.len(), 12);
        // (0,0) to (3,2): 3 + 2 hops.
        assert_eq!(r.distance(NodeId::new(0), NodeId::new(11)), 5);
    }

    #[test]
    fn two_continents_shape() {
        let t = two_continents();
        assert_eq!(t.len(), 2);
        assert_eq!(t.routes().distance(NodeId::new(0), NodeId::new(1)), 1);
    }

    #[test]
    fn random_connected_is_connected_and_reproducible() {
        let mut seed = 7u64;
        let a = random_connected(30, 15, &mut seed);
        assert_eq!(a.len(), 30);
        // Connectivity is validated by build(); derive routes to be sure.
        assert!(a.routes().diameter() >= 1);
        let mut seed2 = 7u64;
        let b = random_connected(30, 15, &mut seed2);
        assert_eq!(a, b);
        // Different seeds give different graphs (overwhelmingly likely).
        let mut seed3 = 8u64;
        let c = random_connected(30, 15, &mut seed3);
        assert_ne!(a, c);
    }

    #[test]
    fn random_connected_single_node() {
        let mut seed = 1u64;
        let t = random_connected(1, 5, &mut seed);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn tiny_ring_rejected() {
        let _ = ring(2);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn tiny_star_rejected() {
        let _ = star(1);
    }
}
