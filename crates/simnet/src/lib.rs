//! Backbone network topology and routing for the RaDaR reproduction.
//!
//! The paper's protocol consumes exactly two pieces of network
//! information, both "available in databases maintained by Internet
//! routers" (§1, §2):
//!
//! 1. the **distance** (in router hops) between any two platform nodes,
//!    used by the redirector to find the replica closest to a gateway and
//!    by hosts to order placement candidates; and
//! 2. the **preference path** of a request — the sequence of platform
//!    nodes a response traverses from the serving host to the client's
//!    gateway, on which every node is a candidate replica location.
//!
//! This crate provides those two services over an explicit graph:
//!
//! * [`Topology`] — an undirected, connected backbone graph with named,
//!   region-tagged nodes;
//! * [`RoutingTable`] — destination-based shortest-path routing (BFS per
//!   destination, deterministic lowest-id tie-break), mirroring the
//!   paper's simulation rule that "when there are equidistant paths
//!   between nodes i and j, one path is chosen for all requests from i to
//!   j";
//! * [`builders`] — topology constructors, including [`builders::uunet`],
//!   a 53-node, four-region stand-in for the 1998 UUNET backbone used as
//!   the paper's testbed (the original map is no longer published; see
//!   DESIGN.md for the substitution argument).
//!
//! # Examples
//!
//! ```
//! use radar_simnet::{builders, NodeId};
//!
//! let topo = builders::uunet();
//! let routes = topo.routes();
//! assert_eq!(topo.len(), 53);
//! let a = NodeId::new(0);
//! let b = NodeId::new(52);
//! let path = routes.path(a, b);
//! assert_eq!(path.first(), Some(&a));
//! assert_eq!(path.last(), Some(&b));
//! assert_eq!(path.len() as u32 - 1, routes.distance(a, b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod builders;
mod graph;
mod routing;
mod spec;
mod view;

pub use graph::{NodeId, Region, Topology, TopologyBuilder, TopologyError};
pub use routing::RoutingTable;
pub use spec::SpecError;
pub use view::RoutingView;
