//! Destination-based shortest-path routing with deterministic tie-breaks.

use std::collections::VecDeque;

use crate::{NodeId, Topology};

/// All-pairs hop-count distances and next-hop forwarding state.
///
/// For each destination `d`, a breadth-first search assigns every node `u`
/// its hop distance to `d` and a *next hop*: the lowest-id neighbor of `u`
/// that is one hop closer to `d`. This mimics destination-based IP
/// forwarding and satisfies the paper's simulation rule that "when there
/// are equidistant paths between nodes i and j, one path is chosen for all
/// requests from i to j" — the chosen path is a function of `(u, d)` only.
///
/// Distances are symmetric (the graph is undirected); the chosen *paths*
/// need not be (just as real forward/reverse IP routes need not be), and
/// the protocol only ever uses host→gateway paths, so this is faithful.
///
/// # Examples
///
/// ```
/// use radar_simnet::{builders, NodeId};
/// let topo = builders::line(4); // 0 — 1 — 2 — 3
/// let routes = topo.routes();
/// assert_eq!(routes.distance(NodeId::new(0), NodeId::new(3)), 3);
/// assert_eq!(
///     routes.path(NodeId::new(0), NodeId::new(2)),
///     vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    n: usize,
    /// `dist[d][u]` = hops from `u` to destination `d`.
    ///
    /// Crate-visible so [`crate::RoutingView`] can swap single
    /// destination rows during incremental rebuilds.
    pub(crate) dist: Vec<Vec<u32>>,
    /// `next_hop[d][u]` = the neighbor `u` forwards to when sending to
    /// `d`; `u == d` maps to itself.
    pub(crate) next_hop: Vec<Vec<NodeId>>,
    /// Eccentricity-minimal node (lowest id among ties): the paper
    /// co-locates the redirector with "a node whose average distance in
    /// hops to other nodes is minimum".
    centroid: NodeId,
    diameter: u32,
}

impl RoutingTable {
    /// Builds the routing table for `topology` (one BFS per destination).
    pub fn for_topology(topology: &Topology) -> Self {
        Self::for_topology_masked(topology, &|_, _| true)
    }

    /// Builds the routing table over the subgraph of links for which
    /// `link_up(a, b)` is `true` — the fault-injection path: when links
    /// partition, reachability is recomputed over the survivors.
    ///
    /// Unlike [`for_topology`](Self::for_topology), the masked subgraph
    /// may be disconnected: unreachable pairs report
    /// [`UNREACHABLE`](Self::UNREACHABLE) distance and must be screened
    /// with [`reachable`](Self::reachable) before asking for a path.
    /// The predicate is queried once per directed link traversal; it must
    /// be symmetric (links are undirected).
    pub fn for_topology_masked(
        topology: &Topology,
        link_up: &dyn Fn(NodeId, NodeId) -> bool,
    ) -> Self {
        let n = topology.len();
        let mut dist = Vec::with_capacity(n);
        let mut next_hop = Vec::with_capacity(n);
        for d in topology.nodes() {
            let (dv, nv) = bfs_to_destination(topology, d, link_up);
            dist.push(dv);
            next_hop.push(nv);
        }
        let mut table = Self {
            n,
            dist,
            next_hop,
            centroid: NodeId::new(0),
            diameter: 0,
        };
        table.refresh_metadata();
        table
    }

    /// Recomputes the centroid and diameter from the distance matrix —
    /// called after construction and after an incremental per-destination
    /// rebuild ([`crate::RoutingView`]) replaces distance rows.
    ///
    /// Centroid: minimal total distance to all other nodes, lowest id
    /// breaking ties. Unreachable pairs saturate so a partitioned node
    /// never wins. Diameter ignores unreachable pairs.
    pub(crate) fn refresh_metadata(&mut self) {
        let mut centroid = NodeId::new(0);
        let mut best: u64 = u64::MAX;
        for u in 0..self.n {
            let total: u64 = (0..self.n)
                .map(|d| {
                    let x = self.dist[d][u];
                    if x == u32::MAX {
                        u32::MAX as u64
                    } else {
                        x as u64
                    }
                })
                .sum();
            if total < best {
                best = total;
                centroid = NodeId::new(u as u16);
            }
        }
        self.centroid = centroid;
        self.diameter = self
            .dist
            .iter()
            .flat_map(|row| row.iter().copied())
            .filter(|&x| x != u32::MAX)
            .max()
            .unwrap_or(0);
    }

    /// Sentinel distance for pairs with no surviving path.
    pub const UNREACHABLE: u32 = u32::MAX;

    /// `true` when a path currently exists between the two nodes.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.dist[to.index()][from.index()] != Self::UNREACHABLE
    }

    /// Number of nodes covered by the table.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the table covers no nodes (not produced in practice —
    /// topologies validate non-emptiness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Hop distance between two nodes (0 for a node to itself).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn distance(&self, from: NodeId, to: NodeId) -> u32 {
        self.dist[to.index()][from.index()]
    }

    /// The neighbor `from` forwards to when sending toward `to`
    /// (`to` itself if `from == to`).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> NodeId {
        self.next_hop[to.index()][from.index()]
    }

    /// The full path from `from` to `to`, inclusive of both endpoints.
    /// A node's path to itself is `[from]`.
    ///
    /// This is the paper's *preference path*: every node on it is a
    /// candidate location that would have shortened the response route.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range, or if `to` is unreachable
    /// from `from` (possible only on masked tables — check
    /// [`reachable`](Self::reachable) first, or use
    /// [`try_path`](Self::try_path)).
    pub fn path(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        self.try_path(from, to)
            .unwrap_or_else(|| panic!("no path from {from} to {to}"))
    }

    /// The full path from `from` to `to`, or `None` when the (masked)
    /// table has no surviving route between them.
    pub fn try_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(from, to) {
            return None;
        }
        let mut path = Vec::with_capacity(self.distance(from, to) as usize + 1);
        let mut cur = from;
        path.push(cur);
        while cur != to {
            cur = self.next_hop(cur, to);
            path.push(cur);
        }
        Some(path)
    }

    /// The node with minimal average distance to all nodes (lowest id on
    /// ties) — where the paper's simulation places the redirector.
    pub fn centroid(&self) -> NodeId {
        self.centroid
    }

    /// All nodes ordered by increasing total distance to every other
    /// node (most central first; lowest id breaks ties). The first `k`
    /// entries are the natural homes for `k` hash-partitioned
    /// redirectors.
    pub fn nodes_by_centrality(&self) -> Vec<NodeId> {
        let mut scored: Vec<(u64, NodeId)> = (0..self.n)
            .map(|u| {
                let total: u64 = (0..self.n).map(|d| self.dist[d][u] as u64).sum();
                (total, NodeId::new(u as u16))
            })
            .collect();
        scored.sort_unstable();
        scored.into_iter().map(|(_, n)| n).collect()
    }

    /// The graph diameter in hops.
    pub fn diameter(&self) -> u32 {
        self.diameter
    }

    /// Among `candidates`, the one closest to `target`, breaking distance
    /// ties by lowest node id. Returns `None` for an empty candidate set.
    pub fn closest_to<I>(&self, target: NodeId, candidates: I) -> Option<NodeId>
    where
        I: IntoIterator<Item = NodeId>,
    {
        candidates
            .into_iter()
            .min_by_key(|&c| (self.distance(c, target), c))
    }
}

/// BFS from destination `d` over links passing the `link_up` mask; for
/// each node, record distance to `d` and the lowest-id neighbor one hop
/// closer. Nodes cut off by the mask keep `u32::MAX`.
///
/// Crate-visible so [`crate::RoutingView`] can rebuild single
/// destinations during incremental link-event updates.
pub(crate) fn bfs_to_destination(
    topology: &Topology,
    d: NodeId,
    link_up: &dyn Fn(NodeId, NodeId) -> bool,
) -> (Vec<u32>, Vec<NodeId>) {
    let n = topology.len();
    let mut dist = vec![u32::MAX; n];
    let mut next = vec![d; n];
    dist[d.index()] = 0;
    let mut queue = VecDeque::from([d]);
    while let Some(u) = queue.pop_front() {
        for &v in topology.neighbors(u) {
            if dist[v.index()] == u32::MAX && link_up(u, v) {
                dist[v.index()] = dist[u.index()] + 1;
                // `u` is one hop closer to d than v. Because BFS dequeues
                // nodes of equal distance in ascending discovery order and
                // neighbor lists are sorted, the first assignment is the
                // lowest-id closer neighbor.
                next[v.index()] = u;
                queue.push_back(v);
            }
        }
    }
    (dist, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::Region;

    fn node(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn line_distances_and_paths() {
        let topo = builders::line(5);
        let r = topo.routes();
        assert_eq!(r.distance(node(0), node(4)), 4);
        assert_eq!(r.distance(node(2), node(2)), 0);
        assert_eq!(r.path(node(2), node(2)), vec![node(2)]);
        assert_eq!(
            r.path(node(4), node(1)),
            vec![node(4), node(3), node(2), node(1)]
        );
        assert_eq!(r.diameter(), 4);
        assert_eq!(r.centroid(), node(2));
    }

    #[test]
    fn distances_symmetric() {
        let topo = builders::uunet();
        let r = topo.routes();
        for a in topo.nodes() {
            for b in topo.nodes() {
                assert_eq!(r.distance(a, b), r.distance(b, a));
            }
        }
    }

    #[test]
    fn paths_consistent_with_distance() {
        let topo = builders::uunet();
        let r = topo.routes();
        for a in topo.nodes() {
            for b in topo.nodes() {
                let p = r.path(a, b);
                assert_eq!(p.len() as u32, r.distance(a, b) + 1);
                assert_eq!(*p.first().unwrap(), a);
                assert_eq!(*p.last().unwrap(), b);
                // Every consecutive pair is an actual link.
                for w in p.windows(2) {
                    assert!(topo.neighbors(w[0]).contains(&w[1]));
                }
            }
        }
    }

    #[test]
    fn same_destination_same_subpath() {
        // Destination-based forwarding: if v is on u's path to d, then
        // v's path to d is the corresponding suffix.
        let topo = builders::uunet();
        let r = topo.routes();
        let d = node(40);
        for u in topo.nodes() {
            let p = r.path(u, d);
            for (i, &v) in p.iter().enumerate() {
                assert_eq!(r.path(v, d), p[i..].to_vec());
            }
        }
    }

    #[test]
    fn tie_break_prefers_lowest_id() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. Paths 0->3 via 1 or 2; must pick 1.
        let mut b = Topology::builder();
        let n0 = b.add_node("0", Region::Europe);
        let n1 = b.add_node("1", Region::Europe);
        let n2 = b.add_node("2", Region::Europe);
        let n3 = b.add_node("3", Region::Europe);
        b.add_link(n0, n1);
        b.add_link(n0, n2);
        b.add_link(n1, n3);
        b.add_link(n2, n3);
        let topo = b.build().unwrap();
        let r = topo.routes();
        assert_eq!(r.path(n0, n3), vec![n0, n1, n3]);
        assert_eq!(r.path(n3, n0), vec![n3, n1, n0]);
    }

    #[test]
    fn closest_to_picks_nearest_then_lowest_id() {
        let topo = builders::line(5);
        let r = topo.routes();
        assert_eq!(r.closest_to(node(0), [node(3), node(1)]), Some(node(1)));
        // Equidistant: 1 and 3 are both 1 hop from 2; lowest id wins.
        assert_eq!(r.closest_to(node(2), [node(3), node(1)]), Some(node(1)));
        assert_eq!(r.closest_to(node(0), std::iter::empty()), None);
    }

    #[test]
    fn centrality_ranking_starts_at_centroid() {
        let topo = builders::star(6);
        let r = topo.routes();
        let ranked = r.nodes_by_centrality();
        assert_eq!(ranked.len(), 6);
        assert_eq!(ranked[0], r.centroid());
        // Star leaves are all tied; ids break ties ascending.
        assert_eq!(ranked[1..], [node(1), node(2), node(3), node(4), node(5)]);
    }

    #[test]
    fn ring_distances_wrap() {
        let topo = builders::ring(6);
        let r = topo.routes();
        assert_eq!(r.distance(node(0), node(3)), 3);
        assert_eq!(r.distance(node(0), node(5)), 1);
        assert_eq!(r.diameter(), 3);
    }

    #[test]
    fn masked_table_reroutes_around_dead_link() {
        // Ring of 4: killing 0-1 forces 0→1 the long way around.
        let topo = builders::ring(4);
        let full = topo.routes();
        assert_eq!(full.distance(node(0), node(1)), 1);
        let masked = RoutingTable::for_topology_masked(&topo, &|a, b| {
            !matches!((a.index(), b.index()), (0, 1) | (1, 0))
        });
        assert_eq!(masked.distance(node(0), node(1)), 3);
        assert!(masked.reachable(node(0), node(1)));
        assert_eq!(
            masked.path(node(0), node(1)),
            vec![node(0), node(3), node(2), node(1)]
        );
    }

    #[test]
    fn masked_table_reports_unreachable_partitions() {
        // Line 0-1-2: killing 1-2 strands node 2.
        let topo = builders::line(3);
        let masked = RoutingTable::for_topology_masked(&topo, &|a, b| {
            !matches!((a.index(), b.index()), (1, 2) | (2, 1))
        });
        assert!(!masked.reachable(node(0), node(2)));
        assert!(!masked.reachable(node(2), node(1)));
        assert!(masked.reachable(node(0), node(1)));
        assert_eq!(masked.distance(node(0), node(2)), RoutingTable::UNREACHABLE);
        assert_eq!(masked.try_path(node(0), node(2)), None);
        // A node always reaches itself, even when fully cut off.
        assert!(masked.reachable(node(2), node(2)));
        // Diameter ignores unreachable pairs; centroid stays connected.
        assert_eq!(masked.diameter(), 1);
        assert!(masked.centroid() == node(0) || masked.centroid() == node(1));
    }

    #[test]
    #[should_panic(expected = "no path")]
    fn path_panics_when_unreachable() {
        let topo = builders::line(2);
        let masked = RoutingTable::for_topology_masked(&topo, &|_, _| false);
        let _ = masked.path(node(0), node(1));
    }

    #[test]
    fn unmasked_equals_fully_up_mask() {
        let topo = builders::uunet();
        let a = topo.routes();
        let b = RoutingTable::for_topology_masked(&topo, &|_, _| true);
        assert_eq!(a, b);
    }

    #[test]
    fn star_centroid_is_hub() {
        let topo = builders::star(9);
        let r = topo.routes();
        assert_eq!(r.centroid(), node(0));
        assert_eq!(r.diameter(), 2);
    }
}
