//! Destination-based shortest-path routing with deterministic tie-breaks.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{NodeId, Topology};

/// All-pairs hop-count distances and next-hop forwarding state.
///
/// For each destination `d`, a breadth-first search assigns every node `u`
/// its hop distance to `d` and a *next hop*: the lowest-id neighbor of `u`
/// that is one hop closer to `d`. This mimics destination-based IP
/// forwarding and satisfies the paper's simulation rule that "when there
/// are equidistant paths between nodes i and j, one path is chosen for all
/// requests from i to j" — the chosen path is a function of `(u, d)` only.
///
/// Distances are symmetric (the graph is undirected); the chosen *paths*
/// need not be (just as real forward/reverse IP routes need not be), and
/// the protocol only ever uses host→gateway paths, so this is faithful.
///
/// # Examples
///
/// ```
/// use radar_simnet::{builders, NodeId};
/// let topo = builders::line(4); // 0 — 1 — 2 — 3
/// let routes = topo.routes();
/// assert_eq!(routes.distance(NodeId::new(0), NodeId::new(3)), 3);
/// assert_eq!(
///     routes.path(NodeId::new(0), NodeId::new(2)),
///     vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTable {
    n: usize,
    /// `dist[d][u]` = hops from `u` to destination `d`.
    dist: Vec<Vec<u32>>,
    /// `next_hop[d][u]` = the neighbor `u` forwards to when sending to
    /// `d`; `u == d` maps to itself.
    next_hop: Vec<Vec<NodeId>>,
    /// Eccentricity-minimal node (lowest id among ties): the paper
    /// co-locates the redirector with "a node whose average distance in
    /// hops to other nodes is minimum".
    centroid: NodeId,
    diameter: u32,
}

impl RoutingTable {
    /// Builds the routing table for `topology` (one BFS per destination).
    pub fn for_topology(topology: &Topology) -> Self {
        let n = topology.len();
        let mut dist = Vec::with_capacity(n);
        let mut next_hop = Vec::with_capacity(n);
        for d in topology.nodes() {
            let (dv, nv) = bfs_to_destination(topology, d);
            dist.push(dv);
            next_hop.push(nv);
        }
        // Centroid: minimal total distance to all other nodes, lowest id
        // breaking ties.
        let mut centroid = NodeId::new(0);
        let mut best: u64 = u64::MAX;
        for u in topology.nodes() {
            let total: u64 = (0..n).map(|d| dist[d][u.index()] as u64).sum();
            if total < best {
                best = total;
                centroid = u;
            }
        }
        let diameter = dist
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0);
        Self {
            n,
            dist,
            next_hop,
            centroid,
            diameter,
        }
    }

    /// Number of nodes covered by the table.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the table covers no nodes (not produced in practice —
    /// topologies validate non-emptiness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Hop distance between two nodes (0 for a node to itself).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn distance(&self, from: NodeId, to: NodeId) -> u32 {
        self.dist[to.index()][from.index()]
    }

    /// The neighbor `from` forwards to when sending toward `to`
    /// (`to` itself if `from == to`).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> NodeId {
        self.next_hop[to.index()][from.index()]
    }

    /// The full path from `from` to `to`, inclusive of both endpoints.
    /// A node's path to itself is `[from]`.
    ///
    /// This is the paper's *preference path*: every node on it is a
    /// candidate location that would have shortened the response route.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn path(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.distance(from, to) as usize + 1);
        let mut cur = from;
        path.push(cur);
        while cur != to {
            cur = self.next_hop(cur, to);
            path.push(cur);
        }
        path
    }

    /// The node with minimal average distance to all nodes (lowest id on
    /// ties) — where the paper's simulation places the redirector.
    pub fn centroid(&self) -> NodeId {
        self.centroid
    }

    /// All nodes ordered by increasing total distance to every other
    /// node (most central first; lowest id breaks ties). The first `k`
    /// entries are the natural homes for `k` hash-partitioned
    /// redirectors.
    pub fn nodes_by_centrality(&self) -> Vec<NodeId> {
        let mut scored: Vec<(u64, NodeId)> = (0..self.n)
            .map(|u| {
                let total: u64 = (0..self.n).map(|d| self.dist[d][u] as u64).sum();
                (total, NodeId::new(u as u16))
            })
            .collect();
        scored.sort_unstable();
        scored.into_iter().map(|(_, n)| n).collect()
    }

    /// The graph diameter in hops.
    pub fn diameter(&self) -> u32 {
        self.diameter
    }

    /// Among `candidates`, the one closest to `target`, breaking distance
    /// ties by lowest node id. Returns `None` for an empty candidate set.
    pub fn closest_to<I>(&self, target: NodeId, candidates: I) -> Option<NodeId>
    where
        I: IntoIterator<Item = NodeId>,
    {
        candidates
            .into_iter()
            .min_by_key(|&c| (self.distance(c, target), c))
    }
}

/// BFS from destination `d`; for each node, record distance to `d` and the
/// lowest-id neighbor one hop closer.
fn bfs_to_destination(topology: &Topology, d: NodeId) -> (Vec<u32>, Vec<NodeId>) {
    let n = topology.len();
    let mut dist = vec![u32::MAX; n];
    let mut next = vec![d; n];
    dist[d.index()] = 0;
    let mut queue = VecDeque::from([d]);
    while let Some(u) = queue.pop_front() {
        for &v in topology.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                // `u` is one hop closer to d than v. Because BFS dequeues
                // nodes of equal distance in ascending discovery order and
                // neighbor lists are sorted, the first assignment is the
                // lowest-id closer neighbor.
                next[v.index()] = u;
                queue.push_back(v);
            }
        }
    }
    debug_assert!(
        dist.iter().all(|&x| x != u32::MAX),
        "topology validated as connected"
    );
    (dist, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::Region;

    fn node(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn line_distances_and_paths() {
        let topo = builders::line(5);
        let r = topo.routes();
        assert_eq!(r.distance(node(0), node(4)), 4);
        assert_eq!(r.distance(node(2), node(2)), 0);
        assert_eq!(r.path(node(2), node(2)), vec![node(2)]);
        assert_eq!(
            r.path(node(4), node(1)),
            vec![node(4), node(3), node(2), node(1)]
        );
        assert_eq!(r.diameter(), 4);
        assert_eq!(r.centroid(), node(2));
    }

    #[test]
    fn distances_symmetric() {
        let topo = builders::uunet();
        let r = topo.routes();
        for a in topo.nodes() {
            for b in topo.nodes() {
                assert_eq!(r.distance(a, b), r.distance(b, a));
            }
        }
    }

    #[test]
    fn paths_consistent_with_distance() {
        let topo = builders::uunet();
        let r = topo.routes();
        for a in topo.nodes() {
            for b in topo.nodes() {
                let p = r.path(a, b);
                assert_eq!(p.len() as u32, r.distance(a, b) + 1);
                assert_eq!(*p.first().unwrap(), a);
                assert_eq!(*p.last().unwrap(), b);
                // Every consecutive pair is an actual link.
                for w in p.windows(2) {
                    assert!(topo.neighbors(w[0]).contains(&w[1]));
                }
            }
        }
    }

    #[test]
    fn same_destination_same_subpath() {
        // Destination-based forwarding: if v is on u's path to d, then
        // v's path to d is the corresponding suffix.
        let topo = builders::uunet();
        let r = topo.routes();
        let d = node(40);
        for u in topo.nodes() {
            let p = r.path(u, d);
            for (i, &v) in p.iter().enumerate() {
                assert_eq!(r.path(v, d), p[i..].to_vec());
            }
        }
    }

    #[test]
    fn tie_break_prefers_lowest_id() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. Paths 0->3 via 1 or 2; must pick 1.
        let mut b = Topology::builder();
        let n0 = b.add_node("0", Region::Europe);
        let n1 = b.add_node("1", Region::Europe);
        let n2 = b.add_node("2", Region::Europe);
        let n3 = b.add_node("3", Region::Europe);
        b.add_link(n0, n1);
        b.add_link(n0, n2);
        b.add_link(n1, n3);
        b.add_link(n2, n3);
        let topo = b.build().unwrap();
        let r = topo.routes();
        assert_eq!(r.path(n0, n3), vec![n0, n1, n3]);
        assert_eq!(r.path(n3, n0), vec![n3, n1, n0]);
    }

    #[test]
    fn closest_to_picks_nearest_then_lowest_id() {
        let topo = builders::line(5);
        let r = topo.routes();
        assert_eq!(r.closest_to(node(0), [node(3), node(1)]), Some(node(1)));
        // Equidistant: 1 and 3 are both 1 hop from 2; lowest id wins.
        assert_eq!(r.closest_to(node(2), [node(3), node(1)]), Some(node(1)));
        assert_eq!(r.closest_to(node(0), std::iter::empty()), None);
    }

    #[test]
    fn centrality_ranking_starts_at_centroid() {
        let topo = builders::star(6);
        let r = topo.routes();
        let ranked = r.nodes_by_centrality();
        assert_eq!(ranked.len(), 6);
        assert_eq!(ranked[0], r.centroid());
        // Star leaves are all tied; ids break ties ascending.
        assert_eq!(ranked[1..], [node(1), node(2), node(3), node(4), node(5)]);
    }

    #[test]
    fn ring_distances_wrap() {
        let topo = builders::ring(6);
        let r = topo.routes();
        assert_eq!(r.distance(node(0), node(3)), 3);
        assert_eq!(r.distance(node(0), node(5)), 1);
        assert_eq!(r.diameter(), 3);
    }

    #[test]
    fn star_centroid_is_hub() {
        let topo = builders::star(9);
        let r = topo.routes();
        assert_eq!(r.centroid(), node(0));
        assert_eq!(r.diameter(), 2);
    }
}
