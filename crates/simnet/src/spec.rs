//! Topology interchange: a line-oriented text format and Graphviz
//! export.
//!
//! The paper's system extracts its view of the backbone from "routing
//! databases maintained by Internet routers". This module is the
//! repository's stand-in for that ingestion path: operators describe
//! their backbone in a plain text format and load it with
//! [`Topology::from_spec`]; [`to_spec`](Topology::to_spec) round-trips
//! it and [`to_dot`](Topology::to_dot) renders it for Graphviz.
//!
//! # Format
//!
//! ```text
//! # comment lines and blank lines are ignored
//! node <name> <region>     # region ∈ {wna, ena, eu, pac}
//! link <name-a> <name-b>
//! ```
//!
//! Nodes must be declared before links that use them. Node ids are
//! assigned in declaration order.

use std::collections::HashMap;
use std::fmt;

use crate::{NodeId, Region, Topology, TopologyError};

/// Errors from parsing a topology spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A line did not match `node <name> <region>` or `link <a> <b>`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// An unknown region keyword.
    UnknownRegion {
        /// 1-based line number.
        line: usize,
        /// The offending keyword.
        region: String,
    },
    /// A link referenced an undeclared node name.
    UnknownNode {
        /// 1-based line number.
        line: usize,
        /// The undeclared name.
        name: String,
    },
    /// A node name was declared twice.
    DuplicateNode {
        /// 1-based line number.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// The assembled graph failed topology validation.
    Topology(TopologyError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Malformed { line, content } => {
                write!(f, "line {line}: malformed entry {content:?}")
            }
            SpecError::UnknownRegion { line, region } => {
                write!(
                    f,
                    "line {line}: unknown region {region:?} (use wna/ena/eu/pac)"
                )
            }
            SpecError::UnknownNode { line, name } => {
                write!(f, "line {line}: link references undeclared node {name:?}")
            }
            SpecError::DuplicateNode { line, name } => {
                write!(f, "line {line}: node {name:?} declared twice")
            }
            SpecError::Topology(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for SpecError {
    fn from(e: TopologyError) -> Self {
        SpecError::Topology(e)
    }
}

fn region_keyword(region: Region) -> &'static str {
    match region {
        Region::WesternNorthAmerica => "wna",
        Region::EasternNorthAmerica => "ena",
        Region::Europe => "eu",
        Region::PacificAustralia => "pac",
    }
}

fn parse_region(word: &str) -> Option<Region> {
    match word {
        "wna" => Some(Region::WesternNorthAmerica),
        "ena" => Some(Region::EasternNorthAmerica),
        "eu" => Some(Region::Europe),
        "pac" => Some(Region::PacificAustralia),
        _ => None,
    }
}

impl Topology {
    /// Parses a topology from the spec format (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on malformed lines, unknown names/regions,
    /// duplicates, or an invalid graph (disconnected, self-loops, …).
    ///
    /// # Examples
    ///
    /// ```
    /// use radar_simnet::Topology;
    /// let topo = Topology::from_spec(
    ///     "node a eu\n\
    ///      node b eu\n\
    ///      link a b\n",
    /// )?;
    /// assert_eq!(topo.len(), 2);
    /// # Ok::<(), radar_simnet::SpecError>(())
    /// ```
    pub fn from_spec(spec: &str) -> Result<Topology, SpecError> {
        let mut builder = Topology::builder();
        let mut ids: HashMap<String, NodeId> = HashMap::new();
        for (i, raw) in spec.lines().enumerate() {
            let line = i + 1;
            let text = raw.split('#').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            let words: Vec<&str> = text.split_whitespace().collect();
            match words.as_slice() {
                ["node", name, region] => {
                    let region = parse_region(region).ok_or_else(|| SpecError::UnknownRegion {
                        line,
                        region: region.to_string(),
                    })?;
                    if ids.contains_key(*name) {
                        return Err(SpecError::DuplicateNode {
                            line,
                            name: name.to_string(),
                        });
                    }
                    let id = builder.add_node(*name, region);
                    ids.insert(name.to_string(), id);
                }
                ["link", a, b] => {
                    let resolve = |name: &str| {
                        ids.get(name)
                            .copied()
                            .ok_or_else(|| SpecError::UnknownNode {
                                line,
                                name: name.to_string(),
                            })
                    };
                    let (a, b) = (resolve(a)?, resolve(b)?);
                    builder.add_link(a, b);
                }
                _ => {
                    return Err(SpecError::Malformed {
                        line,
                        content: text.to_string(),
                    })
                }
            }
        }
        Ok(builder.build()?)
    }

    /// Serializes this topology to the spec format; feeding the output
    /// back to [`from_spec`](Topology::from_spec) reproduces the
    /// topology (same ids, names, regions, links).
    pub fn to_spec(&self) -> String {
        let mut out = String::new();
        for node in self.nodes() {
            out.push_str(&format!(
                "node {} {}\n",
                self.name(node).replace(' ', "_"),
                region_keyword(self.region(node))
            ));
        }
        for &(a, b) in self.links() {
            out.push_str(&format!(
                "link {} {}\n",
                self.name(a).replace(' ', "_"),
                self.name(b).replace(' ', "_")
            ));
        }
        out
    }

    /// Renders the topology as a Graphviz `graph`, one cluster per
    /// region — handy for eyeballing generated backbones
    /// (`dot -Tsvg`).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph backbone {\n  node [shape=ellipse];\n");
        for (i, region) in Region::ALL.iter().enumerate() {
            out.push_str(&format!(
                "  subgraph cluster_{i} {{\n    label=\"{}\";\n",
                region.label()
            ));
            for node in self.nodes_in_region(*region) {
                out.push_str(&format!(
                    "    n{} [label=\"{}\"];\n",
                    node.index(),
                    self.name(node)
                ));
            }
            out.push_str("  }\n");
        }
        for &(a, b) in self.links() {
            out.push_str(&format!("  n{} -- n{};\n", a.index(), b.index()));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn parse_simple_spec() {
        let topo = Topology::from_spec(
            "# backbone\n\
             node seattle wna\n\
             node boston ena   # east coast\n\
             node london eu\n\
             \n\
             link seattle boston\n\
             link boston london\n",
        )
        .unwrap();
        assert_eq!(topo.len(), 3);
        assert_eq!(topo.name(NodeId::new(0)), "seattle");
        assert_eq!(topo.region(NodeId::new(2)), Region::Europe);
        assert_eq!(topo.links().len(), 2);
    }

    #[test]
    fn uunet_round_trips_through_spec() {
        let original = builders::uunet();
        let reparsed = Topology::from_spec(&original.to_spec()).unwrap();
        assert_eq!(reparsed.len(), original.len());
        for node in original.nodes() {
            assert_eq!(reparsed.region(node), original.region(node));
            assert_eq!(reparsed.neighbors(node), original.neighbors(node));
        }
        // Routing derived from the reparsed topology is identical.
        let (r1, r2) = (original.routes(), reparsed.routes());
        for a in original.nodes() {
            for b in original.nodes() {
                assert_eq!(r1.distance(a, b), r2.distance(a, b));
            }
        }
    }

    #[test]
    fn malformed_line_rejected() {
        let err = Topology::from_spec("node a eu\nbogus line here\n").unwrap_err();
        assert!(matches!(err, SpecError::Malformed { line: 2, .. }));
    }

    #[test]
    fn unknown_region_rejected() {
        let err = Topology::from_spec("node a mars\n").unwrap_err();
        assert!(matches!(err, SpecError::UnknownRegion { line: 1, .. }));
    }

    #[test]
    fn unknown_node_in_link_rejected() {
        let err = Topology::from_spec("node a eu\nlink a ghost\n").unwrap_err();
        assert!(matches!(err, SpecError::UnknownNode { line: 2, .. }));
    }

    #[test]
    fn duplicate_node_rejected() {
        let err = Topology::from_spec("node a eu\nnode a eu\n").unwrap_err();
        assert!(matches!(err, SpecError::DuplicateNode { line: 2, .. }));
    }

    #[test]
    fn disconnected_spec_rejected() {
        let err = Topology::from_spec("node a eu\nnode b eu\n").unwrap_err();
        assert!(matches!(
            err,
            SpecError::Topology(TopologyError::Disconnected { .. })
        ));
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let topo = builders::two_continents();
        let dot = topo.to_dot();
        assert!(dot.starts_with("graph backbone {"));
        assert!(dot.contains("n0 [label=\"America\"]"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.contains("cluster_"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            Topology::from_spec("x\n").unwrap_err(),
            Topology::from_spec("node a mars\n").unwrap_err(),
            Topology::from_spec("node a eu\nlink a z\n").unwrap_err(),
            Topology::from_spec("node a eu\nnode a eu\n").unwrap_err(),
            Topology::from_spec("node a eu\nnode b eu\n").unwrap_err(),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
