//! Property tests of the routing substrate over random connected
//! topologies. The placement protocol's correctness leans on these
//! invariants (symmetric distances, consistent destination-based paths),
//! so they are pinned down here rather than assumed.
//!
//! Topologies are generated from a seeded [`SimRng`] stream, so every
//! case is deterministic and a failing seed reproduces exactly.

use radar_simcore::SimRng;
use radar_simnet::{NodeId, Region, Topology};

/// A random connected topology: a random spanning tree (each node i>0
/// attaches to a random earlier node) plus arbitrary extra edges.
#[derive(Debug, Clone)]
struct RandomTopology {
    /// `parents[i]` ∈ [0, i+1) is the tree parent of node `i+1`.
    parents: Vec<usize>,
    /// Extra edges as (a, b) index pairs (deduplicated, self-loops
    /// skipped).
    extras: Vec<(usize, usize)>,
}

impl RandomTopology {
    /// Draws a topology with 2..24 nodes and up to 11 extra edges.
    fn generate(rng: &mut SimRng) -> Self {
        let n = 2 + rng.index(22);
        let parents = (0..n - 1).map(|i| rng.index(i + 1)).collect();
        let extras = (0..rng.index(12))
            .map(|_| (rng.index(n), rng.index(n)))
            .collect();
        RandomTopology { parents, extras }
    }

    fn build(&self) -> Topology {
        let n = self.parents.len() + 1;
        let mut b = Topology::builder();
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(format!("r{i}"), Region::ALL[i % 4]))
            .collect();
        let mut edges = std::collections::BTreeSet::new();
        for (i, &p) in self.parents.iter().enumerate() {
            let child = i + 1;
            let parent = p % child;
            edges.insert((parent.min(child), parent.max(child)));
        }
        for &(a, b_) in &self.extras {
            let (a, b_) = (a % n, b_ % n);
            if a != b_ {
                edges.insert((a.min(b_), a.max(b_)));
            }
        }
        for (a, c) in edges {
            b.add_link(nodes[a], nodes[c]);
        }
        b.build().expect("spanning tree guarantees connectivity")
    }
}

/// Runs `check` against 128 seeded random topologies.
fn for_each_topology(stream: u64, check: impl Fn(&Topology)) {
    let mut rng = SimRng::seed_from(stream);
    for _ in 0..128 {
        check(&RandomTopology::generate(&mut rng).build());
    }
}

#[test]
fn distances_symmetric_and_metric() {
    for_each_topology(0x01, |topo| {
        let r = topo.routes();
        for a in topo.nodes() {
            assert_eq!(r.distance(a, a), 0);
            for b in topo.nodes() {
                assert_eq!(r.distance(a, b), r.distance(b, a));
                // Triangle inequality through every intermediate node.
                for c in topo.nodes() {
                    assert!(r.distance(a, b) <= r.distance(a, c) + r.distance(c, b));
                }
            }
        }
    });
}

#[test]
fn paths_are_valid_shortest_walks() {
    for_each_topology(0x02, |topo| {
        let r = topo.routes();
        for a in topo.nodes() {
            for b in topo.nodes() {
                let path = r.path(a, b);
                assert_eq!(path.len() as u32, r.distance(a, b) + 1);
                assert_eq!(*path.first().unwrap(), a);
                assert_eq!(*path.last().unwrap(), b);
                for w in path.windows(2) {
                    assert!(topo.neighbors(w[0]).contains(&w[1]));
                }
                // No node repeats on a shortest path.
                let distinct: std::collections::BTreeSet<_> = path.iter().collect();
                assert_eq!(distinct.len(), path.len());
            }
        }
    });
}

#[test]
fn destination_based_forwarding_is_consistent() {
    // If v lies on u's path to d, v's own path to d is the suffix —
    // the property that makes "one path for all requests from i to
    // j" true for transit traffic too.
    for_each_topology(0x03, |topo| {
        let r = topo.routes();
        for u in topo.nodes() {
            for d in topo.nodes() {
                let p = r.path(u, d);
                for (i, &v) in p.iter().enumerate() {
                    assert_eq!(r.path(v, d), p[i..].to_vec());
                }
            }
        }
    });
}

#[test]
fn closest_to_minimizes_distance() {
    for_each_topology(0x04, |topo| {
        let r = topo.routes();
        let candidates: Vec<NodeId> = topo.nodes().step_by(2).collect();
        for target in topo.nodes() {
            let chosen = r.closest_to(target, candidates.iter().copied()).unwrap();
            let best = candidates
                .iter()
                .map(|&c| r.distance(c, target))
                .min()
                .unwrap();
            assert_eq!(r.distance(chosen, target), best);
        }
    });
}

#[test]
fn centroid_heads_centrality_ranking() {
    for_each_topology(0x05, |topo| {
        let r = topo.routes();
        let ranking = r.nodes_by_centrality();
        assert_eq!(ranking.len(), topo.len());
        assert_eq!(ranking[0], r.centroid());
        // Ranking is a permutation of the nodes.
        let distinct: std::collections::BTreeSet<_> = ranking.iter().collect();
        assert_eq!(distinct.len(), topo.len());
    });
}

#[test]
fn diameter_is_max_distance() {
    for_each_topology(0x06, |topo| {
        let r = topo.routes();
        let max = topo
            .nodes()
            .flat_map(|a| topo.nodes().map(move |b| (a, b)))
            .map(|(a, b)| r.distance(a, b))
            .max()
            .unwrap();
        assert_eq!(r.diameter(), max);
    });
}
