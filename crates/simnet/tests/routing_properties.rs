//! Property tests of the routing substrate over random connected
//! topologies. The placement protocol's correctness leans on these
//! invariants (symmetric distances, consistent destination-based paths),
//! so they are pinned down here rather than assumed.

use proptest::prelude::*;
use radar_simnet::{NodeId, Region, Topology};

/// A random connected topology: a random spanning tree (each node i>0
/// attaches to a random earlier node) plus arbitrary extra edges.
#[derive(Debug, Clone)]
struct RandomTopology {
    /// `parents[i]` ∈ [0, i+1) is the tree parent of node `i+1`.
    parents: Vec<usize>,
    /// Extra edges as (a, b) index pairs (deduplicated, self-loops
    /// skipped).
    extras: Vec<(usize, usize)>,
}

impl RandomTopology {
    fn build(&self) -> Topology {
        let n = self.parents.len() + 1;
        let mut b = Topology::builder();
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(format!("r{i}"), Region::ALL[i % 4]))
            .collect();
        let mut edges = std::collections::BTreeSet::new();
        for (i, &p) in self.parents.iter().enumerate() {
            let child = i + 1;
            let parent = p % child;
            edges.insert((parent.min(child), parent.max(child)));
        }
        for &(a, b_) in &self.extras {
            let (a, b_) = (a % n, b_ % n);
            if a != b_ {
                edges.insert((a.min(b_), a.max(b_)));
            }
        }
        for (a, c) in edges {
            b.add_link(nodes[a], nodes[c]);
        }
        b.build().expect("spanning tree guarantees connectivity")
    }
}

fn random_topology() -> impl Strategy<Value = RandomTopology> {
    (2usize..24)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0usize..usize::MAX, n - 1),
                proptest::collection::vec((0usize..n, 0usize..n), 0..12),
            )
        })
        .prop_map(|(parents, extras)| RandomTopology { parents, extras })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn distances_symmetric_and_metric(t in random_topology()) {
        let topo = t.build();
        let r = topo.routes();
        for a in topo.nodes() {
            prop_assert_eq!(r.distance(a, a), 0);
            for b in topo.nodes() {
                prop_assert_eq!(r.distance(a, b), r.distance(b, a));
                // Triangle inequality through every intermediate node.
                for c in topo.nodes() {
                    prop_assert!(
                        r.distance(a, b) <= r.distance(a, c) + r.distance(c, b)
                    );
                }
            }
        }
    }

    #[test]
    fn paths_are_valid_shortest_walks(t in random_topology()) {
        let topo = t.build();
        let r = topo.routes();
        for a in topo.nodes() {
            for b in topo.nodes() {
                let path = r.path(a, b);
                prop_assert_eq!(path.len() as u32, r.distance(a, b) + 1);
                prop_assert_eq!(*path.first().unwrap(), a);
                prop_assert_eq!(*path.last().unwrap(), b);
                for w in path.windows(2) {
                    prop_assert!(topo.neighbors(w[0]).contains(&w[1]));
                }
                // No node repeats on a shortest path.
                let distinct: std::collections::BTreeSet<_> = path.iter().collect();
                prop_assert_eq!(distinct.len(), path.len());
            }
        }
    }

    #[test]
    fn destination_based_forwarding_is_consistent(t in random_topology()) {
        // If v lies on u's path to d, v's own path to d is the suffix —
        // the property that makes "one path for all requests from i to
        // j" true for transit traffic too.
        let topo = t.build();
        let r = topo.routes();
        for u in topo.nodes() {
            for d in topo.nodes() {
                let p = r.path(u, d);
                for (i, &v) in p.iter().enumerate() {
                    prop_assert_eq!(r.path(v, d), p[i..].to_vec());
                }
            }
        }
    }

    #[test]
    fn closest_to_minimizes_distance(t in random_topology()) {
        let topo = t.build();
        let r = topo.routes();
        let candidates: Vec<NodeId> = topo.nodes().step_by(2).collect();
        for target in topo.nodes() {
            let chosen = r.closest_to(target, candidates.iter().copied()).unwrap();
            let best = candidates.iter().map(|&c| r.distance(c, target)).min().unwrap();
            prop_assert_eq!(r.distance(chosen, target), best);
        }
    }

    #[test]
    fn centroid_heads_centrality_ranking(t in random_topology()) {
        let topo = t.build();
        let r = topo.routes();
        let ranking = r.nodes_by_centrality();
        prop_assert_eq!(ranking.len(), topo.len());
        prop_assert_eq!(ranking[0], r.centroid());
        // Ranking is a permutation of the nodes.
        let distinct: std::collections::BTreeSet<_> = ranking.iter().collect();
        prop_assert_eq!(distinct.len(), topo.len());
    }

    #[test]
    fn diameter_is_max_distance(t in random_topology()) {
        let topo = t.build();
        let r = topo.routes();
        let max = topo
            .nodes()
            .flat_map(|a| topo.nodes().map(move |b| (a, b)))
            .map(|(a, b)| r.distance(a, b))
            .max()
            .unwrap();
        prop_assert_eq!(r.diameter(), max);
    }
}
