//! Property test: the incremental [`RoutingView`] equals a from-scratch
//! rebuild after any sequence of link-down/link-up events.
//!
//! The view's dirty-destination rule (recompute destination `d` iff the
//! flipped edge's endpoints sit at different pre-event depths from `d`)
//! claims exactness, not approximation — so the check here is strict
//! equality of distances, next-hop-derived paths, reachability, and the
//! centroid/diameter metadata, against `RoutingTable::for_topology_masked`
//! over the same surviving links.
//!
//! Sequences are drawn from a seeded [`SimRng`] stream, so every case is
//! deterministic and a failing seed reproduces exactly.

use radar_simcore::SimRng;
use radar_simnet::{builders, NodeId, RoutingTable, RoutingView, Topology};

/// Asserts full equivalence between the view and a from-scratch masked
/// rebuild over the view's current link state.
fn assert_matches_scratch(view: &RoutingView, context: &str) {
    let scratch = RoutingTable::for_topology_masked(view.topology(), &|a, b| view.link_is_up(a, b));
    assert_eq!(
        *view.table(),
        scratch,
        "incremental table diverged from scratch rebuild ({context})"
    );
    assert_eq!(view.table().centroid(), scratch.centroid(), "{context}");
    assert_eq!(view.table().diameter(), scratch.diameter(), "{context}");
    for from in view.topology().nodes() {
        for to in view.topology().nodes() {
            assert_eq!(
                view.reachable(from, to),
                scratch.reachable(from, to),
                "reachability {from}->{to} ({context})"
            );
            let expect = scratch.try_path(from, to).unwrap_or_default();
            assert_eq!(
                view.path(from, to),
                expect.as_slice(),
                "path {from}->{to} ({context})"
            );
        }
    }
}

/// Drives `steps` random link flips over `topo`, checking equivalence
/// after every step. Each step picks a random link and a random
/// direction (down, up, or redundant re-assertion of the current state —
/// redundant transitions must be no-ops).
fn run_random_sequence(topo: Topology, seed: u64, steps: usize) {
    let links: Vec<(NodeId, NodeId)> = topo.links().to_vec();
    let mut rng = SimRng::seed_from(seed);
    let mut view = RoutingView::new(topo);
    let mut generation = view.generation();
    for step in 0..steps {
        let (a, b) = links[rng.index(links.len())];
        let up = rng.chance(0.5);
        let was_up = view.link_is_up(a, b);
        let changed = view.set_link(a, b, up);
        assert_eq!(
            changed,
            was_up != up,
            "change report (seed {seed} step {step})"
        );
        if changed {
            assert!(view.generation() > generation, "generation must advance");
        } else {
            assert_eq!(view.generation(), generation, "no-op must not bump");
        }
        generation = view.generation();
        assert_matches_scratch(&view, &format!("seed {seed} step {step} {a}-{b} up={up}"));
    }
}

#[test]
fn incremental_equals_scratch_on_uunet() {
    // The 53-node testbed the simulations run on: long random walks
    // through partial partitions and heals.
    for seed in 0..4u64 {
        run_random_sequence(builders::uunet(), 0xA11CE + seed, 40);
    }
}

#[test]
fn incremental_equals_scratch_on_small_shapes() {
    // Rings and lines hit the degenerate cases: single alternate route,
    // stranded tails, fully-severed segments.
    for seed in 0..8u64 {
        run_random_sequence(builders::ring(6), 0xB0B + seed, 30);
        run_random_sequence(builders::line(5), 0xCAFE + seed, 30);
        run_random_sequence(builders::star(7), 0xD00D + seed, 30);
    }
}

#[test]
fn total_partition_and_full_heal_round_trip() {
    // Down every link (total blackout), then heal every link: the view
    // must land exactly back on the all-up table.
    let topo = builders::uunet();
    let pristine = RoutingView::new(topo.clone());
    let mut view = RoutingView::new(topo.clone());
    let links: Vec<(NodeId, NodeId)> = topo.links().to_vec();
    for &(a, b) in &links {
        view.set_link(a, b, false);
    }
    assert_matches_scratch(&view, "total blackout");
    for from in topo.nodes() {
        for to in topo.nodes() {
            assert_eq!(view.reachable(from, to), from == to);
        }
    }
    for &(a, b) in &links {
        view.set_link(a, b, true);
    }
    assert_matches_scratch(&view, "full heal");
    assert_eq!(*view.table(), *pristine.table());
}
