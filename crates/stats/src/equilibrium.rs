//! Equilibrium detection and the paper's adjustment-time metric (Table 2).

use crate::TimeSeries;

/// Parameters for equilibrium / adjustment-time detection.
///
/// The paper computes adjustment time as "the time it takes to reach a
/// bandwidth consumption that is 10% above the average equilibrium
/// bandwidth consumption" (Table 2). Equilibrium is estimated as the mean
/// of the trailing `tail_fraction` of the series (the paper runs the
/// simulation long enough for the tail to be flat).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquilibriumSpec {
    /// Fraction of the series (from the end) used to estimate the
    /// equilibrium mean. Default 0.25.
    pub tail_fraction: f64,
    /// Allowed excess above equilibrium: a bin is "adjusted" when its
    /// value ≤ (1 + margin) × equilibrium mean. Default 0.10 per the paper.
    pub margin: f64,
}

impl Default for EquilibriumSpec {
    fn default() -> Self {
        Self {
            tail_fraction: 0.25,
            margin: 0.10,
        }
    }
}

/// Result of an adjustment-time computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdjustmentOutcome {
    /// Simulation time (seconds, bin start) from which the series stays at
    /// or below the threshold for the remainder of the run.
    pub adjustment_time: f64,
    /// Mean of the tail window used as the equilibrium level.
    pub equilibrium: f64,
    /// The threshold `(1 + margin) × equilibrium` the series had to reach.
    pub threshold: f64,
}

/// Mean of the trailing `tail_fraction` of the series' bin sums.
///
/// Returns `None` for an empty series. At least one bin is always
/// included, even for tiny `tail_fraction`.
///
/// # Examples
///
/// ```
/// use radar_stats::{equilibrium_mean, BinSpec, TimeSeries};
/// let mut ts = TimeSeries::new(BinSpec::new(1.0));
/// for (t, v) in [(0.0, 100.0), (1.0, 50.0), (2.0, 10.0), (3.0, 10.0)] {
///     ts.record(t, v);
/// }
/// assert_eq!(equilibrium_mean(&ts, 0.5), Some(10.0));
/// ```
pub fn equilibrium_mean(series: &TimeSeries, tail_fraction: f64) -> Option<f64> {
    let n = series.len();
    if n == 0 {
        return None;
    }
    let tail_fraction = tail_fraction.clamp(0.0, 1.0);
    let tail_len = ((n as f64 * tail_fraction).round() as usize).clamp(1, n);
    let start = n - tail_len;
    let sum: f64 = series.sums()[start..].iter().sum();
    Some(sum / tail_len as f64)
}

/// Computes the paper's Table 2 adjustment time for a bandwidth series.
///
/// Finds the first bin *after which every bin* stays at or below
/// `(1 + margin) × equilibrium`, and reports that bin's start time. This
/// "stays below" reading avoids declaring adjustment on a transient dip,
/// which matters for series that oscillate while replicas are still being
/// shuffled.
///
/// Returns `None` if the series is empty or never settles below the
/// threshold.
///
/// # Examples
///
/// ```
/// use radar_stats::{adjustment_time, BinSpec, EquilibriumSpec, TimeSeries};
/// let mut ts = TimeSeries::new(BinSpec::new(100.0));
/// let values = [100.0, 80.0, 40.0, 11.0, 10.0, 10.0, 10.0, 10.0];
/// for (i, v) in values.iter().enumerate() {
///     ts.record(i as f64 * 100.0, *v);
/// }
/// let out = adjustment_time(&ts, EquilibriumSpec::default()).unwrap();
/// assert_eq!(out.adjustment_time, 300.0); // bin with value 11.0 <= 1.1*10
/// ```
pub fn adjustment_time(series: &TimeSeries, spec: EquilibriumSpec) -> Option<AdjustmentOutcome> {
    let equilibrium = equilibrium_mean(series, spec.tail_fraction)?;
    let threshold = (1.0 + spec.margin) * equilibrium;
    let sums = series.sums();
    // Walk backwards to find the last bin exceeding the threshold; the
    // adjustment point is the bin after it.
    let mut settled_from = 0usize;
    for (i, &v) in sums.iter().enumerate() {
        if v > threshold {
            settled_from = i + 1;
        }
    }
    if settled_from >= sums.len() {
        return None;
    }
    Some(AdjustmentOutcome {
        adjustment_time: series.spec().bin_start(settled_from),
        equilibrium,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinSpec;

    fn series_of(values: &[f64], width: f64) -> TimeSeries {
        let mut ts = TimeSeries::new(BinSpec::new(width));
        for (i, &v) in values.iter().enumerate() {
            ts.record(i as f64 * width, v);
        }
        ts
    }

    #[test]
    fn equilibrium_mean_of_empty_is_none() {
        let ts = TimeSeries::new(BinSpec::new(1.0));
        assert_eq!(equilibrium_mean(&ts, 0.25), None);
    }

    #[test]
    fn equilibrium_mean_uses_tail_only() {
        let ts = series_of(&[100.0, 100.0, 4.0, 6.0], 1.0);
        assert_eq!(equilibrium_mean(&ts, 0.5), Some(5.0));
    }

    #[test]
    fn equilibrium_mean_includes_at_least_one_bin() {
        let ts = series_of(&[1.0, 2.0, 3.0], 1.0);
        assert_eq!(equilibrium_mean(&ts, 0.0001), Some(3.0));
    }

    #[test]
    fn adjustment_immediately_settled_is_time_zero() {
        let ts = series_of(&[10.0, 10.0, 10.0, 10.0], 100.0);
        let out = adjustment_time(&ts, EquilibriumSpec::default()).unwrap();
        assert_eq!(out.adjustment_time, 0.0);
        assert_eq!(out.equilibrium, 10.0);
    }

    #[test]
    fn adjustment_ignores_transient_dip() {
        // Dips below threshold at bin 1 but bounces back above at bin 2;
        // true settling is bin 3.
        let ts = series_of(&[100.0, 10.0, 50.0, 10.0, 10.0, 10.0, 10.0, 10.0], 100.0);
        let out = adjustment_time(&ts, EquilibriumSpec::default()).unwrap();
        assert_eq!(out.adjustment_time, 300.0);
    }

    #[test]
    fn never_settles_returns_none() {
        // Last bin spikes above threshold => never settles.
        let ts = series_of(&[10.0, 10.0, 10.0, 100.0], 100.0);
        let spec = EquilibriumSpec {
            tail_fraction: 0.5,
            margin: 0.10,
        };
        assert_eq!(adjustment_time(&ts, spec), None);
    }

    #[test]
    fn empty_series_returns_none() {
        let ts = TimeSeries::new(BinSpec::new(1.0));
        assert_eq!(adjustment_time(&ts, EquilibriumSpec::default()), None);
    }

    #[test]
    fn threshold_is_margin_above_equilibrium() {
        let ts = series_of(&[50.0, 20.0, 20.0, 20.0], 10.0);
        let out = adjustment_time(
            &ts,
            EquilibriumSpec {
                tail_fraction: 0.5,
                margin: 0.2,
            },
        )
        .unwrap();
        assert_eq!(out.equilibrium, 20.0);
        assert!((out.threshold - 24.0).abs() < 1e-12);
        assert_eq!(out.adjustment_time, 10.0);
    }
}
