//! Streaming scalar summaries (Welford's online algorithm).

/// A numerically stable streaming summary of a scalar sample stream:
/// count, mean, variance, min, and max.
///
/// Uses Welford's online algorithm so that long simulations (tens of
/// millions of latency samples) do not lose precision the way a naive
/// sum-of-squares would.
///
/// # Examples
///
/// ```
/// use radar_stats::OnlineSummary;
/// let mut s = OnlineSummary::new();
/// for v in [2.0, 4.0, 6.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), Some(4.0));
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(6.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance of the samples, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel-combining rule).
    pub fn merge(&mut self, other: &OnlineSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Takes an immutable snapshot suitable for reporting/serialization.
    pub fn snapshot(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean().unwrap_or(0.0),
            std_dev: self.std_dev().unwrap_or(0.0),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// An immutable snapshot of an [`OnlineSummary`], with empty-stream values
/// reported as zero. Primarily for report tables and serialization.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Mean of the samples (0 if empty).
    pub mean: f64,
    /// Population standard deviation (0 if empty).
    pub std_dev: f64,
    /// Minimum sample (0 if empty).
    pub min: f64,
    /// Maximum sample (0 if empty).
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_none() {
        let s = OnlineSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineSummary::new();
        s.record(5.0);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance(), Some(0.0));
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn mean_and_variance_match_direct_computation() {
        let samples = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut s = OnlineSummary::new();
        for &v in &samples {
            s.record(v);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean().unwrap() - mean).abs() < 1e-12);
        assert!((s.variance().unwrap() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 5.0, 2.0];
        let ys = [8.0, 0.5, 3.0, 9.0];
        let mut seq = OnlineSummary::new();
        for &v in xs.iter().chain(&ys) {
            seq.record(v);
        }
        let mut a = OnlineSummary::new();
        for &v in &xs {
            a.record(v);
        }
        let mut b = OnlineSummary::new();
        for &v in &ys {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean().unwrap() - seq.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - seq.variance().unwrap()).abs() < 1e-12);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineSummary::new();
        a.record(3.0);
        let before = a;
        a.merge(&OnlineSummary::new());
        assert_eq!(a, before);

        let mut empty = OnlineSummary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn snapshot_display() {
        let mut s = OnlineSummary::new();
        s.record(1.0);
        s.record(3.0);
        let snap = s.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.mean, 2.0);
        let text = snap.to_string();
        assert!(text.contains("n=2"), "display was {text}");
    }
}
