//! Fixed-width time-binned accumulation.

/// Specification of the binning grid for a [`TimeSeries`]: bins of equal
/// `width` seconds starting at time `origin`.
///
/// # Examples
///
/// ```
/// use radar_stats::BinSpec;
/// let spec = BinSpec::new(20.0);
/// assert_eq!(spec.bin_index(0.0), 0);
/// assert_eq!(spec.bin_index(19.999), 0);
/// assert_eq!(spec.bin_index(20.0), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinSpec {
    origin: f64,
    width: f64,
}

impl BinSpec {
    /// Creates a grid of bins of `width` seconds starting at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive and finite.
    pub fn new(width: f64) -> Self {
        Self::with_origin(0.0, width)
    }

    /// Creates a grid of bins of `width` seconds starting at `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive and finite, or `origin`
    /// is not finite.
    pub fn with_origin(origin: f64, width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "bin width must be positive and finite, got {width}"
        );
        assert!(
            origin.is_finite(),
            "bin origin must be finite, got {origin}"
        );
        Self { origin, width }
    }

    /// Width of each bin in seconds.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Start time of the first bin.
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// Index of the bin containing time `t`. Times before the origin clamp
    /// to bin 0.
    pub fn bin_index(&self, t: f64) -> usize {
        let rel = (t - self.origin) / self.width;
        if rel <= 0.0 {
            0
        } else {
            rel.floor() as usize
        }
    }

    /// Start time of bin `i`.
    pub fn bin_start(&self, i: usize) -> f64 {
        self.origin + i as f64 * self.width
    }

    /// Midpoint time of bin `i` — the x-coordinate used when plotting.
    pub fn bin_mid(&self, i: usize) -> f64 {
        self.bin_start(i) + self.width / 2.0
    }
}

/// A time series of `(sum, count)` accumulators over fixed-width bins.
///
/// One structure serves two roles in the evaluation harness:
///
/// * **extensive quantities** (bytes×hops transferred, requests served):
///   read [`bin_sum`](Self::bin_sum) or [`sums`](Self::sums);
/// * **intensive quantities** (response latency): record each sample and
///   read [`bin_mean`](Self::bin_mean) or [`means`](Self::means).
///
/// Bins are created lazily; recording at time `t` grows the vector to cover
/// `t`. Missing trailing bins read as zero sum / zero count.
///
/// # Examples
///
/// ```
/// use radar_stats::{BinSpec, TimeSeries};
/// let mut lat = TimeSeries::new(BinSpec::new(10.0));
/// lat.record(1.0, 0.25);
/// lat.record(2.0, 0.75);
/// assert_eq!(lat.bin_mean(0), Some(0.5));
/// assert_eq!(lat.bin_mean(5), None); // no samples there
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    spec: BinSpec,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Creates an empty series over the given binning grid.
    pub fn new(spec: BinSpec) -> Self {
        Self {
            spec,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// The binning grid.
    pub fn spec(&self) -> BinSpec {
        self.spec
    }

    /// Records sample `value` at time `t`.
    pub fn record(&mut self, t: f64, value: f64) {
        let i = self.spec.bin_index(t);
        if i >= self.sums.len() {
            self.sums.resize(i + 1, 0.0);
            self.counts.resize(i + 1, 0);
        }
        self.sums[i] += value;
        self.counts[i] += 1;
    }

    /// Number of bins that have been touched (the series length).
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Sum of samples in bin `i` (zero if the bin was never touched).
    pub fn bin_sum(&self, i: usize) -> f64 {
        self.sums.get(i).copied().unwrap_or(0.0)
    }

    /// Number of samples in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Mean of samples in bin `i`, or `None` if the bin holds no samples.
    pub fn bin_mean(&self, i: usize) -> Option<f64> {
        let c = self.bin_count(i);
        if c == 0 {
            None
        } else {
            Some(self.bin_sum(i) / c as f64)
        }
    }

    /// All bin sums in order.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// All bin counts in order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bin means, with empty bins reported as `None`.
    pub fn means(&self) -> Vec<Option<f64>> {
        (0..self.len()).map(|i| self.bin_mean(i)).collect()
    }

    /// Per-bin means with empty bins carried forward from the previous
    /// non-empty bin (and `0.0` before the first sample). Convenient for
    /// plotting continuous lines.
    pub fn means_filled(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        let mut last = 0.0;
        for i in 0..self.len() {
            if let Some(m) = self.bin_mean(i) {
                last = m;
            }
            out.push(last);
        }
        out
    }

    /// Per-bin sums divided by the bin width — i.e., a rate series
    /// (units/second). For a bandwidth series recorded in bytes×hops this
    /// yields bytes×hops per second.
    pub fn rates(&self) -> Vec<f64> {
        let w = self.spec.width();
        self.sums.iter().map(|s| s / w).collect()
    }

    /// Total of all sums across bins.
    pub fn total(&self) -> f64 {
        self.sums.iter().sum()
    }

    /// Total sample count across bins.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall mean across every recorded sample, or `None` if empty.
    pub fn overall_mean(&self) -> Option<f64> {
        let c = self.total_count();
        if c == 0 {
            None
        } else {
            Some(self.total() / c as f64)
        }
    }

    /// Discards all bins at index `bins` and beyond. Useful to drop a
    /// trailing partial bin before computing equilibrium statistics.
    pub fn truncate(&mut self, bins: usize) {
        self.sums.truncate(bins);
        self.counts.truncate(bins);
    }

    /// Merges another series recorded on the same grid into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two series use different [`BinSpec`]s.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.spec, other.spec,
            "cannot merge time series with different bin specs"
        );
        if other.sums.len() > self.sums.len() {
            self.sums.resize(other.sums.len(), 0.0);
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, (&s, &c)) in other.sums.iter().zip(&other.counts).enumerate() {
            self.sums[i] += s;
            self.counts[i] += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_index_boundaries() {
        let spec = BinSpec::new(100.0);
        assert_eq!(spec.bin_index(0.0), 0);
        assert_eq!(spec.bin_index(99.9999), 0);
        assert_eq!(spec.bin_index(100.0), 1);
        assert_eq!(spec.bin_index(250.0), 2);
    }

    #[test]
    fn bin_index_clamps_before_origin() {
        let spec = BinSpec::with_origin(50.0, 10.0);
        assert_eq!(spec.bin_index(0.0), 0);
        assert_eq!(spec.bin_index(49.0), 0);
        assert_eq!(spec.bin_index(50.0), 0);
        assert_eq!(spec.bin_index(60.0), 1);
    }

    #[test]
    fn bin_start_and_mid() {
        let spec = BinSpec::with_origin(10.0, 20.0);
        assert_eq!(spec.bin_start(0), 10.0);
        assert_eq!(spec.bin_start(2), 50.0);
        assert_eq!(spec.bin_mid(0), 20.0);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_width_rejected() {
        let _ = BinSpec::new(0.0);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn nan_width_rejected() {
        let _ = BinSpec::new(f64::NAN);
    }

    #[test]
    fn record_and_query() {
        let mut ts = TimeSeries::new(BinSpec::new(10.0));
        ts.record(0.0, 5.0);
        ts.record(5.0, 3.0);
        ts.record(25.0, 7.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.bin_sum(0), 8.0);
        assert_eq!(ts.bin_count(0), 2);
        assert_eq!(ts.bin_mean(0), Some(4.0));
        assert_eq!(ts.bin_sum(1), 0.0);
        assert_eq!(ts.bin_mean(1), None);
        assert_eq!(ts.bin_sum(2), 7.0);
        assert_eq!(ts.total(), 15.0);
        assert_eq!(ts.total_count(), 3);
        assert_eq!(ts.overall_mean(), Some(5.0));
    }

    #[test]
    fn out_of_range_bins_read_zero() {
        let ts = TimeSeries::new(BinSpec::new(10.0));
        assert_eq!(ts.bin_sum(100), 0.0);
        assert_eq!(ts.bin_count(100), 0);
        assert_eq!(ts.bin_mean(100), None);
        assert!(ts.is_empty());
        assert_eq!(ts.overall_mean(), None);
    }

    #[test]
    fn rates_divide_by_width() {
        let mut ts = TimeSeries::new(BinSpec::new(4.0));
        ts.record(0.0, 8.0);
        ts.record(4.5, 2.0);
        assert_eq!(ts.rates(), vec![2.0, 0.5]);
    }

    #[test]
    fn means_filled_carries_forward() {
        let mut ts = TimeSeries::new(BinSpec::new(1.0));
        ts.record(0.5, 2.0);
        ts.record(3.5, 6.0);
        assert_eq!(ts.means_filled(), vec![2.0, 2.0, 2.0, 6.0]);
    }

    #[test]
    fn merge_combines_bins() {
        let spec = BinSpec::new(10.0);
        let mut a = TimeSeries::new(spec);
        a.record(0.0, 1.0);
        let mut b = TimeSeries::new(spec);
        b.record(0.0, 2.0);
        b.record(15.0, 4.0);
        a.merge(&b);
        assert_eq!(a.bin_sum(0), 3.0);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.bin_sum(1), 4.0);
    }

    #[test]
    fn truncate_drops_trailing_bins() {
        let mut ts = TimeSeries::new(BinSpec::new(1.0));
        ts.record(0.5, 1.0);
        ts.record(2.5, 3.0);
        ts.truncate(2);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.bin_sum(2), 0.0);
        ts.truncate(10); // no-op beyond current length
        assert_eq!(ts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different bin specs")]
    fn merge_rejects_mismatched_specs() {
        let mut a = TimeSeries::new(BinSpec::new(10.0));
        let b = TimeSeries::new(BinSpec::new(20.0));
        a.merge(&b);
    }
}
