//! Statistics substrate for the RaDaR reproduction.
//!
//! The evaluation in the paper ("A Dynamic Object Replication and Migration
//! Protocol for an Internet Hosting Service", ICDCS 1999) reports
//! *time-binned* quantities — backbone bandwidth per interval, mean response
//! latency per interval, maximum host load per interval — plus derived
//! scalars such as the *adjustment time* (Table 2). This crate provides the
//! small, reusable pieces those measurements are made of:
//!
//! * [`TimeSeries`] — fixed-width time bins accumulating a sum and a count,
//!   so the same structure serves both "total bytes×hops this interval"
//!   (read the sums) and "mean latency this interval" (read the means).
//! * [`OnlineSummary`] — numerically stable streaming mean / min / max /
//!   variance (Welford's algorithm).
//! * [`Histogram`] — fixed-bucket histogram with overflow bucket, used for
//!   latency distributions.
//! * [`adjustment_time`] — the paper's Table 2 metric: the time at which a
//!   bandwidth series settles to within 10% above its equilibrium average.
//! * [`WindowedRate`] — events/second averaged over a measurement interval,
//!   the paper's host load metric (§2.1).
//!
//! Everything here is deterministic and allocation-light; the simulator
//! calls into it on every request completion.
//!
//! # Examples
//!
//! ```
//! use radar_stats::{BinSpec, TimeSeries};
//!
//! let mut bw = TimeSeries::new(BinSpec::new(100.0));
//! bw.record(12.0, 36_000.0); // at t=12s, 36 KB·hops
//! bw.record(150.0, 24_000.0);
//! assert_eq!(bw.bin_sum(0), 36_000.0);
//! assert_eq!(bw.bin_sum(1), 24_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod equilibrium;
mod histogram;
mod quantile;
mod rate;
mod summary;
mod timeseries;

pub use equilibrium::{adjustment_time, equilibrium_mean, AdjustmentOutcome, EquilibriumSpec};
pub use histogram::Histogram;
pub use quantile::P2Quantile;
pub use rate::WindowedRate;
pub use summary::{OnlineSummary, Summary};
pub use timeseries::{BinSpec, TimeSeries};
