//! Interval-averaged event rates — the paper's load metric.

/// Events-per-second averaged over consecutive measurement intervals.
///
/// The paper (§2.1, §6.1) measures a host's load as "the rate of serviced
/// requests … averaged over a period called the *load measurement
/// interval*" (20 s in the evaluation). `WindowedRate` implements exactly
/// that: events are counted within the current interval, and when the
/// clock crosses an interval boundary the completed interval's rate
/// becomes the *current measurement*. (`radar_core::HostState` inlines
/// the same windowing because it must roll per-object rates on the same
/// boundary; this standalone meter serves external consumers.)
///
/// The rate reported by [`rate`](Self::rate) is always the rate of the
/// most recently *completed* interval, matching the paper's assumption
/// that "a load measurement taken right after an object relocation event
/// … will not reflect the change".
///
/// # Examples
///
/// ```
/// use radar_stats::WindowedRate;
/// let mut load = WindowedRate::new(20.0);
/// for i in 0..40 {
///     load.record(i as f64 * 0.5); // 2 events/sec for 20s
/// }
/// load.advance_to(20.0);
/// assert_eq!(load.rate(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedRate {
    interval: f64,
    /// Start time of the interval currently being accumulated.
    window_start: f64,
    /// Events counted in the current (incomplete) interval.
    pending: u64,
    /// Rate of the last completed interval.
    current: f64,
    /// Time at which the current measurement's interval started, used to
    /// answer "did a full measurement interval elapse since time T?".
    current_measured_from: f64,
}

impl WindowedRate {
    /// Creates a rate meter with the given measurement interval in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not strictly positive and finite.
    pub fn new(interval: f64) -> Self {
        assert!(
            interval.is_finite() && interval > 0.0,
            "measurement interval must be positive and finite, got {interval}"
        );
        Self {
            interval,
            window_start: 0.0,
            pending: 0,
            current: 0.0,
            current_measured_from: 0.0,
        }
    }

    /// The measurement interval in seconds.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Rolls the window forward so that `t` falls inside the current
    /// interval, completing (and possibly zero-filling) intervals along
    /// the way.
    pub fn advance_to(&mut self, t: f64) {
        while t >= self.window_start + self.interval {
            self.current = self.pending as f64 / self.interval;
            self.current_measured_from = self.window_start;
            self.pending = 0;
            self.window_start += self.interval;
        }
    }

    /// Records one event at time `t` (advancing the window first).
    ///
    /// Events must be recorded in non-decreasing time order; an event
    /// earlier than the current window start still counts toward the
    /// current window.
    pub fn record(&mut self, t: f64) {
        self.advance_to(t);
        self.pending += 1;
    }

    /// Records `n` events at time `t`.
    pub fn record_n(&mut self, t: f64, n: u64) {
        self.advance_to(t);
        self.pending += n;
    }

    /// Rate (events/second) of the most recently completed interval.
    pub fn rate(&self) -> f64 {
        self.current
    }

    /// Start time of the interval the current measurement covers.
    ///
    /// The paper uses this to decide when a host may return from
    /// load-estimate mode to actual measurements: only "when its
    /// measurement interval starts after the last object had been
    /// acquired".
    pub fn measured_from(&self) -> f64 {
        self.current_measured_from
    }

    /// Number of events accumulated in the not-yet-complete interval.
    pub fn pending(&self) -> u64 {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rate_is_zero() {
        let r = WindowedRate::new(10.0);
        assert_eq!(r.rate(), 0.0);
    }

    #[test]
    fn completes_interval_on_advance() {
        let mut r = WindowedRate::new(10.0);
        for i in 0..30 {
            r.record(i as f64 / 3.0); // 3/sec for 10s
        }
        r.advance_to(10.0);
        assert_eq!(r.rate(), 3.0);
        assert_eq!(r.measured_from(), 0.0);
    }

    #[test]
    fn idle_intervals_zero_the_rate() {
        let mut r = WindowedRate::new(10.0);
        r.record(1.0);
        r.advance_to(10.0);
        assert_eq!(r.rate(), 0.1);
        r.advance_to(30.0); // two empty intervals pass
        assert_eq!(r.rate(), 0.0);
        // [10,20) and [20,30) both completed; the current measurement
        // covers the latest one.
        assert_eq!(r.measured_from(), 20.0);
    }

    #[test]
    fn rate_reflects_only_completed_interval() {
        let mut r = WindowedRate::new(10.0);
        for i in 0..100 {
            r.record(5.0 + i as f64 * 0.01); // burst inside first interval
        }
        // Still inside the first interval: rate is from the (empty) past.
        assert_eq!(r.rate(), 0.0);
        r.advance_to(10.0);
        assert_eq!(r.rate(), 10.0);
    }

    #[test]
    fn record_n_counts_in_bulk() {
        let mut r = WindowedRate::new(2.0);
        r.record_n(0.5, 8);
        r.advance_to(2.0);
        assert_eq!(r.rate(), 4.0);
    }

    #[test]
    fn measured_from_tracks_window_starts() {
        let mut r = WindowedRate::new(5.0);
        r.record(12.0);
        // advancing to 12.0 completed windows [0,5) and [5,10).
        assert_eq!(r.measured_from(), 5.0);
        r.advance_to(15.0);
        assert_eq!(r.measured_from(), 10.0);
        assert_eq!(r.rate(), 1.0 / 5.0);
    }

    #[test]
    #[should_panic(expected = "measurement interval must be positive")]
    fn zero_interval_rejected() {
        let _ = WindowedRate::new(0.0);
    }
}
