//! Fixed-bucket histogram with an overflow bucket.

/// A histogram over `[0, bucket_width × buckets)` with uniform buckets and
/// a final overflow bucket for samples at or beyond the upper bound.
///
/// Suited to latency distributions: the paper's hot-sites workload
/// exhibits an initial latency spike in the tens of seconds, which the
/// overflow bucket captures without unbounded memory.
///
/// # Examples
///
/// ```
/// use radar_stats::Histogram;
/// let mut h = Histogram::new(0.1, 10); // 10 buckets of 100 ms
/// h.record(0.05);
/// h.record(0.95);
/// h.record(42.0); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(9), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not strictly positive and finite, or if
    /// `buckets` is zero.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(
            bucket_width.is_finite() && bucket_width > 0.0,
            "bucket width must be positive and finite, got {bucket_width}"
        );
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample. Negative samples clamp into bucket 0.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        let idx = if value <= 0.0 {
            0
        } else {
            (value / self.bucket_width).floor() as usize
        };
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Count in bucket `i` (`[i*w, (i+1)*w)`).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Number of samples at or beyond the last bucket's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded (including overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of uniform buckets (excluding the overflow bucket).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Width of each uniform bucket.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// Approximate quantile `q ∈ [0, 1]` by linear scan; returns the upper
    /// edge of the bucket containing the q-th sample, or `None` if the
    /// histogram is empty. Samples in the overflow bucket report
    /// `f64::INFINITY`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bucket_width);
            }
        }
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(1.0, 4);
        h.record(0.0);
        h.record(0.99);
        h.record(1.0);
        h.record(3.5);
        h.record(4.0); // exactly at bound -> overflow
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn negative_clamps_to_first_bucket() {
        let mut h = Histogram::new(1.0, 2);
        h.record(-5.0);
        assert_eq!(h.bucket_count(0), 1);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(1.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.quantile(0.1), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::new(1.0, 2);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_overflow_is_infinite() {
        let mut h = Histogram::new(1.0, 1);
        h.record(100.0);
        assert_eq!(h.quantile(0.5), Some(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = Histogram::new(1.0, 0);
    }
}
