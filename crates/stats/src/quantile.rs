//! Streaming quantile estimation (the P² algorithm).

/// A streaming estimator of a single quantile using the P² algorithm
/// (Jain & Chlamtac, 1985): five markers track the running quantile in
/// O(1) memory and O(1) time per sample, with no buffering — suitable
/// for the simulator's tens of millions of latency samples.
///
/// Estimates are approximate; accuracy improves with sample count and is
/// excellent for central quantiles and good for tail quantiles on
/// smooth distributions.
///
/// # Examples
///
/// ```
/// use radar_stats::P2Quantile;
/// let mut p90 = P2Quantile::new(0.9);
/// for i in 1..=1000 {
///     p90.record(i as f64);
/// }
/// let est = p90.estimate().unwrap();
/// assert!((est - 900.0).abs() < 20.0, "{est}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the quantile positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based sample ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per sample.
    increments: [f64; 5],
    /// Samples seen so far (during warm-up, `heights[..count]` is a
    /// sorted buffer).
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` (clamped to `(0, 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not strictly between 0 and 1.
    pub fn new(q: f64) -> Self {
        assert!(
            q > 0.0 && q < 1.0,
            "quantile must be strictly between 0 and 1, got {q}"
        );
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one sample.
    pub fn record(&mut self, value: f64) {
        if self.count < 5 {
            // Warm-up: insert into the sorted prefix.
            let mut i = self.count;
            self.heights[i] = value;
            while i > 0 && self.heights[i - 1] > self.heights[i] {
                self.heights.swap(i - 1, i);
                i -= 1;
            }
            self.count += 1;
            return;
        }
        self.count += 1;

        // Find the cell containing the new observation and bump the end
        // markers if it falls outside the current range.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            // heights[k] <= value < heights[k+1]
            (1..4).rfind(|&i| self.heights[i] <= value).unwrap_or(0)
        };
        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers toward their desired
        // positions, using parabolic interpolation when it keeps the
        // heights monotone, linear otherwise.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, q0, qp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n0, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        q0 + d / (np - nm)
            * ((n0 - nm + d) * (qp - q0) / (np - n0) + (np - n0 - d) * (q0 - qm) / (n0 - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate, or `None` before any samples.
    /// With fewer than five samples the estimate is read from the exact
    /// sorted buffer.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let rank = (self.q * n as f64).ceil().max(1.0) as usize - 1;
                Some(self.heights[rank.min(n - 1)])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random stream (SplitMix64 → uniform f64).
    fn uniform_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as f64 / u64::MAX as f64
            })
            .collect()
    }

    fn exact_quantile(mut xs: Vec<f64>, q: f64) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = (q * xs.len() as f64).ceil().max(1.0) as usize - 1;
        xs[rank.min(xs.len() - 1)]
    }

    #[test]
    fn empty_estimator_is_none() {
        assert_eq!(P2Quantile::new(0.5).estimate(), None);
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p = P2Quantile::new(0.5);
        for v in [5.0, 1.0, 3.0] {
            p.record(v);
        }
        assert_eq!(p.estimate(), Some(3.0));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn median_of_uniform_stream() {
        let xs = uniform_stream(1, 50_000);
        let mut p = P2Quantile::new(0.5);
        for &v in &xs {
            p.record(v);
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "median {est}");
    }

    #[test]
    fn tail_quantiles_of_uniform_stream() {
        for q in [0.9, 0.99] {
            let xs = uniform_stream(7, 100_000);
            let mut p = P2Quantile::new(q);
            for &v in &xs {
                p.record(v);
            }
            let est = p.estimate().unwrap();
            let exact = exact_quantile(xs, q);
            assert!(
                (est - exact).abs() < 0.01,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn skewed_distribution() {
        // Exponential-ish: -ln(u). P² should track the p90 decently.
        let xs: Vec<f64> = uniform_stream(3, 80_000)
            .into_iter()
            .map(|u| -(1.0 - u).ln())
            .collect();
        let mut p = P2Quantile::new(0.9);
        for &v in &xs {
            p.record(v);
        }
        let est = p.estimate().unwrap();
        let exact = exact_quantile(xs, 0.9);
        assert!(
            (est - exact).abs() / exact < 0.05,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn sorted_and_reverse_sorted_input() {
        for reverse in [false, true] {
            let mut xs: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
            if reverse {
                xs.reverse();
            }
            let mut p = P2Quantile::new(0.25);
            for &v in &xs {
                p.record(v);
            }
            let est = p.estimate().unwrap();
            assert!((est - 2_500.0).abs() < 150.0, "reverse={reverse}: {est}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly between 0 and 1")]
    fn out_of_range_quantile_rejected() {
        let _ = P2Quantile::new(1.0);
    }
}
