//! `radar perf` — render shard-profile telemetry from a report or a
//! bench artifact.
//!
//! Accepts either a `radar simulate --json --profile` report (a
//! `shard_profile` section), a `BENCH_profile.json` artifact from the
//! throughput bench (a `profiles` array), a bare profile object — or a
//! `BENCH_throughput.json` baseline, whose `scaling` section is
//! rendered as a speedup/efficiency table. Profile files print each
//! profile's utilization table with a top-stalls breakdown.
//!
//! Two options turn the renderer into a gate: `--check-coverage PCT`
//! errors unless every lane of every profile attributes at least `PCT`
//! percent of the run's wall-clock to named span categories (how CI
//! asserts the profiler itself stays honest), and
//! `--check-batch-p50 N` errors unless every profile recorded hand-offs
//! and the *lowest-shard-count* profile's batch-size p50 is at least
//! `N` items per message (how CI asserts the batched hand-off transport
//! has not silently degenerated to one message per decision; higher
//! shard counts split the same decision stream across more lanes, so
//! only the lowest count yields a stable amortization median).

use radar_obs::{BarrierCause, LaneProfile, Log2Histogram, ShardProfile, SpanKind};

use crate::args::Parsed;
use crate::json::Value;

const OPTIONS: &[&str] = &["top", "check-coverage", "check-batch-p50"];
const SWITCHES: &[&str] = &["help"];

/// Default number of stall rows in the breakdown.
const DEFAULT_TOP: usize = 8;

pub(crate) fn command(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, OPTIONS, SWITCHES).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Err(help());
    }
    let path = match parsed.positionals.as_slice() {
        [path] => path,
        [] => return Err(format!("perf expects a FILE argument\n\n{}", help())),
        extra => return Err(format!("perf takes one FILE, got {extra:?}")),
    };
    let top = parsed
        .get_parsed("top", DEFAULT_TOP, "a row count")
        .map_err(|e| e.to_string())?;
    let min_coverage: Option<f64> = match parsed.get("check-coverage") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--check-coverage expects a percentage, got {raw:?}"))?,
        ),
    };
    let min_batch_p50: Option<u64> = match parsed.get("check-batch-p50") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--check-batch-p50 expects an item count, got {raw:?}"))?,
        ),
    };

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = Value::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let profiles = match extract_profiles(&value) {
        Ok(profiles) => profiles,
        Err(e) => {
            // Not a profile file — a throughput baseline's scaling
            // section still renders (but cannot satisfy profile gates).
            if let Some(table) = render_scaling(&value) {
                if min_coverage.is_some() || min_batch_p50.is_some() {
                    return Err(format!(
                        "{path}: the coverage/batch gates need shard profiles, \
                         but this file only has a throughput scaling section"
                    ));
                }
                return Ok(table);
            }
            return Err(format!("{path}: {e}"));
        }
    };

    let mut out = String::new();
    for (i, profile) in profiles.iter().enumerate() {
        if profiles.len() > 1 {
            out.push_str(&format!("== profile {} ==\n", i + 1));
        }
        out.push_str(&profile.render(top));
        if profiles.len() > 1 && i + 1 < profiles.len() {
            out.push('\n');
        }
    }
    if let Some(pct) = min_coverage {
        for (i, profile) in profiles.iter().enumerate() {
            for (label, lane) in profile.lanes() {
                let cov = 100.0 * profile.coverage(lane);
                if cov < pct {
                    return Err(format!(
                        "coverage check failed: profile {} lane {label} attributes \
                         {cov:.1}% of wall-clock (< {pct}%)",
                        i + 1
                    ));
                }
            }
        }
        out.push_str(&format!(
            "coverage check passed: every lane ≥ {pct}% attributed\n"
        ));
    }
    if let Some(min) = min_batch_p50 {
        for (i, profile) in profiles.iter().enumerate() {
            if profile.handoff_ns.count() == 0 {
                return Err(format!(
                    "batch check failed: profile {} recorded no hand-offs \
                     (the hand-off histogram is empty)",
                    i + 1
                ));
            }
        }
        // The p50 bar applies to the lowest-shard-count profile only:
        // it is the canonical amortization measurement. Higher counts
        // split the same decision stream ~1/N per worker lane, so
        // their per-message medians shrink toward 1 even when the
        // transport is healthy — gating them would measure the
        // workload's parallel width, not the batching.
        let (i, reference) = profiles
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.shards)
            .expect("extract_profiles rejects empty files");
        let p50 = reference.batch_items.percentile(0.50).unwrap_or(0);
        if p50 < min {
            return Err(format!(
                "batch check failed: profile {} ({} shards) batch-size p50 \
                 ≤{p50} item(s)/message is below the required {min} — the \
                 batched hand-off has degenerated toward one message per \
                 decision",
                i + 1,
                reference.shards
            ));
        }
        out.push_str(&format!(
            "batch check passed: {}-shard batch-size p50 ≥ {min}, every \
             profile recorded hand-offs\n",
            reference.shards
        ));
    }
    Ok(out)
}

/// Renders the `scaling` section of a `BENCH_throughput.json` baseline
/// as a per-shard-count table with the derived speedup/efficiency
/// columns. `None` when the document has no such section.
fn render_scaling(value: &Value) -> Option<String> {
    let Value::Obj(members) = value.get("scaling")? else {
        return None;
    };
    let mut out = String::from("throughput scaling");
    if let Some(cores) = value
        .get("config")
        .and_then(|c| c.get("host_cores"))
        .and_then(Value::as_u64)
    {
        out.push_str(&format!(" — measured on {cores} host core(s)"));
    }
    out.push('\n');
    out.push_str(&format!(
        "  {:<7} {:>14} {:>10} {:>11}\n",
        "shards", "events/sec", "speedup", "efficiency"
    ));
    let mut rows = 0;
    for (key, val) in members {
        let Some(n) = key
            .strip_prefix("shard")
            .and_then(|rest| rest.strip_suffix("_events_per_sec"))
        else {
            continue;
        };
        let eps = val.as_f64()?;
        let lookup = |suffix: &str| {
            value
                .get("scaling")
                .and_then(|s| s.get(&format!("shard{n}_{suffix}")))
                .and_then(Value::as_f64)
        };
        let speedup = match lookup("speedup_vs_serial") {
            Some(s) => format!("{s:.2}×"),
            None if n == "1" => "1.00×".to_string(), // the serial reference
            None => "-".to_string(),
        };
        let efficiency = match lookup("parallel_efficiency") {
            Some(e) => format!("{:.1}%", 100.0 * e),
            None if n == "1" => "100.0%".to_string(),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "  {n:<7} {eps:>14.1} {speedup:>10} {efficiency:>11}\n"
        ));
        rows += 1;
    }
    (rows > 0).then_some(out)
}

/// Pulls every profile object out of whichever container the file is:
/// a report (`shard_profile`), a bench artifact (`profiles`), or a
/// bare profile object (`lanes` at top level).
fn extract_profiles(value: &Value) -> Result<Vec<ShardProfile>, String> {
    if let Some(section) = value.get("shard_profile") {
        return Ok(vec![parse_profile(section)?]);
    }
    if let Some(list) = value.get("profiles").and_then(Value::as_array) {
        if list.is_empty() {
            return Err("the `profiles` array is empty".to_string());
        }
        return list.iter().map(parse_profile).collect();
    }
    if value.get("lanes").is_some() {
        return Ok(vec![parse_profile(value)?]);
    }
    Err(
        "no shard profile found — run `radar simulate --profile --shards N --json` \
         or point at a BENCH_profile.json artifact"
            .to_string(),
    )
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("profile field {key:?} is missing or not an integer"))
}

fn parse_histogram(v: &Value, key: &str) -> Result<Log2Histogram, String> {
    let h = v
        .get(key)
        .ok_or_else(|| format!("profile field {key:?} is missing"))?;
    let buckets: Vec<u64> = h
        .get("buckets")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{key}.buckets is missing"))?
        .iter()
        .map(|b| {
            b.as_u64()
                .ok_or_else(|| format!("{key}.buckets holds a non-integer"))
        })
        .collect::<Result<_, _>>()?;
    Ok(Log2Histogram::from_parts(
        need_u64(h, "count")?,
        need_u64(h, "sum")?,
        need_u64(h, "max")?,
        &buckets,
    ))
}

fn parse_lane(v: &Value) -> Result<(String, LaneProfile), String> {
    let label = v
        .get("lane")
        .and_then(Value::as_str)
        .ok_or("lane entry is missing its `lane` label")?
        .to_string();
    let mut lane = LaneProfile {
        items: need_u64(v, "items")?,
        cache_hits: need_u64(v, "cache_hits")?,
        cache_misses: need_u64(v, "cache_misses")?,
        ..LaneProfile::default()
    };
    let spans = v
        .get("spans_ns")
        .ok_or_else(|| format!("lane {label} is missing spans_ns"))?;
    match spans {
        Value::Obj(members) => {
            for (name, ns) in members {
                let kind = SpanKind::from_str_opt(name)
                    .ok_or_else(|| format!("lane {label}: unknown span category {name:?}"))?;
                let ns = ns
                    .as_u64()
                    .ok_or_else(|| format!("lane {label}: span {name:?} is not an integer"))?;
                lane.add_span(kind, ns);
            }
        }
        _ => return Err(format!("lane {label}: spans_ns is not an object")),
    }
    Ok((label, lane))
}

fn parse_profile(v: &Value) -> Result<ShardProfile, String> {
    let mut profile = ShardProfile {
        shards: need_u64(v, "shards")? as usize,
        wall_ns: need_u64(v, "wall_ns")?,
        handoff_ns: parse_histogram(v, "handoff_ns")?,
        batch_items: parse_histogram(v, "batch_items")?,
        ..ShardProfile::default()
    };
    let lanes = v
        .get("lanes")
        .and_then(Value::as_array)
        .ok_or("profile is missing its `lanes` array")?;
    for entry in lanes {
        let (label, lane) = parse_lane(entry)?;
        if label == "sequencer" {
            profile.sequencer = lane;
        } else {
            // Worker lanes are serialized in shard order.
            profile.workers.push(lane);
        }
    }
    let barriers = v.get("barriers").ok_or("profile is missing `barriers`")?;
    for cause in BarrierCause::ALL {
        profile.barriers[cause as usize] = need_u64(barriers, cause.as_str())?;
    }
    Ok(profile)
}

fn help() -> String {
    "radar perf — render shard-profile telemetry from a profiled run\n\
     \n\
     USAGE:\n\
     \x20 radar perf FILE [--top N] [--check-coverage PCT] [--check-batch-p50 N]\n\
     \n\
     FILE is a `radar simulate --profile --shards N --json` report, a\n\
     BENCH_profile.json bench artifact, a bare profile object, or a\n\
     BENCH_throughput.json baseline (its scaling section is rendered as\n\
     a speedup/efficiency table).\n\
     \n\
     OPTIONS:\n\
     \x20 --top N               stall rows in the breakdown (default 8)\n\
     \x20 --check-coverage PCT  error unless every lane attributes at least\n\
     \x20                       PCT percent of wall-clock to named categories\n\
     \x20 --check-batch-p50 N   error unless every profile recorded hand-offs\n\
     \x20                       and the lowest-shard-count profile's batch-size\n\
     \x20                       p50 is at least N items per message\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> ShardProfile {
        let mut p = ShardProfile {
            shards: 2,
            wall_ns: 1_000_000,
            ..ShardProfile::default()
        };
        p.sequencer.add_span(SpanKind::Busy, 300_000);
        p.sequencer.add_span(SpanKind::ChannelWait, 690_000);
        p.sequencer.items = 500;
        p.sequencer.cache_hits = 10;
        let mut w = LaneProfile::default();
        w.add_span(SpanKind::Busy, 100_000);
        w.add_span(SpanKind::Idle, 890_000);
        w.items = 200;
        w.cache_hits = 150;
        w.cache_misses = 50;
        p.workers = vec![w, w];
        for _ in 0..400 {
            p.handoff_ns.record(58_000);
        }
        p.batch_items.record(3);
        p.barriers[BarrierCause::Placement as usize] = 4;
        p.barriers[BarrierCause::Fault as usize] = 1;
        p
    }

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("radar-perf-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).expect("write temp file");
        path
    }

    #[test]
    fn profile_round_trips_through_json_and_renders() {
        let profile = sample_profile();
        let json = format!(
            "{{\"total_requests\": 1,\n\"shard_profile\": {}\n}}",
            radar_sim::shard_profile_json(&profile).pretty()
        );
        let reparsed = extract_profiles(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(reparsed, vec![profile.clone()]);

        let path = write_temp("report.json", &json);
        let out = command(&[path.to_str().unwrap()]).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("sequencer"), "{out}");
        assert!(out.contains("worker-1"), "{out}");
        assert!(out.contains("channel-wait"), "{out}");
        assert!(out.contains("hand-off latency"), "{out}");
        assert!(out.contains("placement 4"), "{out}");
    }

    #[test]
    fn bench_artifact_with_multiple_profiles_renders_each() {
        let profile = sample_profile();
        let json = format!(
            "{{\"config\": {{\"seed\": 42}}, \"profiles\": [{p}, {p}]}}",
            p = radar_sim::shard_profile_json(&profile).pretty()
        );
        let path = write_temp("bench.json", &json);
        let out = command(&[path.to_str().unwrap(), "--top", "3"]).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("== profile 1 =="), "{out}");
        assert!(out.contains("== profile 2 =="), "{out}");
    }

    #[test]
    fn coverage_gate_passes_and_fails() {
        let profile = sample_profile();
        let json = format!(
            "{{\"shard_profile\": {}}}",
            radar_sim::shard_profile_json(&profile).pretty()
        );
        let path = write_temp("gate.json", &json);
        let ok = command(&[path.to_str().unwrap(), "--check-coverage", "95"]).unwrap();
        assert!(ok.contains("coverage check passed"), "{ok}");
        let err = command(&[path.to_str().unwrap(), "--check-coverage", "99.9"]).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("coverage check failed"), "{err}");
        assert!(err.contains("sequencer"), "{err}");
    }

    #[test]
    fn batch_p50_gate_passes_and_fails() {
        // sample_profile records one batch of 3 items and 400 hand-offs.
        let profile = sample_profile();
        let json = format!(
            "{{\"shard_profile\": {}}}",
            radar_sim::shard_profile_json(&profile).pretty()
        );
        let path = write_temp("batch-gate.json", &json);
        let ok = command(&[path.to_str().unwrap(), "--check-batch-p50", "2"]).unwrap();
        assert!(ok.contains("batch check passed"), "{ok}");
        let err = command(&[path.to_str().unwrap(), "--check-batch-p50", "16"]).unwrap_err();
        assert!(err.contains("batch check failed"), "{err}");
        std::fs::remove_file(&path).ok();

        // In a multi-profile artifact the p50 bar reads the
        // lowest-shard-count profile; a higher count whose batches
        // thinned to 1 item/message must not trip the gate.
        let mut thin = sample_profile();
        thin.shards = 8;
        thin.batch_items = Log2Histogram::default();
        for _ in 0..10 {
            thin.batch_items.record(1);
        }
        let json = format!(
            "{{\"config\": {{}}, \"profiles\": [{}, {}]}}",
            radar_sim::shard_profile_json(&profile).pretty(),
            radar_sim::shard_profile_json(&thin).pretty()
        );
        let path = write_temp("batch-multi.json", &json);
        let ok = command(&[path.to_str().unwrap(), "--check-batch-p50", "2"]).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(ok.contains("2-shard batch-size p50"), "{ok}");

        // A profile that never recorded a hand-off fails regardless of
        // the threshold: an empty histogram means the sharded loop
        // deferred nothing, which the gate must not silently pass.
        let empty = ShardProfile {
            shards: 2,
            wall_ns: 1,
            workers: vec![LaneProfile::default(); 2],
            ..ShardProfile::default()
        };
        let json = format!(
            "{{\"shard_profile\": {}}}",
            radar_sim::shard_profile_json(&empty).pretty()
        );
        let path = write_temp("batch-empty.json", &json);
        let err = command(&[path.to_str().unwrap(), "--check-batch-p50", "1"]).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("no hand-offs"), "{err}");
    }

    #[test]
    fn throughput_baseline_renders_scaling_table() {
        let json = "{\n  \"config\": {\"seed\": 42, \"host_cores\": 4},\n  \
             \"throughput\": {\"events\": 100, \"events_per_sec\": 1000.0},\n  \
             \"scaling\": {\n    \"shard1_events_per_sec\": 1000.0,\n    \
             \"shard4_events_per_sec\": 2000.0,\n    \
             \"shard4_speedup_vs_serial\": 2.0,\n    \
             \"shard4_parallel_efficiency\": 0.5\n  }\n}\n";
        let path = write_temp("scaling.json", json);
        let out = command(&[path.to_str().unwrap()]).unwrap();
        assert!(out.contains("4 host core(s)"), "{out}");
        assert!(out.contains("2.00×"), "{out}");
        assert!(out.contains("50.0%"), "{out}");
        assert!(out.contains("1.00×"), "{out}");
        // Profile gates cannot run against a scaling-only file.
        let err = command(&[path.to_str().unwrap(), "--check-batch-p50", "2"]).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("scaling section"), "{err}");
    }

    #[test]
    fn unprofiled_report_is_a_clear_error() {
        let path = write_temp("plain.json", "{\"total_requests\": 5}");
        let err = command(&[path.to_str().unwrap()]).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("no shard profile found"), "{err}");
    }

    #[test]
    fn help_and_bad_args() {
        assert!(command(&["--help"]).unwrap_err().contains("radar perf"));
        assert!(command(&[]).unwrap_err().contains("FILE"));
        assert!(command(&["a", "b"]).unwrap_err().contains("one FILE"));
    }
}
