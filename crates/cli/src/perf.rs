//! `radar perf` — render shard-profile telemetry from a report or a
//! bench artifact.
//!
//! Accepts either a `radar simulate --json --profile` report (a
//! `shard_profile` section), a `BENCH_profile.json` artifact from the
//! throughput bench (a `profiles` array), or a bare profile object —
//! and prints each profile's utilization table with a top-stalls
//! breakdown. `--check-coverage PCT` turns the renderer into a gate:
//! the command errors unless every lane of every profile attributes at
//! least `PCT` percent of the run's wall-clock to named span
//! categories, which is how CI asserts the profiler itself stays
//! honest.

use radar_obs::{BarrierCause, LaneProfile, Log2Histogram, ShardProfile, SpanKind};

use crate::args::Parsed;
use crate::json::Value;

const OPTIONS: &[&str] = &["top", "check-coverage"];
const SWITCHES: &[&str] = &["help"];

/// Default number of stall rows in the breakdown.
const DEFAULT_TOP: usize = 8;

pub(crate) fn command(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, OPTIONS, SWITCHES).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Err(help());
    }
    let path = match parsed.positionals.as_slice() {
        [path] => path,
        [] => return Err(format!("perf expects a FILE argument\n\n{}", help())),
        extra => return Err(format!("perf takes one FILE, got {extra:?}")),
    };
    let top = parsed
        .get_parsed("top", DEFAULT_TOP, "a row count")
        .map_err(|e| e.to_string())?;
    let min_coverage: Option<f64> = match parsed.get("check-coverage") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--check-coverage expects a percentage, got {raw:?}"))?,
        ),
    };

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = Value::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let profiles = extract_profiles(&value).map_err(|e| format!("{path}: {e}"))?;

    let mut out = String::new();
    for (i, profile) in profiles.iter().enumerate() {
        if profiles.len() > 1 {
            out.push_str(&format!("== profile {} ==\n", i + 1));
        }
        out.push_str(&profile.render(top));
        if profiles.len() > 1 && i + 1 < profiles.len() {
            out.push('\n');
        }
    }
    if let Some(pct) = min_coverage {
        for (i, profile) in profiles.iter().enumerate() {
            for (label, lane) in profile.lanes() {
                let cov = 100.0 * profile.coverage(lane);
                if cov < pct {
                    return Err(format!(
                        "coverage check failed: profile {} lane {label} attributes \
                         {cov:.1}% of wall-clock (< {pct}%)",
                        i + 1
                    ));
                }
            }
        }
        out.push_str(&format!(
            "coverage check passed: every lane ≥ {pct}% attributed\n"
        ));
    }
    Ok(out)
}

/// Pulls every profile object out of whichever container the file is:
/// a report (`shard_profile`), a bench artifact (`profiles`), or a
/// bare profile object (`lanes` at top level).
fn extract_profiles(value: &Value) -> Result<Vec<ShardProfile>, String> {
    if let Some(section) = value.get("shard_profile") {
        return Ok(vec![parse_profile(section)?]);
    }
    if let Some(list) = value.get("profiles").and_then(Value::as_array) {
        if list.is_empty() {
            return Err("the `profiles` array is empty".to_string());
        }
        return list.iter().map(parse_profile).collect();
    }
    if value.get("lanes").is_some() {
        return Ok(vec![parse_profile(value)?]);
    }
    Err(
        "no shard profile found — run `radar simulate --profile --shards N --json` \
         or point at a BENCH_profile.json artifact"
            .to_string(),
    )
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("profile field {key:?} is missing or not an integer"))
}

fn parse_histogram(v: &Value, key: &str) -> Result<Log2Histogram, String> {
    let h = v
        .get(key)
        .ok_or_else(|| format!("profile field {key:?} is missing"))?;
    let buckets: Vec<u64> = h
        .get("buckets")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{key}.buckets is missing"))?
        .iter()
        .map(|b| {
            b.as_u64()
                .ok_or_else(|| format!("{key}.buckets holds a non-integer"))
        })
        .collect::<Result<_, _>>()?;
    Ok(Log2Histogram::from_parts(
        need_u64(h, "count")?,
        need_u64(h, "sum")?,
        need_u64(h, "max")?,
        &buckets,
    ))
}

fn parse_lane(v: &Value) -> Result<(String, LaneProfile), String> {
    let label = v
        .get("lane")
        .and_then(Value::as_str)
        .ok_or("lane entry is missing its `lane` label")?
        .to_string();
    let mut lane = LaneProfile {
        items: need_u64(v, "items")?,
        cache_hits: need_u64(v, "cache_hits")?,
        cache_misses: need_u64(v, "cache_misses")?,
        ..LaneProfile::default()
    };
    let spans = v
        .get("spans_ns")
        .ok_or_else(|| format!("lane {label} is missing spans_ns"))?;
    match spans {
        Value::Obj(members) => {
            for (name, ns) in members {
                let kind = SpanKind::from_str_opt(name)
                    .ok_or_else(|| format!("lane {label}: unknown span category {name:?}"))?;
                let ns = ns
                    .as_u64()
                    .ok_or_else(|| format!("lane {label}: span {name:?} is not an integer"))?;
                lane.add_span(kind, ns);
            }
        }
        _ => return Err(format!("lane {label}: spans_ns is not an object")),
    }
    Ok((label, lane))
}

fn parse_profile(v: &Value) -> Result<ShardProfile, String> {
    let mut profile = ShardProfile {
        shards: need_u64(v, "shards")? as usize,
        wall_ns: need_u64(v, "wall_ns")?,
        handoff_ns: parse_histogram(v, "handoff_ns")?,
        batch_items: parse_histogram(v, "batch_items")?,
        ..ShardProfile::default()
    };
    let lanes = v
        .get("lanes")
        .and_then(Value::as_array)
        .ok_or("profile is missing its `lanes` array")?;
    for entry in lanes {
        let (label, lane) = parse_lane(entry)?;
        if label == "sequencer" {
            profile.sequencer = lane;
        } else {
            // Worker lanes are serialized in shard order.
            profile.workers.push(lane);
        }
    }
    let barriers = v.get("barriers").ok_or("profile is missing `barriers`")?;
    for cause in BarrierCause::ALL {
        profile.barriers[cause as usize] = need_u64(barriers, cause.as_str())?;
    }
    Ok(profile)
}

fn help() -> String {
    "radar perf — render shard-profile telemetry from a profiled run\n\
     \n\
     USAGE:\n\
     \x20 radar perf FILE [--top N] [--check-coverage PCT]\n\
     \n\
     FILE is a `radar simulate --profile --shards N --json` report, a\n\
     BENCH_profile.json bench artifact, or a bare profile object.\n\
     \n\
     OPTIONS:\n\
     \x20 --top N               stall rows in the breakdown (default 8)\n\
     \x20 --check-coverage PCT  error unless every lane attributes at least\n\
     \x20                       PCT percent of wall-clock to named categories\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> ShardProfile {
        let mut p = ShardProfile {
            shards: 2,
            wall_ns: 1_000_000,
            ..ShardProfile::default()
        };
        p.sequencer.add_span(SpanKind::Busy, 300_000);
        p.sequencer.add_span(SpanKind::ChannelWait, 690_000);
        p.sequencer.items = 500;
        p.sequencer.cache_hits = 10;
        let mut w = LaneProfile::default();
        w.add_span(SpanKind::Busy, 100_000);
        w.add_span(SpanKind::Idle, 890_000);
        w.items = 200;
        w.cache_hits = 150;
        w.cache_misses = 50;
        p.workers = vec![w, w];
        for _ in 0..400 {
            p.handoff_ns.record(58_000);
        }
        p.batch_items.record(3);
        p.barriers[BarrierCause::Placement as usize] = 4;
        p.barriers[BarrierCause::Fault as usize] = 1;
        p
    }

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("radar-perf-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).expect("write temp file");
        path
    }

    #[test]
    fn profile_round_trips_through_json_and_renders() {
        let profile = sample_profile();
        let json = format!(
            "{{\"total_requests\": 1,\n\"shard_profile\": {}\n}}",
            radar_sim::shard_profile_json(&profile).pretty()
        );
        let reparsed = extract_profiles(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(reparsed, vec![profile.clone()]);

        let path = write_temp("report.json", &json);
        let out = command(&[path.to_str().unwrap()]).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("sequencer"), "{out}");
        assert!(out.contains("worker-1"), "{out}");
        assert!(out.contains("channel-wait"), "{out}");
        assert!(out.contains("hand-off latency"), "{out}");
        assert!(out.contains("placement 4"), "{out}");
    }

    #[test]
    fn bench_artifact_with_multiple_profiles_renders_each() {
        let profile = sample_profile();
        let json = format!(
            "{{\"config\": {{\"seed\": 42}}, \"profiles\": [{p}, {p}]}}",
            p = radar_sim::shard_profile_json(&profile).pretty()
        );
        let path = write_temp("bench.json", &json);
        let out = command(&[path.to_str().unwrap(), "--top", "3"]).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("== profile 1 =="), "{out}");
        assert!(out.contains("== profile 2 =="), "{out}");
    }

    #[test]
    fn coverage_gate_passes_and_fails() {
        let profile = sample_profile();
        let json = format!(
            "{{\"shard_profile\": {}}}",
            radar_sim::shard_profile_json(&profile).pretty()
        );
        let path = write_temp("gate.json", &json);
        let ok = command(&[path.to_str().unwrap(), "--check-coverage", "95"]).unwrap();
        assert!(ok.contains("coverage check passed"), "{ok}");
        let err = command(&[path.to_str().unwrap(), "--check-coverage", "99.9"]).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("coverage check failed"), "{err}");
        assert!(err.contains("sequencer"), "{err}");
    }

    #[test]
    fn unprofiled_report_is_a_clear_error() {
        let path = write_temp("plain.json", "{\"total_requests\": 5}");
        let err = command(&[path.to_str().unwrap()]).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("no shard profile found"), "{err}");
    }

    #[test]
    fn help_and_bad_args() {
        assert!(command(&["--help"]).unwrap_err().contains("radar perf"));
        assert!(command(&[]).unwrap_err().contains("FILE"));
        assert!(command(&["a", "b"]).unwrap_err().contains("one FILE"));
    }
}
