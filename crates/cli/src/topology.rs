//! `radar topology` — inspect, validate, and convert backbone specs.

use radar_simnet::{builders, Region, Topology};

use crate::args::Parsed;

const SWITCHES: &[&str] = &["stats", "dot", "spec", "help"];

pub(crate) fn command(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, &[], SWITCHES).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Err(help());
    }
    let Some(source) = parsed.positionals.first() else {
        return Err(help());
    };
    if parsed.positionals.len() > 1 {
        return Err(format!(
            "topology takes one source, got {:?}",
            parsed.positionals
        ));
    }
    let topo = load(source)?;
    if parsed.has("dot") {
        return Ok(topo.to_dot());
    }
    if parsed.has("spec") {
        return Ok(topo.to_spec());
    }
    // Default (and --stats): a validation + statistics report.
    Ok(stats(source, &topo))
}

fn load(source: &str) -> Result<Topology, String> {
    if source == "uunet" {
        return Ok(builders::uunet());
    }
    let text = std::fs::read_to_string(source)
        .map_err(|e| format!("cannot read topology {source}: {e}"))?;
    Topology::from_spec(&text).map_err(|e| e.to_string())
}

fn stats(source: &str, topo: &Topology) -> String {
    let routes = topo.routes();
    let mut out = format!("topology {source}: valid\n");
    out.push_str(&format!(
        "nodes     {} ({})\n",
        topo.len(),
        Region::ALL
            .iter()
            .map(|&r| format!("{} {}", topo.nodes_in_region(r).len(), r.label()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("links     {}\n", topo.links().len()));
    out.push_str(&format!("diameter  {} hops\n", routes.diameter()));
    out.push_str(&format!(
        "centroid  {} (natural redirector home)\n",
        topo.name(routes.centroid())
    ));
    let n = topo.len() as f64;
    let total: f64 = topo
        .nodes()
        .flat_map(|a| topo.nodes().map(move |b| (a, b)))
        .map(|(a, b)| routes.distance(a, b) as f64)
        .sum();
    out.push_str(&format!(
        "mean path {:.2} hops\n",
        total / (n * (n - 1.0)).max(1.0)
    ));
    out
}

fn help() -> String {
    "radar topology — inspect a backbone\n\
     \n\
     USAGE: radar topology <uunet|FILE> [--stats|--dot|--spec]\n\
     \n\
     \x20 --stats   validation + statistics report (default)\n\
     \x20 --dot     Graphviz rendering\n\
     \x20 --spec    normalized spec-format output\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_uunet_stats() {
        let out = command(&["uunet"]).unwrap();
        assert!(out.contains("nodes     53"));
        assert!(out.contains("diameter"));
        assert!(out.contains("centroid"));
    }

    #[test]
    fn dot_and_spec_outputs() {
        let dot = command(&["uunet", "--dot"]).unwrap();
        assert!(dot.starts_with("graph backbone"));
        let spec = command(&["uunet", "--spec"]).unwrap();
        assert!(spec.contains("node Seattle wna"));
        // The spec output round-trips through the loader.
        let reparsed = Topology::from_spec(&spec).unwrap();
        assert_eq!(reparsed.len(), 53);
    }

    #[test]
    fn missing_file_reported() {
        let err = command(&["/nonexistent/backbone.spec"]).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn no_source_prints_help() {
        let err = command(&[]).unwrap_err();
        assert!(err.contains("USAGE"));
    }
}
