//! The `radar` binary: see [`radar_cli::usage`] or run with `--help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match radar_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
