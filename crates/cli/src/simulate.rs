//! `radar simulate` — configure and run one simulation.

use radar_baselines::{
    AvailabilityPlacement, ClosestSelection, ClusterPlacement, RandomSelection, RoundRobinSelection,
};
use radar_core::{Catalog, ConsistencyMix};
use radar_sim::{
    PlacementMode, PlacementPolicy, RadarPlacement, RadarSelection, RunReport, Scenario,
    SelectionPolicy, Simulation, Trace,
};
use radar_simnet::Topology;
use radar_workload::{HotPages, HotSites, Regional, Uniform, Workload, ZipfReeds};

use crate::args::Parsed;
use crate::render;

const OPTIONS: &[&str] = &[
    "workload",
    "policy",
    "placement",
    "consistency",
    "objects",
    "rate",
    "duration",
    "seed",
    "watermarks",
    "topology",
    "redirectors",
    "update-rate",
    "storage-limit",
    "replay",
    "record-trace",
    "faults",
    "events",
    "shards",
    "out",
];
const SWITCHES: &[&str] = &["static", "json", "dashboard", "profile", "ledger", "help"];

/// How many hosts/objects the dashboard panels display.
const DASHBOARD_TOP: usize = 8;

/// The workload families the CLI can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Zipf popularity (Reeds' closed form).
    Zipf,
    /// 10% of sites draw 90% of requests.
    HotSites,
    /// 10% of pages draw 90% of requests.
    HotPages,
    /// Regional preferred object slices.
    Regional,
    /// Uniform popularity.
    Uniform,
}

impl WorkloadKind {
    fn parse(name: &str) -> Result<Self, String> {
        match name {
            "zipf" => Ok(Self::Zipf),
            "hot-sites" => Ok(Self::HotSites),
            "hot-pages" => Ok(Self::HotPages),
            "regional" => Ok(Self::Regional),
            "uniform" => Ok(Self::Uniform),
            other => Err(format!(
                "unknown workload {other:?} (zipf, hot-sites, hot-pages, regional, uniform)"
            )),
        }
    }

    fn build(
        self,
        objects: u32,
        nodes: u16,
        seed: u64,
        topology: &Topology,
    ) -> Box<dyn Workload + Send> {
        let mut rng = radar_simcore::SimRng::seed_from(seed ^ 0x9E37_79B9_7F4A_7C15);
        match self {
            Self::Zipf => Box::new(ZipfReeds::new(objects)),
            Self::HotSites => Box::new(HotSites::new(objects, nodes, 0.1, 0.9, &mut rng)),
            Self::HotPages => Box::new(HotPages::new(objects, 0.1, 0.9, &mut rng)),
            Self::Regional => Box::new(Regional::new(objects, topology, 0.01, 0.9)),
            Self::Uniform => Box::new(Uniform::new(objects)),
        }
    }
}

/// Fully resolved `simulate` arguments.
#[derive(Debug)]
pub struct SimulateArgs {
    /// The scenario to run.
    pub scenario: Scenario,
    /// Which workload family drives it (`None` when replaying a trace).
    pub workload: Option<WorkloadKind>,
    /// Replica-selection policy name.
    pub policy: String,
    /// Replica-placement policy name.
    pub placement: String,
    /// Replay source, if any.
    pub replay: Option<Trace>,
    /// Capture arrivals and write them here.
    pub record_trace_to: Option<String>,
    /// Stream flight-recorder events (JSONL) here and enable event-loop
    /// profiling.
    pub events_to: Option<String>,
    /// Worker shards for the parallel event loop (1 = serial loop).
    pub shards: usize,
    /// Collect per-shard performance telemetry (span accounting,
    /// hand-off histograms, barrier counters) for the report's
    /// `shard_profile` section and the dashboard's shard panel.
    pub profile: bool,
    /// Enable the protocol-health ledger (per-object timelines, churn
    /// attribution, invariant audit) for the report's
    /// `protocol_health` section. Implied by `--dashboard`, which
    /// renders the live protocol panel from it.
    pub ledger: bool,
    /// Fold the event stream into live dashboard metrics (repainted on
    /// stderr when it is a terminal; the final frame joins the report).
    pub dashboard: bool,
    /// Emit the full report as JSON instead of the text summary.
    pub json: bool,
    /// Write output here instead of returning it for stdout.
    pub out: Option<String>,
}

impl SimulateArgs {
    /// Parses command-line arguments into a runnable configuration.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed flags, unreadable files, or
    /// invalid scenario combinations.
    pub fn parse(args: &[&str]) -> Result<Self, String> {
        let parsed = Parsed::parse(args, OPTIONS, SWITCHES).map_err(|e| e.to_string())?;
        if parsed.has("help") {
            return Err(help());
        }
        if let Some(extra) = parsed.positionals.first() {
            return Err(format!(
                "simulate takes no positional arguments, got {extra:?}"
            ));
        }
        let objects = parsed
            .get_parsed("objects", 1_000u32, "an object count")
            .map_err(|e| e.to_string())?;
        let rate = parsed
            .get_parsed("rate", 10.0f64, "requests/second")
            .map_err(|e| e.to_string())?;
        let duration = parsed
            .get_parsed("duration", 600.0f64, "seconds")
            .map_err(|e| e.to_string())?;
        let seed = parsed
            .get_parsed("seed", 1u64, "an integer seed")
            .map_err(|e| e.to_string())?;
        let redirectors = parsed
            .get_parsed("redirectors", 1u16, "a redirector count")
            .map_err(|e| e.to_string())?;
        let update_rate = parsed
            .get_parsed("update-rate", 0.0f64, "updates/second")
            .map_err(|e| e.to_string())?;
        let shards = parsed
            .get_parsed("shards", 1usize, "a shard count")
            .map_err(|e| e.to_string())?;
        if shards == 0 {
            return Err("--shards expects at least 1".to_string());
        }

        let mut builder = Scenario::builder()
            .num_objects(objects)
            .node_request_rate(rate)
            .duration(duration)
            .seed(seed)
            .num_redirectors(redirectors)
            .update_rate(update_rate);
        // The topology is resolved before build() because the §5 catalog
        // below round-robins primaries over its node count.
        let topology = match parsed.get("topology") {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read topology {path}: {e}"))?;
                Topology::from_spec(&text).map_err(|e| e.to_string())?
            }
            None => radar_simnet::builders::uunet(),
        };
        let nodes = topology.len() as u16;
        builder = builder.topology(topology);
        let consistency = match parsed.get("consistency") {
            None => ConsistencyMix::ReadOnly,
            Some(name) => ConsistencyMix::parse(name).ok_or_else(|| {
                format!("unknown consistency mix {name:?} (read-only, mixed, write-heavy)")
            })?,
        };
        if consistency != ConsistencyMix::ReadOnly {
            // 12 KiB matches the default uniform catalog's object size
            // (paper §6.1), so the mixes differ only in §5 kinds.
            builder = builder.catalog(Catalog::with_mix(objects, 12 * 1024, nodes, consistency));
        }
        if let Some(spec) = parsed.get("watermarks") {
            let (lw, hw) = spec
                .split_once(',')
                .and_then(|(a, b)| Some((a.trim().parse().ok()?, b.trim().parse().ok()?)))
                .ok_or_else(|| format!("--watermarks expects `low,high`, got {spec:?}"))?;
            let params = radar_core::Params::builder()
                .watermarks(lw, hw)
                .build()
                .map_err(|e| e.to_string())?;
            builder = builder.params(params);
        }
        if let Some(limit) = parsed.get("storage-limit") {
            let limit: u32 = limit
                .parse()
                .map_err(|_| format!("--storage-limit expects an integer, got {limit:?}"))?;
            builder = builder.storage_limit(limit);
        }
        if parsed.has("static") {
            builder = builder.placement(PlacementMode::Static);
        }
        if let Some(path) = parsed.get("faults") {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read fault schedule {path}: {e}"))?;
            let spec = radar_sim::FaultSpec::from_text(&text).map_err(|e| e.to_string())?;
            builder = builder.faults(spec);
        }
        let scenario = builder.build().map_err(|e| e.to_string())?;

        let replay = match parsed.get("replay") {
            None => None,
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read trace {path}: {e}"))?;
                Some(Trace::from_text(&text).map_err(|e| e.to_string())?)
            }
        };
        let workload = if replay.is_some() {
            if parsed.get("workload").is_some() {
                return Err("--replay and --workload are mutually exclusive".to_string());
            }
            None
        } else {
            Some(WorkloadKind::parse(
                parsed.get("workload").unwrap_or("zipf"),
            )?)
        };
        let policy = parsed.get("policy").unwrap_or("radar").to_string();
        if !["radar", "round-robin", "closest", "random"].contains(&policy.as_str()) {
            return Err(format!(
                "unknown policy {policy:?} (radar, round-robin, closest, random)"
            ));
        }
        let placement = parsed.get("placement").unwrap_or("radar").to_string();
        if !["radar", "availability", "cluster"].contains(&placement.as_str()) {
            return Err(format!(
                "unknown placement {placement:?} (radar, availability, cluster)"
            ));
        }
        if replay.is_some() && policy != "radar" {
            return Err("--replay currently supports only the radar policy".to_string());
        }
        if replay.is_some() && placement != "radar" {
            return Err("--replay currently supports only the radar placement".to_string());
        }

        Ok(SimulateArgs {
            scenario,
            workload,
            policy,
            placement,
            replay,
            record_trace_to: parsed.get("record-trace").map(str::to_string),
            events_to: parsed.get("events").map(str::to_string),
            shards,
            profile: parsed.has("profile"),
            ledger: parsed.has("ledger"),
            dashboard: parsed.has("dashboard"),
            json: parsed.has("json"),
            out: parsed.get("out").map(str::to_string),
        })
    }

    /// Runs the configured simulation and returns the finished report.
    pub fn execute(self) -> Result<(RunReport, OutputSettings), String> {
        let seed = self.scenario.seed;
        let objects = self.scenario.num_objects;
        let nodes = self.scenario.num_nodes();
        let mut sim = match (&self.replay, self.workload) {
            (Some(trace), _) => Simulation::replay(self.scenario.clone(), trace.clone()),
            (None, Some(kind)) => {
                let workload = kind.build(objects, nodes, seed, &self.scenario.topology);
                let policy: Box<dyn SelectionPolicy + Send> = match self.policy.as_str() {
                    "radar" => Box::new(RadarSelection::new()),
                    "round-robin" => Box::new(RoundRobinSelection::new()),
                    "closest" => Box::new(ClosestSelection::new()),
                    "random" => Box::new(RandomSelection::new(seed)),
                    other => unreachable!("validated policy {other}"),
                };
                let placement: Box<dyn PlacementPolicy + Send> = match self.placement.as_str() {
                    "radar" => Box::new(RadarPlacement::new()),
                    "availability" => Box::new(AvailabilityPlacement::new()),
                    "cluster" => Box::new(ClusterPlacement::new()),
                    other => unreachable!("validated placement {other}"),
                };
                Simulation::with_policies(self.scenario.clone(), workload, policy, placement)
            }
            (None, None) => unreachable!("parse() sets workload unless replaying"),
        };
        if self.record_trace_to.is_some() {
            sim.record_trace();
        }
        let events = match &self.events_to {
            None => None,
            Some(path) => {
                // Stream every event to the file as it happens (the ring
                // only bounds in-memory retention) and profile the loop.
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create events file {path}: {e}"))?;
                let sink = Box::new(std::io::BufWriter::new(file));
                let recorder =
                    radar_sim::obs::Recorder::new(radar_sim::obs::DEFAULT_CAPACITY).with_sink(sink);
                let shared = radar_sim::obs::SharedRecorder::from_recorder(recorder);
                sim.attach_observer(Box::new(shared.clone()));
                sim.enable_loop_profile();
                Some((path.clone(), shared))
            }
        };
        let shard_profile = if self.profile {
            // Loop profiling is compiled in regardless; --profile adds
            // the per-shard span/stall telemetry and, without --events,
            // still turns on the loop profile for the text output.
            sim.enable_loop_profile();
            Some(sim.enable_shard_profile())
        } else {
            None
        };
        // The dashboard's protocol panel reads live ledger snapshots,
        // so --dashboard implies the ledger.
        let ledger = if self.ledger || self.dashboard {
            Some(sim.enable_object_ledger())
        } else {
            None
        };
        let metrics = if self.dashboard {
            // Mirror the scenario parameters the simulator's own metrics
            // use, so the folded aggregates line up with the report.
            let cfg = radar_sim::obs::MetricsConfig {
                object_size: self.scenario.object_size,
                bandwidth_bin: self.scenario.metric_bin,
                load_interval: self.scenario.params.measurement_interval,
                ..radar_sim::obs::MetricsConfig::default()
            };
            let shared = radar_sim::obs::SharedMetrics::new(cfg);
            let mut dash = crate::dashboard::LiveDashboard::new(shared.clone(), DASHBOARD_TOP);
            if let Some(live) = &shard_profile {
                // Live frames gain a per-shard utilization column,
                // refreshed from the snapshot each barrier publishes.
                dash = dash.with_shard_profile(live.clone());
            }
            if let Some(ledger) = &ledger {
                dash = dash.with_ledger(ledger.clone());
            }
            sim.attach_observer(Box::new(dash));
            Some(shared)
        } else {
            None
        };
        let duration = self.scenario.duration;
        let report = sim.run_sharded(self.shards);
        if let Some((path, shared)) = &events {
            if let Some(err) = shared.finish() {
                return Err(format!("error writing events file {path}: {err}"));
            }
        }
        if let Some(shared) = &metrics {
            shared.finalize(duration);
        }
        Ok((
            report,
            OutputSettings {
                record_trace_to: self.record_trace_to,
                events_to: events.map(|(path, _)| path),
                metrics,
                json: self.json,
                out: self.out,
            },
        ))
    }
}

/// Output settings surviving the run (the scenario is consumed by it).
#[derive(Debug)]
pub struct OutputSettings {
    record_trace_to: Option<String>,
    events_to: Option<String>,
    metrics: Option<radar_sim::obs::SharedMetrics>,
    json: bool,
    out: Option<String>,
}

pub(crate) fn command(args: &[&str]) -> Result<String, String> {
    let parsed = SimulateArgs::parse(args)?;
    let (report, output) = parsed.execute()?;
    if let Some(path) = &output.record_trace_to {
        let trace = report
            .trace
            .as_ref()
            .expect("record_trace was enabled before the run");
        std::fs::write(path, trace.to_text())
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
    }
    let mut body = if output.json {
        report.to_json_pretty()
    } else {
        render::summary(&report)
    };
    if !output.json {
        if let Some(shared) = &output.metrics {
            body.push('\n');
            body.push_str(&shared.with(|m| crate::dashboard::render(m, DASHBOARD_TOP)));
        }
        if let Some(profile) = &report.loop_profile {
            body.push('\n');
            body.push_str(&profile.to_string());
        }
        if let Some(profile) = &report.shard_profile {
            body.push('\n');
            body.push_str(&profile.render(DASHBOARD_TOP));
        }
        if let Some(health) = &report.protocol_health {
            body.push('\n');
            body.push_str(&health.render());
        }
        if let Some(path) = &output.events_to {
            body.push_str(&format!(
                "\nevents written to {path} (inspect with `radar events summary {path}`)\n"
            ));
        }
    }
    match &output.out {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!("report written to {path}\n"))
        }
        None => Ok(body),
    }
}

fn help() -> String {
    "radar simulate — run a hosting-platform simulation\n\
     \n\
     OPTIONS:\n\
     \x20 --workload W        zipf | hot-sites | hot-pages | regional | uniform (default zipf)\n\
     \x20 --policy P          radar | round-robin | closest | random (default radar)\n\
     \x20 --placement P       replica-placement policy: radar | availability | cluster\n\
     \x20                     (default radar, the paper's §4 distribution algorithm)\n\
     \x20 --consistency M     §5 consistency mix: read-only | mixed | write-heavy\n\
     \x20                     (default read-only; mixes add type-2/type-3 objects\n\
     \x20                     with merge / replica-cap semantics under --update-rate)\n\
     \x20 --objects N         hosted objects (default 1000)\n\
     \x20 --rate R            requests/second per gateway (default 10)\n\
     \x20 --duration S        simulated seconds (default 600)\n\
     \x20 --seed N            RNG seed (default 1)\n\
     \x20 --watermarks L,H    low/high watermarks in req/s (default 80,90)\n\
     \x20 --topology FILE     backbone spec file (default: built-in 53-node UUNET)\n\
     \x20 --redirectors N     hash-partitioned redirectors (default 1)\n\
     \x20 --update-rate R     provider updates/second across all objects (default 0)\n\
     \x20 --storage-limit N   max objects per host (default unbounded)\n\
     \x20 --static            freeze placement (no protocol decisions)\n\
     \x20 --faults FILE       inject host/link faults from a schedule file\n\
     \x20 --replay FILE       replay a recorded trace instead of a workload\n\
     \x20 --record-trace FILE capture this run's arrivals for later replay\n\
     \x20 --events FILE       stream flight-recorder events (JSONL) to FILE and\n\
     \x20                     profile the event loop (see `radar events --help`)\n\
     \x20 --shards N          run the event loop on N worker shards (default 1);\n\
     \x20                     any fixed N reproduces the same seeded outputs\n\
     \x20 --profile           collect per-shard telemetry (span accounting, hand-off\n\
     \x20                     histograms, barrier counts): a `shard_profile` report\n\
     \x20                     section, a text table, and a dashboard panel — wall-clock\n\
     \x20                     numbers only, the event stream stays untouched\n\
     \x20 --ledger            reconstruct per-object replica timelines, churn and\n\
     \x20                     relocation-cost attribution, and run the replica-set\n\
     \x20                     invariant audit: a `protocol_health` report section\n\
     \x20                     plus a text summary (see `radar objects --help`)\n\
     \x20 --dashboard         fold the event stream into live metrics: repaint a\n\
     \x20                     dashboard on stderr while running (TTY only) and\n\
     \x20                     append the final frame to the report; implies\n\
     \x20                     --ledger and adds its live protocol-health panel\n\
     \x20 --json              emit the full report as JSON\n\
     \x20 --out FILE          write output to FILE instead of stdout\n"
        .to_string()
}
