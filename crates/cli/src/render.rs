//! Human-readable run summaries.

use radar_sim::RunReport;
use radar_stats::EquilibriumSpec;

/// Renders the headline numbers of a finished run.
pub fn summary(report: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "workload {} | policy {} | placement {} ({})\n",
        report.workload,
        report.policy,
        report.placement_policy,
        if report.dynamic_placement {
            "dynamic"
        } else {
            "static"
        }
    ));
    out.push_str(&format!(
        "requests           {:>12}\n",
        report.total_requests
    ));
    out.push_str(&format!(
        "latency            {:>9.1} ms mean | {:.1} ms p50 | {:.1} ms p99\n",
        report.latency.mean * 1e3,
        report.latency_p50 * 1e3,
        report.latency_p99 * 1e3,
    ));
    out.push_str(&format!(
        "  breakdown        {:>9.1} ms redirect | {:.1} ms queueing | {:.1} ms travel\n",
        report.redirect_delay.mean * 1e3,
        report.queueing_delay.mean * 1e3,
        report.response_travel.mean * 1e3,
    ));
    let initial = report.initial_bandwidth_rate();
    let equilibrium = report.equilibrium_bandwidth_rate();
    out.push_str(&format!(
        "bandwidth          {:>9.2} MB·hops/s initial → {:.2} at equilibrium ({:+.1}%)\n",
        initial / 1e6,
        equilibrium / 1e6,
        if initial > 0.0 {
            (equilibrium - initial) / initial * 100.0
        } else {
            0.0
        }
    ));
    let peak_overhead = report
        .overhead_fractions()
        .into_iter()
        .fold(0.0f64, f64::max);
    out.push_str(&format!(
        "relocation traffic {:>9.2}% of total at peak\n",
        peak_overhead * 100.0
    ));
    out.push_str(&format!(
        "replicas/object    {:>9.2} at equilibrium\n",
        report.equilibrium_avg_replicas()
    ));
    out.push_str(&format!(
        "relocations        {:>9} geo-migrations | {} geo-replications | {} offload | {} drops\n",
        report.geo_migrations,
        report.geo_replications,
        report.offload_migrations + report.offload_replications,
        report.drops,
    ));
    if report.updates_propagated > 0 {
        out.push_str(&format!(
            "updates            {:>9} propagated | {} primary moves\n",
            report.updates_propagated, report.primary_reassignments
        ));
        let [t1, t2, t3] = report.updates_by_class;
        out.push_str(&format!(
            "  by class         {:>9} type-1 | {} type-2 | {} type-3\n",
            t1, t2, t3
        ));
        out.push_str(&format!(
            "  deliveries       {:>9} applied | {} merged (type-2) | {} wasted\n",
            report.update_deliveries, report.updates_merged, report.wasted_deliveries
        ));
        if report.update_lag_type1.count > 0 || report.update_lag_type2.count > 0 {
            out.push_str(&format!(
                "  staleness        {:>9.2} s mean type-1 lag (max {:.2}) | {:.2} s mean type-2\n",
                report.update_lag_type1.mean,
                report.update_lag_type1.max,
                report.update_lag_type2.mean,
            ));
        }
        let update_total: f64 = report.update_bandwidth.sums().iter().sum();
        out.push_str(&format!(
            "  propagation      {:>9.2} MB·hops of update traffic\n",
            update_total / 1e6
        ));
    }
    if report.faults_injected > 0 {
        out.push_str(&format!(
            "faults             {:>9} injected | {} failed requests | {:.4}% availability\n",
            report.faults_injected,
            report.failed_requests,
            report.availability() * 100.0
        ));
        out.push_str(&format!(
            "  degradation      {:>9.1} object-seconds unavailable | {} re-replications | {:.1} s mean restore\n",
            report.unavailable_object_seconds,
            report.re_replications,
            report.restore_time.mean,
        ));
    }
    match report.adjustment(EquilibriumSpec::default()) {
        Some(adj) => out.push_str(&format!(
            "adjustment time    {:>9.1} min\n",
            adj.adjustment_time / 60.0
        )),
        None => out.push_str("adjustment time        (did not settle)\n"),
    }
    let warmup = report.max_load.len() * 3 / 4;
    out.push_str(&format!(
        "peak host load     {:>9.1} req/s overall | {:.1} in the final quarter\n",
        report.peak_load(),
        report.peak_load_after(warmup)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_sim::{Scenario, Simulation};
    use radar_workload::ZipfReeds;

    #[test]
    fn summary_contains_headlines() {
        let scenario = Scenario::builder()
            .num_objects(60)
            .node_request_rate(1.0)
            .duration(60.0)
            .build()
            .expect("valid scenario");
        let report = Simulation::new(scenario, Box::new(ZipfReeds::new(60))).run();
        let text = summary(&report);
        for needle in [
            "workload zipf",
            "policy radar",
            "requests",
            "latency",
            "bandwidth",
            "replicas/object",
            "peak host load",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
