//! `radar trace` — inspect and validate request traces.

use radar_sim::Trace;

use crate::args::Parsed;

pub(crate) fn command(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, &[], &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Err(help());
    }
    match parsed.positionals.as_slice() {
        [sub, path] if sub == "validate" => {
            let trace = load(path)?;
            Ok(format!(
                "{path}: valid, {} requests over {:.1}s\n",
                trace.len(),
                trace.duration()
            ))
        }
        [sub, path] if sub == "stats" => {
            let trace = load(path)?;
            Ok(stats(path, &trace))
        }
        _ => Err(help()),
    }
}

fn load(path: &str) -> Result<Trace, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    Trace::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

/// Rows listed per share table before the remainder is folded into a
/// trailing "… N more" line.
const TOP_ROWS: usize = 10;

fn stats(path: &str, trace: &Trace) -> String {
    let mut gateways = std::collections::BTreeMap::new();
    let mut objects = std::collections::BTreeMap::new();
    for e in trace.entries() {
        *gateways.entry(u32::from(e.gateway)).or_insert(0u64) += 1;
        *objects.entry(e.object).or_insert(0u64) += 1;
    }
    let duration = trace.duration();
    // A single-entry (or empty) trace spans zero time: there is no
    // meaningful request rate, so say so instead of dividing by zero.
    let rate = if duration > 0.0 {
        format!("{:.1} req/s", trace.len() as f64 / duration)
    } else {
        "rate n/a".to_string()
    };
    let mut out = format!("trace {path}\n");
    out.push_str(&format!(
        "requests   {} over {duration:.1}s ({rate})\n",
        trace.len(),
    ));
    out.push_str(&format!("gateways   {} distinct\n", gateways.len()));
    out.push_str(&share_table("gateway", &gateways, trace.len()));
    out.push_str(&format!("objects    {} distinct\n", objects.len()));
    out.push_str(&share_table("object", &objects, trace.len()));
    out
}

/// Renders a fixed-width count/share table, busiest first (ties broken
/// by id), truncated to [`TOP_ROWS`] rows.
fn share_table(label: &str, counts: &std::collections::BTreeMap<u32, u64>, total: usize) -> String {
    let mut rows: Vec<(u64, u32)> = counts.iter().map(|(&id, &c)| (c, id)).collect();
    rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut out = format!("  {label:<10} {:>9} {:>7}\n", "count", "share");
    for &(count, id) in rows.iter().take(TOP_ROWS) {
        let share = if total > 0 {
            100.0 * count as f64 / total as f64
        } else {
            0.0
        };
        out.push_str(&format!("  {id:<10} {count:>9} {share:>6.1}%\n"));
    }
    if rows.len() > TOP_ROWS {
        out.push_str(&format!("  … {} more\n", rows.len() - TOP_ROWS));
    }
    out
}

fn help() -> String {
    "radar trace — inspect request traces\n\
     \n\
     USAGE:\n\
     \x20 radar trace validate FILE   parse + order-check a trace\n\
     \x20 radar trace stats FILE      request/gateway/object statistics\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_trace(name: &str, body: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("radar-cli-{name}.trace"));
        std::fs::write(&path, body).expect("temp file writable");
        path
    }

    #[test]
    fn validate_and_stats() {
        let path = temp_trace("ok", "0 1 5\n0.5 1 5\n1.0 2 6\n");
        let p = path.to_str().expect("utf-8 temp path");
        let out = command(&["validate", p]).unwrap();
        assert!(out.contains("valid, 3 requests"));
        let out = command(&["stats", p]).unwrap();
        assert!(out.contains("2 distinct"), "{out}");
        // Gateway 1 carries 2 of 3 requests; object 5 likewise.
        assert!(out.contains("1                  2   66.7%"), "{out}");
        assert!(out.contains("5                  2   66.7%"), "{out}");
        assert!(out.contains("3.0 req/s"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn single_entry_trace_has_no_rate() {
        let path = temp_trace("single", "0 3 9\n");
        let p = path.to_str().expect("utf-8 temp path");
        let out = command(&["stats", p]).unwrap();
        assert!(out.contains("1 over 0.0s (rate n/a)"), "{out}");
        assert!(out.contains("3                  1  100.0%"), "{out}");
        assert!(!out.contains("inf"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn invalid_trace_reported() {
        let path = temp_trace("bad", "1 0 0\n0 0 0\n");
        let p = path.to_str().expect("utf-8 temp path");
        let err = command(&["validate", p]).unwrap_err();
        assert!(err.contains("sorted"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_subcommand_prints_help() {
        let err = command(&["frobnicate", "x"]).unwrap_err();
        assert!(err.contains("USAGE"));
    }
}
