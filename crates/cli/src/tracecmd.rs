//! `radar trace` — inspect and validate request traces.

use radar_sim::Trace;

use crate::args::Parsed;

pub(crate) fn command(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, &["top"], &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Err(help());
    }
    match parsed.positionals.as_slice() {
        [sub, path] if sub == "validate" => {
            let trace = load(path)?;
            Ok(format!(
                "{path}: valid, {} requests over {:.1}s\n",
                trace.len(),
                trace.duration()
            ))
        }
        [sub, path] if sub == "stats" => {
            let trace = load(path)?;
            Ok(stats(path, &trace))
        }
        [sub, path] if sub == "objects" => {
            let top: usize = parsed
                .get_parsed("top", TOP_ROWS, "a row count")
                .map_err(|e| e.to_string())?;
            let trace = load(path)?;
            Ok(objects(path, &trace, top))
        }
        _ => Err(help()),
    }
}

fn load(path: &str) -> Result<Trace, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    Trace::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

/// Rows listed per share table before the remainder is folded into a
/// trailing "… N more" line.
const TOP_ROWS: usize = 10;

fn stats(path: &str, trace: &Trace) -> String {
    let mut gateways = std::collections::BTreeMap::new();
    let mut objects = std::collections::BTreeMap::new();
    for e in trace.entries() {
        *gateways.entry(u32::from(e.gateway)).or_insert(0u64) += 1;
        *objects.entry(e.object).or_insert(0u64) += 1;
    }
    let duration = trace.duration();
    // A single-entry (or empty) trace spans zero time: there is no
    // meaningful request rate, so say so instead of dividing by zero.
    let rate = if duration > 0.0 {
        format!("{:.1} req/s", trace.len() as f64 / duration)
    } else {
        "rate n/a".to_string()
    };
    let mut out = format!("trace {path}\n");
    out.push_str(&format!(
        "requests   {} over {duration:.1}s ({rate})\n",
        trace.len(),
    ));
    out.push_str(&format!("gateways   {} distinct\n", gateways.len()));
    out.push_str(&share_table("gateway", &gateways, trace.len()));
    out.push_str(&format!("objects    {} distinct\n", objects.len()));
    out.push_str(&share_table("object", &objects, trace.len()));
    out
}

/// Renders a fixed-width count/share table, busiest first (ties broken
/// by id), truncated to [`TOP_ROWS`] rows.
fn share_table(label: &str, counts: &std::collections::BTreeMap<u32, u64>, total: usize) -> String {
    let mut rows: Vec<(u64, u32)> = counts.iter().map(|(&id, &c)| (c, id)).collect();
    rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut out = format!("  {label:<10} {:>9} {:>7}\n", "count", "share");
    for &(count, id) in rows.iter().take(TOP_ROWS) {
        let share = if total > 0 {
            100.0 * count as f64 / total as f64
        } else {
            0.0
        };
        out.push_str(&format!("  {id:<10} {count:>9} {share:>6.1}%\n"));
    }
    if rows.len() > TOP_ROWS {
        out.push_str(&format!("  … {} more\n", rows.len() - TOP_ROWS));
    }
    out
}

/// Per-object request-share breakdown with a Zipf skew fit: the
/// paper's workloads are Zipf-like, and placement behaviour (and thus
/// churn) is driven by how skewed the popularity really is.
fn objects(path: &str, trace: &Trace, top: usize) -> String {
    let mut counts = std::collections::BTreeMap::new();
    for e in trace.entries() {
        *counts.entry(e.object).or_insert(0u64) += 1;
    }
    let total = trace.len();
    let mut out = format!("trace {path}\n");
    out.push_str(&format!(
        "requests   {total} across {} distinct objects\n",
        counts.len()
    ));
    let mut ranked: Vec<(u64, u32)> = counts.iter().map(|(&id, &c)| (c, id)).collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    out.push_str(&format!(
        "  {:<6} {:<10} {:>9} {:>7} {:>7}\n",
        "rank", "object", "count", "share", "cum"
    ));
    let mut cum = 0u64;
    for (rank, &(count, id)) in ranked.iter().enumerate() {
        cum += count;
        if rank < top {
            let share = 100.0 * count as f64 / total.max(1) as f64;
            let cum_share = 100.0 * cum as f64 / total.max(1) as f64;
            out.push_str(&format!(
                "  {:<6} {id:<10} {count:>9} {share:>6.1}% {cum_share:>6.1}%\n",
                rank + 1
            ));
        }
    }
    if ranked.len() > top {
        out.push_str(&format!("  … {} more objects\n", ranked.len() - top));
    }
    if let Some((alpha, r2)) = zipf_fit(&ranked) {
        out.push_str(&format!(
            "zipf fit   count ∝ rank^-α with α = {alpha:.3} (R² = {r2:.3}) \
             over {} ranks\n",
            ranked.len()
        ));
        let skew = if alpha < 0.5 {
            "near-uniform popularity"
        } else if alpha < 1.2 {
            "moderately skewed (classic web-workload territory)"
        } else {
            "heavily skewed: a few objects dominate"
        };
        out.push_str(&format!("           {skew}\n"));
    } else {
        out.push_str("zipf fit   n/a (need at least two distinct objects)\n");
    }
    out
}

/// Least-squares fit of `ln(count) = c - α·ln(rank)` over the ranked
/// counts; returns `(α, R²)`. `None` when fewer than two ranks exist
/// (the slope is undefined).
fn zipf_fit(ranked: &[(u64, u32)]) -> Option<(f64, f64)> {
    if ranked.len() < 2 {
        return None;
    }
    let points: Vec<(f64, f64)> = ranked
        .iter()
        .enumerate()
        .map(|(i, &(count, _))| (((i + 1) as f64).ln(), (count as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let syy: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    // All counts equal → syy == 0: a perfectly flat (α = 0) fit.
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some((-slope, r2))
}

fn help() -> String {
    "radar trace — inspect request traces\n\
     \n\
     USAGE:\n\
     \x20 radar trace validate FILE           parse + order-check a trace\n\
     \x20 radar trace stats FILE              request/gateway/object statistics\n\
     \x20 radar trace objects FILE [--top N]  per-object request shares with a\n\
     \x20                                     Zipf skew fit (α via log-log\n\
     \x20                                     least squares)\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_trace(name: &str, body: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("radar-cli-{name}.trace"));
        std::fs::write(&path, body).expect("temp file writable");
        path
    }

    #[test]
    fn validate_and_stats() {
        let path = temp_trace("ok", "0 1 5\n0.5 1 5\n1.0 2 6\n");
        let p = path.to_str().expect("utf-8 temp path");
        let out = command(&["validate", p]).unwrap();
        assert!(out.contains("valid, 3 requests"));
        let out = command(&["stats", p]).unwrap();
        assert!(out.contains("2 distinct"), "{out}");
        // Gateway 1 carries 2 of 3 requests; object 5 likewise.
        assert!(out.contains("1                  2   66.7%"), "{out}");
        assert!(out.contains("5                  2   66.7%"), "{out}");
        assert!(out.contains("3.0 req/s"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn single_entry_trace_has_no_rate() {
        let path = temp_trace("single", "0 3 9\n");
        let p = path.to_str().expect("utf-8 temp path");
        let out = command(&["stats", p]).unwrap();
        assert!(out.contains("1 over 0.0s (rate n/a)"), "{out}");
        assert!(out.contains("3                  1  100.0%"), "{out}");
        assert!(!out.contains("inf"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn invalid_trace_reported() {
        let path = temp_trace("bad", "1 0 0\n0 0 0\n");
        let p = path.to_str().expect("utf-8 temp path");
        let err = command(&["validate", p]).unwrap_err();
        assert!(err.contains("sorted"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_subcommand_prints_help() {
        let err = command(&["frobnicate", "x"]).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn objects_reports_shares_and_zipf_fit() {
        // Counts 12/6/4/3 = 12·rank⁻¹ over ranks 1..4: α ≈ 1 exactly.
        let mut body = String::new();
        let mut t = 0.0;
        for (object, count) in [(5u32, 12), (9u32, 6), (2u32, 4), (7u32, 3)] {
            for _ in 0..count {
                body.push_str(&format!("{t} 1 {object}\n"));
                t += 0.1;
            }
        }
        // The trace format wants time-sorted entries.
        let mut lines: Vec<&str> = body.lines().collect();
        lines.sort_by(|a, b| {
            let ta: f64 = a.split_whitespace().next().unwrap().parse().unwrap();
            let tb: f64 = b.split_whitespace().next().unwrap().parse().unwrap();
            ta.partial_cmp(&tb).unwrap()
        });
        let path = temp_trace("objects", &(lines.join("\n") + "\n"));
        let p = path.to_str().expect("utf-8 temp path");
        let out = command(&["objects", p]).unwrap();
        assert!(out.contains("25 across 4 distinct objects"), "{out}");
        assert!(out.contains("5                 12   48.0%"), "{out}");
        assert!(out.contains("zipf fit"), "{out}");
        let alpha: f64 = out
            .split("α = ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap()
            .parse()
            .unwrap();
        assert!((alpha - 1.0).abs() < 0.15, "α = {alpha}, expected ≈ 1");
        let out_top = command(&["objects", p, "--top", "2"]).unwrap();
        assert!(out_top.contains("… 2 more objects"), "{out_top}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn objects_handles_single_object_trace() {
        let path = temp_trace("objects-one", "0 1 5\n0.5 1 5\n");
        let p = path.to_str().expect("utf-8 temp path");
        let out = command(&["objects", p]).unwrap();
        assert!(out.contains("zipf fit   n/a"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn zipf_fit_of_uniform_counts_is_flat() {
        let ranked = vec![(5u64, 1u32), (5, 2), (5, 3)];
        let (alpha, r2) = zipf_fit(&ranked).unwrap();
        assert!(alpha.abs() < 1e-9, "α = {alpha}");
        assert_eq!(r2, 1.0);
    }
}
