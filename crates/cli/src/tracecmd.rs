//! `radar trace` — inspect and validate request traces.

use radar_sim::Trace;

use crate::args::Parsed;

pub(crate) fn command(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, &[], &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Err(help());
    }
    match parsed.positionals.as_slice() {
        [sub, path] if sub == "validate" => {
            let trace = load(path)?;
            Ok(format!(
                "{path}: valid, {} requests over {:.1}s\n",
                trace.len(),
                trace.duration()
            ))
        }
        [sub, path] if sub == "stats" => {
            let trace = load(path)?;
            Ok(stats(path, &trace))
        }
        _ => Err(help()),
    }
}

fn load(path: &str) -> Result<Trace, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    Trace::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn stats(path: &str, trace: &Trace) -> String {
    let mut gateways = std::collections::BTreeMap::new();
    let mut objects = std::collections::BTreeMap::new();
    for e in trace.entries() {
        *gateways.entry(e.gateway).or_insert(0u64) += 1;
        *objects.entry(e.object).or_insert(0u64) += 1;
    }
    let duration = trace.duration().max(f64::MIN_POSITIVE);
    let mut out = format!("trace {path}\n");
    out.push_str(&format!(
        "requests   {} over {:.1}s ({:.1} req/s)\n",
        trace.len(),
        trace.duration(),
        trace.len() as f64 / duration
    ));
    out.push_str(&format!(
        "gateways   {} distinct (busiest: {})\n",
        gateways.len(),
        gateways
            .iter()
            .max_by_key(|&(_, c)| *c)
            .map(|(g, c)| format!("node {g} with {c}"))
            .unwrap_or_else(|| "none".into())
    ));
    out.push_str(&format!(
        "objects    {} distinct (hottest: {})\n",
        objects.len(),
        objects
            .iter()
            .max_by_key(|&(_, c)| *c)
            .map(|(o, c)| format!("object {o} with {c}"))
            .unwrap_or_else(|| "none".into())
    ));
    out
}

fn help() -> String {
    "radar trace — inspect request traces\n\
     \n\
     USAGE:\n\
     \x20 radar trace validate FILE   parse + order-check a trace\n\
     \x20 radar trace stats FILE      request/gateway/object statistics\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_trace(name: &str, body: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("radar-cli-{name}.trace"));
        std::fs::write(&path, body).expect("temp file writable");
        path
    }

    #[test]
    fn validate_and_stats() {
        let path = temp_trace("ok", "0 1 5\n0.5 1 5\n1.0 2 6\n");
        let p = path.to_str().expect("utf-8 temp path");
        let out = command(&["validate", p]).unwrap();
        assert!(out.contains("valid, 3 requests"));
        let out = command(&["stats", p]).unwrap();
        assert!(out.contains("2 distinct"), "{out}");
        assert!(out.contains("node 1 with 2"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn invalid_trace_reported() {
        let path = temp_trace("bad", "1 0 0\n0 0 0\n");
        let p = path.to_str().expect("utf-8 temp path");
        let err = command(&["validate", p]).unwrap_err();
        assert!(err.contains("sorted"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_subcommand_prints_help() {
        let err = command(&["frobnicate", "x"]).unwrap_err();
        assert!(err.contains("USAGE"));
    }
}
