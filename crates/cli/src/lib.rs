//! Implementation of the `radar` command-line tool.
//!
//! The binary is a thin wrapper over [`run`]; everything is a library
//! function so argument parsing and command execution are unit-testable.
//!
//! ```text
//! radar simulate [--workload W] [--objects N] [--rate R] [--duration S] …
//! radar topology <uunet|FILE> [--stats] [--dot] [--spec]
//! radar trace <stats|validate> FILE
//! radar events <tail|filter|explain|summary|watch> … FILE
//! radar events diff A B
//! radar objects <timeline|churn|audit> … FILE
//! radar perf FILE [--top N] [--check-coverage PCT]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod dashboard;
mod events;
pub mod json;
mod objects;
mod perf;
mod render;
mod simulate;
mod topology;
mod tracecmd;

pub use args::{ArgError, Parsed};
pub use simulate::{SimulateArgs, WorkloadKind};

/// Executes a full command line (excluding the program name); returns
/// the text to print on success or an error message.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, malformed
/// flags, unreadable files, or invalid scenarios.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        Some("simulate") => simulate::command(&args.collect::<Vec<_>>()),
        Some("topology") => topology::command(&args.collect::<Vec<_>>()),
        Some("trace") => tracecmd::command(&args.collect::<Vec<_>>()),
        Some("events") => events::command(&args.collect::<Vec<_>>()),
        Some("objects") => objects::command(&args.collect::<Vec<_>>()),
        Some("perf") => perf::command(&args.collect::<Vec<_>>()),
        Some("--help") | Some("-h") | None => Ok(usage()),
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// The top-level usage text.
pub fn usage() -> String {
    "radar — dynamic object replication and migration (ICDCS 1999 reproduction)\n\
     \n\
     USAGE:\n\
     \x20 radar simulate [OPTIONS]        run a hosting-platform simulation\n\
     \x20 radar topology <uunet|FILE>     inspect or convert a backbone topology\n\
     \x20 radar trace <stats|validate> F  inspect a request trace\n\
     \x20 radar events <SUBCOMMAND> FILE  inspect a flight-recorder event log\n\
     \x20                                 (tail | filter | explain | summary |\n\
     \x20                                 watch | diff)\n\
     \x20 radar objects <SUBCOMMAND> …    protocol-level behaviour of an event log\n\
     \x20                                 (timeline | churn | audit)\n\
     \x20 radar perf FILE                 render shard-profile telemetry from a\n\
     \x20                                 profiled run or bench artifact\n\
     \n\
     Run `radar simulate --help` (etc.) for per-command options.\n"
        .to_string()
}
