//! Terminal dashboard rendering over streaming flight-recorder
//! metrics.
//!
//! [`render`] is a pure function from a [`MetricsObserver`] snapshot to
//! one text frame, so `radar simulate --dashboard` (live) and
//! `radar events watch FILE` (replay) produce identical output from
//! identical event streams. [`LiveDashboard`] wraps a [`SharedMetrics`]
//! as a simulation observer and repaints the frame on stderr while the
//! run progresses (only when stderr is a terminal).

use std::fmt::Write as _;
use std::io::{IsTerminal, Write as _};

use radar_obs::{
    MetricsObserver, ProtocolHealth, ShardProfile, SharedMetrics, SharedObjectLedger,
    SharedShardProfile, SpanKind,
};
use radar_sim::Observer;

/// Width of the host-load bars, in characters.
const BAR_WIDTH: usize = 28;
/// Minimum wall-clock delay between live repaints.
const FRAME_INTERVAL: std::time::Duration = std::time::Duration::from_millis(100);

fn bar(value: f64, max: f64) -> String {
    let filled = if max > 0.0 {
        ((value / max) * BAR_WIDTH as f64).round() as usize
    } else {
        0
    };
    let filled = filled.min(BAR_WIDTH);
    format!("{}{}", "#".repeat(filled), ".".repeat(BAR_WIDTH - filled))
}

fn ms(seconds: Option<f64>) -> String {
    match seconds {
        Some(s) => format!("{:.1} ms", s * 1e3),
        None => "n/a".to_string(),
    }
}

fn secs(seconds: Option<f64>) -> String {
    match seconds {
        Some(s) => format!("{s:.2} s"),
        None => "n/a".to_string(),
    }
}

/// Renders one dashboard frame from the current aggregates: header,
/// fault banner, rolling rates, latency and bandwidth summaries,
/// per-host load bars, and the top-`top` objects by request count.
pub fn render(m: &MetricsObserver, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "RaDaR dashboard — t={:.1}s · {} events",
        m.last_t(),
        m.events_seen()
    );
    let _ = writeln!(
        out,
        "served {:>8} ({:>7.2}/s) · failed {:>6} ({:>6.2}/s) · requests {:>8}",
        m.served(),
        m.served_rate(),
        m.failed(),
        m.failed_rate(),
        m.requests()
    );
    let _ = writeln!(
        out,
        "faults {:>8} · re-replications {} ({:.2}/s)",
        m.faults(),
        m.re_replications(),
        m.re_replication_rate()
    );
    let recent: Vec<&(f64, String)> = m.recent_faults().collect();
    if !recent.is_empty() {
        let _ = writeln!(out, "!! recent faults:");
        for (t, desc) in recent {
            let _ = writeln!(out, "   t={t:<10.1} {desc}");
        }
    }
    let _ = writeln!(
        out,
        "latency: mean {} · p50 {} · p99 {} · over-scale {}",
        ms(m.latency_summary().mean()),
        ms(m.latency_p50()),
        ms(m.latency_p99()),
        m.latency_histogram().overflow()
    );
    let bw = m.bandwidth();
    let last_bin = bw.len().saturating_sub(1);
    let _ = writeln!(
        out,
        "bandwidth (bytes×hops / {:.0} s bin): current {:.3e} · total {:.3e}",
        bw.spec().width(),
        if bw.is_empty() {
            0.0
        } else {
            bw.bin_sum(last_bin)
        },
        bw.total()
    );
    if m.updates() > 0 {
        let [t1, t2, t3] = m.updates_by_class();
        let _ = writeln!(
            out,
            "updates {:>8} ({} t1 / {} t2 / {} t3) · {:.3e} bytes×hops · {} moves",
            m.updates(),
            t1,
            t2,
            t3,
            m.update_bandwidth().total(),
            m.primary_reassignments()
        );
        let _ = writeln!(
            out,
            "  deliveries {:>5} applied · {} merged · {} wasted · staleness {} t1 / {} t2",
            m.update_deliveries(),
            m.updates_merged(),
            m.wasted_deliveries(),
            secs(m.update_lag_type1().mean()),
            secs(m.update_lag_type2().mean()),
        );
    }

    let mut hosts = m.host_loads();
    if !hosts.is_empty() {
        let peak = hosts
            .iter()
            .map(|&(_, load, _)| load)
            .fold(0.0f64, f64::max);
        let _ = writeln!(
            out,
            "\nhost load (req/s over the last {:.0} s interval):",
            m.config().load_interval
        );
        // Busiest hosts first, host id breaking ties; cap the panel.
        hosts.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for &(host, load, total) in hosts.iter().take(top.max(1)) {
            let _ = writeln!(
                out,
                "  host {host:<4} {} {load:>7.2}  ({total} served)",
                bar(load, peak)
            );
        }
        if hosts.len() > top.max(1) {
            let _ = writeln!(out, "  … {} more hosts", hosts.len() - top.max(1));
        }
    }

    let objects = m.top_objects(top.max(1));
    if !objects.is_empty() {
        let _ = writeln!(out, "\ntop objects (by requests):");
        for (object, c) in objects {
            let _ = writeln!(
                out,
                "  object {object:<6} {:>8} req {:>8} served {:>5} failed  Δreplicas {:+}",
                c.requests, c.served, c.failed, c.replica_delta
            );
        }
    }

    if !m.placement_counts().is_empty() {
        let row = m
            .placement_counts()
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect::<Vec<_>>()
            .join(" · ");
        let _ = writeln!(out, "\nplacement: {row}");
    }
    if !m.branch_counts().is_empty() {
        let row = m
            .branch_counts()
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect::<Vec<_>>()
            .join(" · ");
        let _ = writeln!(out, "redirector branches: {row}");
    }
    out
}

/// Renders the live per-shard utilization panel from the latest barrier
/// snapshot: one row per lane with its busy share, dominant stall, and
/// cache hit rate — a compressed view of `radar perf` for the frame.
pub fn render_shard_panel(p: &ShardProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nshard utilization ({} worker shard(s), {} barrier(s)):",
        p.shards,
        p.total_barriers()
    );
    for (label, lane) in p.lanes() {
        let busy_pct = if p.wall_ns == 0 {
            0.0
        } else {
            100.0 * lane.span_ns(SpanKind::Busy) as f64 / p.wall_ns as f64
        };
        // The lane's dominant non-busy category is its headline stall.
        let stall = SpanKind::ALL
            .into_iter()
            .filter(|&k| k != SpanKind::Busy)
            .max_by_key(|&k| lane.span_ns(k))
            .filter(|&k| lane.span_ns(k) > 0);
        let stall = match stall {
            Some(kind) => {
                let pct = if p.wall_ns == 0 {
                    0.0
                } else {
                    100.0 * lane.span_ns(kind) as f64 / p.wall_ns as f64
                };
                format!("{} {pct:.1}%", kind.as_str())
            }
            None => "-".to_string(),
        };
        let cache = if lane.cache_hits + lane.cache_misses == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * lane.cache_hit_rate())
        };
        let _ = writeln!(
            out,
            "  {label:<10} {} {busy_pct:>5.1}% busy · top stall {stall} · cache {cache}",
            bar(busy_pct, 100.0)
        );
    }
    if p.handoff_ns.count() > 0 {
        let _ = writeln!(
            out,
            "  hand-off p50 ≤{:.1} µs · p99 ≤{:.1} µs ({} decisions)",
            p.handoff_ns.percentile(0.50).unwrap_or(0) as f64 / 1e3,
            p.handoff_ns.percentile(0.99).unwrap_or(0) as f64 / 1e3,
            p.handoff_ns.count()
        );
    }
    out
}

/// Renders the live protocol-health panel from a ledger snapshot:
/// active replicas, churn counters, relocation cost per served
/// request, and the invariant-audit badge.
pub fn render_protocol_panel(h: &ProtocolHealth) -> String {
    let mut out = String::new();
    let badge = if h.violations == 0 {
        "invariants ok".to_string()
    } else {
        format!("INVARIANTS VIOLATED ({})", h.violations)
    };
    let _ = writeln!(
        out,
        "\nprotocol health: {} active replicas · [{badge}]",
        h.active_replicas
    );
    let churn = h.churn_events();
    let _ = writeln!(
        out,
        "  relocations {} · churn {churn} (ping-pong {} / rep-drop {}) · \
         {:.1} B moved per request served",
        h.relocations,
        h.ping_pong,
        h.replicate_drop,
        h.bytes_per_served()
    );
    out
}

/// A simulation observer that folds every event into a [`SharedMetrics`]
/// and repaints the dashboard on stderr as the run progresses.
///
/// Repainting is throttled to [`FRAME_INTERVAL`] and only happens when
/// stderr is a terminal, so piped and scripted runs stay clean; the
/// folded aggregates are available from the shared handle either way.
#[derive(Debug)]
pub struct LiveDashboard {
    metrics: SharedMetrics,
    top: usize,
    live: bool,
    last_frame: Option<std::time::Instant>,
    /// Shard-telemetry snapshots (published by the sequencer at each
    /// epoch barrier) appended to every frame when profiling is on.
    shard_profile: Option<SharedShardProfile>,
    /// Live protocol-health snapshots appended to every frame when the
    /// object ledger is on.
    ledger: Option<SharedObjectLedger>,
}

impl LiveDashboard {
    /// Creates a live dashboard folding into `metrics`, displaying the
    /// `top` busiest hosts/objects per frame.
    pub fn new(metrics: SharedMetrics, top: usize) -> Self {
        Self {
            metrics,
            top,
            live: std::io::stderr().is_terminal(),
            last_frame: None,
            shard_profile: None,
            ledger: None,
        }
    }

    /// Adds a live per-shard utilization panel fed from `live`.
    pub fn with_shard_profile(mut self, live: SharedShardProfile) -> Self {
        self.shard_profile = Some(live);
        self
    }

    /// Adds a live protocol-health panel fed from `ledger`.
    pub fn with_ledger(mut self, ledger: SharedObjectLedger) -> Self {
        self.ledger = Some(ledger);
        self
    }

    fn repaint(&mut self) {
        let due = match self.last_frame {
            None => true,
            Some(at) => at.elapsed() >= FRAME_INTERVAL,
        };
        if !due {
            return;
        }
        self.last_frame = Some(std::time::Instant::now());
        let mut frame = self.metrics.with(|m| render(m, self.top));
        if let Some(ledger) = &self.ledger {
            frame.push_str(&render_protocol_panel(&ledger.health()));
        }
        if let Some(snapshot) = self.shard_profile.as_ref().and_then(|p| p.snapshot()) {
            frame.push_str(&render_shard_panel(&snapshot));
        }
        let mut err = std::io::stderr().lock();
        // Home the cursor and clear to end-of-screen between frames.
        let _ = write!(err, "\x1b[H\x1b[J{frame}");
        let _ = err.flush();
    }
}

impl Observer for LiveDashboard {
    fn wants_events(&self) -> bool {
        true
    }

    fn on_event(&mut self, event: &radar_obs::Event) {
        self.metrics.fold(event);
        if self.live {
            self.repaint();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_obs::{Event, EventKind, MetricsConfig};

    fn served(seq: u64, t: f64, object: u32, host: u16) -> Event {
        Event {
            seq,
            parent: None,
            t,
            queue_depth: 0,
            kind: EventKind::RequestServed {
                gateway: 0,
                object,
                host,
                latency: 0.05,
                hops: 2,
            },
        }
    }

    #[test]
    fn frame_shows_all_panels() {
        let mut m = MetricsObserver::new(MetricsConfig::default());
        for i in 0..30 {
            m.fold(&served(i + 1, i as f64, 7, (i % 3) as u16));
        }
        m.fold(&Event {
            seq: 31,
            parent: None,
            t: 30.0,
            queue_depth: 0,
            kind: EventKind::Fault {
                desc: "host-crash 1".into(),
            },
        });
        m.finalize(40.0);
        let frame = render(&m, 5);
        assert!(frame.contains("RaDaR dashboard"), "{frame}");
        assert!(frame.contains("host load"), "{frame}");
        assert!(frame.contains("top objects"), "{frame}");
        assert!(frame.contains("recent faults"), "{frame}");
        assert!(frame.contains("object 7"), "{frame}");
        assert!(frame.contains("host-crash 1"), "{frame}");
    }

    #[test]
    fn empty_fold_renders_header_only_panels() {
        let m = MetricsObserver::default();
        let frame = render(&m, 5);
        assert!(frame.contains("0 events"), "{frame}");
        assert!(!frame.contains("host load"), "{frame}");
        assert!(!frame.contains("top objects"), "{frame}");
    }

    #[test]
    fn bars_scale_to_the_peak() {
        assert_eq!(bar(1.0, 1.0).chars().filter(|&c| c == '#').count(), 28);
        assert_eq!(bar(0.5, 1.0).chars().filter(|&c| c == '#').count(), 14);
        assert_eq!(bar(0.0, 1.0).chars().filter(|&c| c == '#').count(), 0);
        assert_eq!(bar(1.0, 0.0).chars().filter(|&c| c == '#').count(), 0);
    }

    #[test]
    fn shard_panel_shows_lanes_stalls_and_handoff() {
        let mut p = ShardProfile {
            shards: 2,
            wall_ns: 1_000_000,
            ..Default::default()
        };
        p.sequencer.add_span(SpanKind::Busy, 300_000);
        p.sequencer.add_span(SpanKind::ChannelWait, 650_000);
        let mut w = radar_obs::LaneProfile::default();
        w.add_span(SpanKind::Busy, 100_000);
        w.add_span(SpanKind::Idle, 850_000);
        w.cache_hits = 9;
        w.cache_misses = 1;
        p.workers = vec![w, w];
        p.handoff_ns.record(58_000);
        let panel = render_shard_panel(&p);
        assert!(panel.contains("shard utilization"), "{panel}");
        assert!(panel.contains("sequencer"), "{panel}");
        assert!(panel.contains("worker-1"), "{panel}");
        assert!(panel.contains("channel-wait 65.0%"), "{panel}");
        assert!(panel.contains("idle 85.0%"), "{panel}");
        assert!(panel.contains("cache 90.0%"), "{panel}");
        assert!(panel.contains("hand-off p50"), "{panel}");
    }

    #[test]
    fn protocol_panel_shows_badge_and_churn_price() {
        let clean = ProtocolHealth {
            events_seen: 100,
            active_replicas: 18,
            requests: 50,
            served: 48,
            relocations: 4,
            bytes_moved: 48_000,
            ping_pong: 1,
            replicate_drop: 0,
            violations: 0,
            violation_seqs: Vec::new(),
            churn_window: 120.0,
            top_objects: Vec::new(),
        };
        let panel = render_protocol_panel(&clean);
        assert!(panel.contains("18 active replicas"), "{panel}");
        assert!(panel.contains("[invariants ok]"), "{panel}");
        assert!(
            panel.contains("1000.0 B moved per request served"),
            "{panel}"
        );

        let dirty = ProtocolHealth {
            violations: 2,
            violation_seqs: vec![7, 9],
            ..clean
        };
        let panel = render_protocol_panel(&dirty);
        assert!(panel.contains("INVARIANTS VIOLATED (2)"), "{panel}");
    }

    #[test]
    fn live_dashboard_folds_through_observer_hook() {
        let shared = SharedMetrics::default();
        let mut dash = LiveDashboard::new(shared.clone(), 5);
        // Tests never run on a TTY, so repainting stays off; the fold
        // must still happen.
        dash.on_event(&served(1, 1.0, 3, 0));
        assert!(dash.wants_events());
        assert_eq!(shared.with(|m| m.served()), 1);
    }
}
