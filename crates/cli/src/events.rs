//! `radar events` — inspect a flight-recorder JSONL log.
//!
//! Logs come from `radar simulate --events FILE` (or any
//! [`radar_obs::Recorder`] sink). Six subcommands: `tail` shows the
//! most recent events, `filter` selects by type/object/gateway/host/
//! time, `explain` prints one event's full decision narrative plus its
//! causal chain, `summary` aggregates per-event-type counts, rates,
//! queue-depth statistics, and ring-eviction losses, `watch` replays a
//! log through the streaming metrics fold and renders the dashboard,
//! and `diff` compares two logs and pinpoints the first divergence
//! with both sides' causal context.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use radar_obs::{
    diff_events, parse_jsonl_log, DiffOutcome, Event, EventKind, EventLog, MetricsConfig,
    MetricsObserver, EVENT_TYPES,
};

use crate::args::Parsed;
use crate::dashboard;

pub(crate) fn command(args: &[&str]) -> Result<String, String> {
    let Some((&sub, rest)) = args.split_first() else {
        return Ok(help());
    };
    match sub {
        "tail" => tail(rest),
        "filter" => filter(rest),
        "explain" => explain(rest),
        "summary" => summary(rest),
        "watch" => watch(rest),
        "diff" => diff(rest),
        "--help" | "-h" => Ok(help()),
        other => Err(format!("unknown events subcommand {other:?}\n\n{}", help())),
    }
}

pub(crate) fn load_log(path: &str) -> Result<EventLog, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read events file {path}: {e}"))?;
    parse_jsonl_log(&text).map_err(|e| format!("{path}: {e}"))
}

fn load(path: &str) -> Result<Vec<Event>, String> {
    load_log(path).map(|log| log.events)
}

/// The single FILE positional every subcommand except `explain` takes.
fn one_positional(parsed: &Parsed, sub: &str) -> Result<String, String> {
    match parsed.positionals.as_slice() {
        [path] => Ok(path.clone()),
        [] => Err(format!("events {sub} expects an events FILE\n\n{}", help())),
        more => Err(format!(
            "events {sub} takes one FILE, got {} positionals",
            more.len()
        )),
    }
}

fn tail(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, &["count"], &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Ok(help());
    }
    let path = one_positional(&parsed, "tail")?;
    let count: usize = parsed
        .get_parsed("count", 10, "an event count")
        .map_err(|e| e.to_string())?;
    let events = load(&path)?;
    if events.is_empty() {
        return Ok("no events\n".to_string());
    }
    let mut out = String::new();
    let skip = events.len().saturating_sub(count);
    if skip > 0 {
        let _ = writeln!(out, "… {skip} earlier events");
    }
    for e in &events[skip..] {
        out.push_str(&e.brief());
        out.push('\n');
    }
    Ok(out)
}

fn filter(args: &[&str]) -> Result<String, String> {
    const OPTIONS: &[&str] = &[
        "type", "object", "gateway", "host", "since", "until", "limit",
    ];
    let parsed = Parsed::parse(args, OPTIONS, &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Ok(help());
    }
    let path = one_positional(&parsed, "filter")?;
    let type_name = parsed.get("type").map(str::to_string);
    if let Some(t) = &type_name {
        if !EVENT_TYPES.contains(&t.as_str()) {
            return Err(format!(
                "unknown event type {t:?} (one of: {})",
                EVENT_TYPES.join(", ")
            ));
        }
    }
    let object: Option<u32> = opt_num(&parsed, "object", "an object id")?;
    let gateway: Option<u16> = opt_num(&parsed, "gateway", "a node id")?;
    let host: Option<u16> = opt_num(&parsed, "host", "a node id")?;
    let since: Option<f64> = opt_num(&parsed, "since", "a time in seconds")?;
    let until: Option<f64> = opt_num(&parsed, "until", "a time in seconds")?;
    let limit: usize = parsed
        .get_parsed("limit", usize::MAX, "an event count")
        .map_err(|e| e.to_string())?;

    let events = load(&path)?;
    let total = events.len();
    let mut out = String::new();
    let mut shown = 0usize;
    let mut matched = 0usize;
    for e in &events {
        let keep = type_name.as_deref().is_none_or(|t| e.type_name() == t)
            && object.is_none_or(|o| e.object() == Some(o))
            && gateway.is_none_or(|g| e.gateway() == Some(g))
            && host.is_none_or(|h| e.host() == Some(h))
            && since.is_none_or(|s| e.t >= s)
            && until.is_none_or(|u| e.t <= u);
        if !keep {
            continue;
        }
        matched += 1;
        if shown < limit {
            out.push_str(&e.brief());
            out.push('\n');
            shown += 1;
        }
    }
    let _ = writeln!(out, "{matched} of {total} events matched");
    if shown < matched {
        let _ = writeln!(out, "(showing first {shown}; raise --limit for more)");
    }
    Ok(out)
}

fn opt_num<T: std::str::FromStr>(
    parsed: &Parsed,
    key: &str,
    expected: &'static str,
) -> Result<Option<T>, String> {
    match parsed.get(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("flag --{key}: expected {expected}, got {raw:?}")),
    }
}

fn explain(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, &[], &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Ok(help());
    }
    let [seq, path] = parsed.positionals.as_slice() else {
        return Err(format!("events explain expects SEQ FILE\n\n{}", help()));
    };
    let seq: u64 = seq
        .parse()
        .map_err(|_| format!("expected an event sequence number, got {seq:?}"))?;
    let events = load(path)?;
    let by_seq: BTreeMap<u64, &Event> = events.iter().map(|e| (e.seq, e)).collect();
    let Some(event) = by_seq.get(&seq) else {
        return Err(format!(
            "no event #{seq} in {path} ({} events, seq {}..={})",
            events.len(),
            events.first().map_or(0, |e| e.seq),
            events.last().map_or(0, |e| e.seq)
        ));
    };

    let mut out = event.explain();
    out.push_str(&causal_chain(&events, event));
    Ok(out)
}

/// Renders an event's causal context within `events`: its ancestors
/// back to the root ("caused by") and its direct consequences ("led
/// to"). Shared by `explain`, `diff`, and `objects timeline`.
pub(crate) fn causal_chain(events: &[Event], event: &Event) -> String {
    let by_seq: BTreeMap<u64, &Event> = events.iter().map(|e| (e.seq, e)).collect();
    let mut out = String::new();
    let mut ancestors = Vec::new();
    let mut cursor = event.parent;
    while let Some(p) = cursor {
        match by_seq.get(&p) {
            Some(e) => {
                ancestors.push(*e);
                cursor = e.parent;
            }
            None => {
                // Evicted from the ring before the log was written.
                ancestors.push(&MISSING);
                break;
            }
        }
    }
    if !ancestors.is_empty() {
        out.push_str("\ncaused by:\n");
        for e in ancestors.iter().rev() {
            if e.seq == 0 {
                out.push_str("  (earlier event not in this log)\n");
            } else {
                let _ = writeln!(out, "  {}", e.brief());
            }
        }
    }
    let children: Vec<&Event> = events
        .iter()
        .filter(|e| e.parent == Some(event.seq))
        .collect();
    if !children.is_empty() {
        out.push_str("\nled to:\n");
        for e in children {
            let _ = writeln!(out, "  {}", e.brief());
        }
    }
    out
}

/// Placeholder for a causal parent that is absent from the log (ring
/// eviction); `seq` 0 never occurs in real events.
static MISSING: Event = Event {
    seq: 0,
    parent: None,
    t: 0.0,
    queue_depth: 0,
    kind: EventKind::RequestArrived {
        gateway: 0,
        object: 0,
    },
};

/// Renders the ring-eviction banner for a log carrying an evictions
/// trailer, with a warning when critical events were lost. `None` when
/// the log has no trailer. Shared by `summary` and `watch`.
fn eviction_banner(log: &EventLog) -> Option<String> {
    let ev = log.evictions.as_ref()?;
    let lost = ev.routine + ev.notable + ev.critical;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ring evictions: {lost} events lost before export \
         (routine {} · notable {} · critical {})",
        ev.routine, ev.notable, ev.critical
    );
    if ev.critical > 0 {
        let _ = writeln!(
            out,
            "WARNING: {} critical events (faults, placements, re-replications) \
             were evicted; raise the ring capacity or stream the full run with \
             `radar simulate --events FILE`",
            ev.critical
        );
    }
    Some(out)
}

/// Renders the reorder-buffer section for a log carrying a sharded-run
/// reorder trailer: how hard the deterministic sequencing had to work
/// to keep the log in order. `None` for serial logs (no trailer).
/// Shared by `summary` and `watch`.
fn reorder_banner(log: &EventLog) -> Option<String> {
    let r = log.reorder.as_ref()?;
    let mut out = String::new();
    let _ = writeln!(out, "reorder buffer (sharded run)");
    let _ = writeln!(
        out,
        "  reserved seqs {:>9}   (decisions deferred to worker shards)",
        r.reserved
    );
    let _ = writeln!(
        out,
        "  max in-flight {:>9}   (reserved but not yet committed)",
        r.max_in_flight
    );
    let _ = writeln!(
        out,
        "  max held      {:>9}   (events buffered awaiting sequence order)",
        r.max_held
    );
    let _ = writeln!(
        out,
        "  drains        {:>9}   (out-of-order episodes fully released)",
        r.drains
    );
    Some(out)
}

fn watch(args: &[&str]) -> Result<String, String> {
    const OPTIONS: &[&str] = &["top", "object-size", "bin", "interval", "duration"];
    let parsed = Parsed::parse(args, OPTIONS, &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Ok(help());
    }
    let path = one_positional(&parsed, "watch")?;
    let top: usize = parsed
        .get_parsed("top", 8, "a row count")
        .map_err(|e| e.to_string())?;
    let cfg = MetricsConfig {
        object_size: parsed
            .get_parsed("object-size", MetricsConfig::default().object_size, "bytes")
            .map_err(|e| e.to_string())?,
        bandwidth_bin: parsed
            .get_parsed("bin", MetricsConfig::default().bandwidth_bin, "seconds")
            .map_err(|e| e.to_string())?,
        load_interval: parsed
            .get_parsed(
                "interval",
                MetricsConfig::default().load_interval,
                "seconds",
            )
            .map_err(|e| e.to_string())?,
        ..MetricsConfig::default()
    };
    let log = load_log(&path)?;
    let events = &log.events;
    if events.is_empty() {
        return Ok("no events\n".to_string());
    }
    let mut m = MetricsObserver::new(cfg);
    // On a terminal, replay the log as an animated dashboard on stderr;
    // otherwise just fold and print the final frame.
    let live = {
        use std::io::IsTerminal;
        std::io::stderr().is_terminal()
    };
    let frames = 60usize;
    let chunk = (events.len() / frames).max(1);
    for (i, e) in events.iter().enumerate() {
        m.fold(e);
        if live && (i + 1) % chunk == 0 {
            use std::io::Write as _;
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\x1b[H\x1b[J{}", dashboard::render(&m, top));
            let _ = err.flush();
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    }
    let t_end: f64 = parsed
        .get_parsed("duration", events.last().expect("non-empty").t, "seconds")
        .map_err(|e| e.to_string())?;
    m.finalize(t_end);
    let mut out = dashboard::render(&m, top);
    // A log missing events renders a misleading dashboard — surface the
    // recorder's eviction trailer here, not only in `summary`; same for
    // a sharded run's reorder trailer.
    if let Some(banner) = eviction_banner(&log) {
        out.push('\n');
        out.push_str(&banner);
    }
    if let Some(banner) = reorder_banner(&log) {
        out.push('\n');
        out.push_str(&banner);
    }
    Ok(out)
}

fn diff(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, &[], &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Ok(help());
    }
    let [left_path, right_path] = parsed.positionals.as_slice() else {
        return Err(format!("events diff expects two FILEs (A B)\n\n{}", help()));
    };
    let left = load(left_path)?;
    let right = load(right_path)?;
    match diff_events(&left, &right) {
        DiffOutcome::Identical { events } => {
            Ok(format!("logs identical: {events} events, no divergence\n"))
        }
        DiffOutcome::Divergent {
            index,
            seq,
            left: le,
            right: re,
        } => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "logs diverge at position {index} (first differing seq {seq}):"
            );
            let _ = writeln!(out, "  left  ({left_path}):  {}", side_brief(le.as_deref()));
            let _ = writeln!(out, "  right ({right_path}): {}", side_brief(re.as_deref()));
            out.push_str(&side_detail("left", left_path, &left, le.as_deref()));
            out.push_str(&side_detail("right", right_path, &right, re.as_deref()));
            Err(out)
        }
    }
}

fn side_brief(event: Option<&Event>) -> String {
    match event {
        Some(e) => e.brief(),
        None => "(log ends here)".to_string(),
    }
}

/// The divergent event in full — its decision/placement narrative plus
/// the causal chain that led to it — for one side of a diff.
fn side_detail(label: &str, path: &str, events: &[Event], event: Option<&Event>) -> String {
    match event {
        None => format!("\n{label} log {path} ends after {} events\n", events.len()),
        Some(e) => format!(
            "\n{label} event in {path}:\n{}{}",
            e.explain(),
            causal_chain(events, e)
        ),
    }
}

fn summary(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, &["top"], &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Ok(help());
    }
    let path = one_positional(&parsed, "summary")?;
    let top: usize = parsed
        .get_parsed("top", 5, "a row count")
        .map_err(|e| e.to_string())?;
    let log = load_log(&path)?;
    let banner = eviction_banner(&log);
    let reorder = reorder_banner(&log);
    let events = log.events;
    if events.is_empty() {
        return Ok("no events\n".to_string());
    }
    let first = events.first().expect("non-empty").t;
    let last = events.last().expect("non-empty").t;
    let span = last - first;
    let total = events.len();

    #[derive(Default)]
    struct TypeRow {
        count: u64,
        qd_sum: u64,
        qd_max: u32,
    }
    let mut rows: BTreeMap<&'static str, TypeRow> = BTreeMap::new();
    let mut objects: BTreeMap<u32, u64> = BTreeMap::new();
    let mut hosts: BTreeMap<u16, u64> = BTreeMap::new();
    for e in &events {
        let row = rows.entry(e.type_name()).or_default();
        row.count += 1;
        row.qd_sum += u64::from(e.queue_depth);
        row.qd_max = row.qd_max.max(e.queue_depth);
        if let Some(o) = e.object() {
            *objects.entry(o).or_default() += 1;
        }
        if let Some(h) = e.host() {
            *hosts.entry(h).or_default() += 1;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{total} events over t=[{first:.3}, {last:.3}] ({span:.3} s)"
    );
    if let Some(banner) = banner {
        out.push_str(&banner);
    } else {
        // No eviction trailer — infer losses from sequence-number gaps
        // (the recorder numbers every event densely from 1).
        let expected = events.last().map_or(0, |e| e.seq);
        let missing = expected.saturating_sub(total as u64);
        if missing > 0 {
            let _ = writeln!(
                out,
                "ring evictions: {missing} events inferred lost \
                 (sequence gaps; log has no eviction trailer)"
            );
        }
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<15} {:>9} {:>7} {:>10} {:>8} {:>7}",
        "type", "count", "share", "rate/s", "mean qd", "max qd"
    );
    // Known types first, in their canonical order; anything else after.
    let ordered = EVENT_TYPES
        .iter()
        .copied()
        .filter(|t| rows.contains_key(t))
        .chain(rows.keys().copied().filter(|t| !EVENT_TYPES.contains(t)));
    for name in ordered {
        let row = &rows[name];
        let share = 100.0 * row.count as f64 / total as f64;
        let rate = if span > 0.0 {
            format!("{:>10.2}", row.count as f64 / span)
        } else {
            format!("{:>10}", "n/a")
        };
        let _ = writeln!(
            out,
            "{:<15} {:>9} {:>6.1}% {} {:>8.1} {:>7}",
            name,
            row.count,
            share,
            rate,
            row.qd_sum as f64 / row.count as f64,
            row.qd_max
        );
    }

    let mut top_objects: Vec<(u64, u32)> = objects.into_iter().map(|(o, c)| (c, o)).collect();
    top_objects.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    if !top_objects.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "busiest objects (by event count)");
        for (count, object) in top_objects.iter().take(top) {
            let _ = writeln!(out, "  object {object:<6} {count:>9}");
        }
    }
    let mut top_hosts: Vec<(u64, u16)> = hosts.into_iter().map(|(h, c)| (c, h)).collect();
    top_hosts.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    if !top_hosts.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "busiest hosts (by event count)");
        for (count, host) in top_hosts.iter().take(top) {
            let _ = writeln!(out, "  host {host:<8} {count:>9}");
        }
    }
    // Multi-shard runs append a reorder trailer: how hard the
    // deterministic sequencing had to work to keep this log in order.
    if let Some(banner) = reorder {
        out.push('\n');
        out.push_str(&banner);
    }
    Ok(out)
}

fn help() -> String {
    "radar events — inspect a flight-recorder JSONL log\n\
     \n\
     Produce a log with `radar simulate --events FILE …`.\n\
     \n\
     USAGE:\n\
     \x20 radar events tail FILE [--count N]        last N events (default 10)\n\
     \x20 radar events filter FILE [FILTERS]        matching events, oldest first\n\
     \x20 radar events explain SEQ FILE             one event in full: the Fig. 2\n\
     \x20                                           decision or placement test that\n\
     \x20                                           produced it, plus its causal chain\n\
     \x20 radar events summary FILE [--top N]       per-type counts, rates, queue\n\
     \x20                                           depths, busiest objects/hosts,\n\
     \x20                                           ring-eviction losses, and (for\n\
     \x20                                           sharded runs) reorder-buffer stats\n\
     \x20 radar events watch FILE [--top N]         replay the log through the\n\
     \x20                                           streaming metrics fold and render\n\
     \x20                                           the dashboard (animated on a TTY),\n\
     \x20                                           plus any eviction/reorder trailers\n\
     \x20         [--object-size B] [--bin S] [--interval S] [--duration S]\n\
     \x20                                           match the run's scenario so\n\
     \x20                                           aggregates line up with the report\n\
     \x20 radar events diff A B                     compare two logs; report the first\n\
     \x20                                           diverging event with its causal\n\
     \x20                                           chain (exit 2 on divergence)\n\
     \n\
     FILTERS:\n\
     \x20 --type T      request | decision | served | failed | placement |\n\
     \x20               counts-reset | fault | re-replication\n\
     \x20 --object N    events concerning object N\n\
     \x20 --gateway N   events entering at gateway node N\n\
     \x20 --host N      events involving host node N\n\
     \x20 --since S     events at simulated time >= S seconds\n\
     \x20 --until S     events at simulated time <= S seconds\n\
     \x20 --limit N     print at most N matches\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_log(events: &[Event]) -> (tempdir::TempPath, String) {
        let mut text = String::new();
        for e in events {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        let path = tempdir::path("events-test");
        std::fs::write(&path, text).unwrap();
        let s = path.to_string_lossy().into_owned();
        (tempdir::TempPath(path), s)
    }

    /// Minimal self-cleaning temp files (std-only).
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static NEXT: AtomicU64 = AtomicU64::new(0);

        pub struct TempPath(pub PathBuf);
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        pub fn path(stem: &str) -> PathBuf {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            std::env::temp_dir().join(format!("radar-{stem}-{}-{n}.jsonl", std::process::id()))
        }
    }

    fn served(seq: u64, parent: Option<u64>, t: f64, object: u32) -> Event {
        Event {
            seq,
            parent,
            t,
            queue_depth: 2,
            kind: EventKind::RequestServed {
                gateway: 1,
                object,
                host: 4,
                latency: 0.05,
                hops: 2,
            },
        }
    }

    #[test]
    fn tail_shows_last_events() {
        let events: Vec<Event> = (1..=20).map(|i| served(i, None, i as f64, 7)).collect();
        let (_guard, path) = write_log(&events);
        let out = tail(&[path.as_str(), "--count", "3"]).unwrap();
        assert!(out.contains("… 17 earlier events"), "{out}");
        assert!(out.contains("#18"), "{out}");
        assert!(out.contains("#20"), "{out}");
        assert!(!out.contains("#17 "), "{out}");
    }

    #[test]
    fn filter_by_object_and_limit() {
        let events = vec![
            served(1, None, 1.0, 7),
            served(2, None, 2.0, 9),
            served(3, None, 3.0, 7),
        ];
        let (_guard, path) = write_log(&events);
        let out = filter(&[path.as_str(), "--object", "7"]).unwrap();
        assert!(out.contains("2 of 3 events matched"), "{out}");
        assert!(!out.contains("object 9"), "{out}");
        let limited = filter(&[path.as_str(), "--limit", "1"]).unwrap();
        assert!(limited.contains("showing first 1"), "{limited}");
    }

    #[test]
    fn filter_rejects_unknown_type() {
        let (_guard, path) = write_log(&[served(1, None, 1.0, 7)]);
        let err = filter(&[path.as_str(), "--type", "bogus"]).unwrap_err();
        assert!(err.contains("unknown event type"), "{err}");
    }

    #[test]
    fn explain_walks_causal_chain() {
        let events = vec![
            Event {
                seq: 1,
                parent: None,
                t: 1.0,
                queue_depth: 0,
                kind: EventKind::RequestArrived {
                    gateway: 1,
                    object: 7,
                },
            },
            Event {
                seq: 2,
                parent: Some(1),
                t: 1.1,
                queue_depth: 1,
                kind: EventKind::Decision(radar_obs::DecisionEvent {
                    object: 7,
                    gateway: 1,
                    chosen: 4,
                    branch: radar_obs::DecisionBranch::Closest,
                    constant: 2.0,
                    closest: Some(4),
                    least: Some(5),
                    unit_closest: Some(1.0),
                    unit_least: Some(3.0),
                    candidates: Vec::new(),
                }),
            },
            served(3, Some(2), 1.2, 7),
        ];
        let (_guard, path) = write_log(&events);
        let out = explain(&["2", path.as_str()]).unwrap();
        assert!(out.contains("Fig. 2"), "{out}");
        assert!(out.contains("caused by:"), "{out}");
        assert!(out.contains("led to:"), "{out}");
        assert!(out.contains("#3"), "{out}");
        let err = explain(&["99", path.as_str()]).unwrap_err();
        assert!(err.contains("no event #99"), "{err}");
    }

    #[test]
    fn watch_renders_final_dashboard_frame() {
        let events: Vec<Event> = (1..=30).map(|i| served(i, None, i as f64, 7)).collect();
        let (_guard, path) = write_log(&events);
        let out = watch(&[path.as_str(), "--top", "3", "--duration", "40"]).unwrap();
        assert!(out.contains("RaDaR dashboard"), "{out}");
        assert!(out.contains("30 events"), "{out}");
        assert!(out.contains("object 7"), "{out}");
        assert!(out.contains("t=40.0s"), "{out}");
    }

    #[test]
    fn watch_renders_eviction_banner_from_trailer() {
        let mut text = String::new();
        for e in [served(1, None, 1.0, 7), served(2, None, 2.0, 7)] {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        text.push_str("{\"type\":\"evictions\",\"routine\":4,\"notable\":1,\"critical\":2}\n");
        let path = tempdir::path("events-watch-trailer");
        std::fs::write(&path, text).unwrap();
        let s = path.to_string_lossy().into_owned();
        let _guard = tempdir::TempPath(path);
        let out = watch(&[s.as_str()]).unwrap();
        assert!(out.contains("RaDaR dashboard"), "{out}");
        assert!(out.contains("7 events lost before export"), "{out}");
        assert!(out.contains("WARNING: 2 critical events"), "{out}");
    }

    #[test]
    fn watch_renders_reorder_trailer_like_summary() {
        let mut text = String::new();
        for e in [served(1, None, 1.0, 7), served(2, None, 2.0, 7)] {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        text.push_str(
            "{\"type\":\"reorder\",\"reserved\":12,\"max_in_flight\":3,\
             \"max_held\":2,\"drains\":5}\n",
        );
        let path = tempdir::path("events-watch-reorder");
        std::fs::write(&path, text).unwrap();
        let s = path.to_string_lossy().into_owned();
        let _guard = tempdir::TempPath(path);
        let out = watch(&[s.as_str()]).unwrap();
        assert!(out.contains("RaDaR dashboard"), "{out}");
        assert!(out.contains("reorder buffer (sharded run)"), "{out}");
        assert!(out.contains("reserved seqs        12"), "{out}");
    }

    #[test]
    fn diff_reports_identical_and_divergent_logs() {
        let a: Vec<Event> = (1..=5).map(|i| served(i, None, i as f64, 7)).collect();
        let mut b = a.clone();
        let (_ga, pa) = write_log(&a);
        let same = diff(&[pa.as_str(), pa.as_str()]).unwrap();
        assert!(same.contains("logs identical: 5 events"), "{same}");

        // Perturb one payload field: first divergence at seq 3.
        if let EventKind::RequestServed { host, .. } = &mut b[2].kind {
            *host = 9;
        }
        let (_gb, pb) = write_log(&b);
        let err = diff(&[pa.as_str(), pb.as_str()]).unwrap_err();
        assert!(err.contains("position 2"), "{err}");
        assert!(err.contains("first differing seq 3"), "{err}");
        assert!(err.contains("left event in"), "{err}");
        assert!(err.contains("right event in"), "{err}");
    }

    #[test]
    fn diff_handles_truncated_logs() {
        let a: Vec<Event> = (1..=3).map(|i| served(i, None, i as f64, 7)).collect();
        let (_ga, pa) = write_log(&a);
        let (_gb, pb) = write_log(&a[..2]);
        let err = diff(&[pa.as_str(), pb.as_str()]).unwrap_err();
        assert!(err.contains("(log ends here)"), "{err}");
        assert!(err.contains("ends after 2 events"), "{err}");
    }

    #[test]
    fn summary_reports_eviction_trailer_with_warning() {
        let mut text = String::new();
        for e in [served(1, None, 1.0, 7), served(2, None, 2.0, 7)] {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        text.push_str("{\"type\":\"evictions\",\"routine\":10,\"notable\":0,\"critical\":3}\n");
        let path = tempdir::path("events-trailer");
        std::fs::write(&path, text).unwrap();
        let s = path.to_string_lossy().into_owned();
        let _guard = tempdir::TempPath(path);
        let out = summary(&[s.as_str()]).unwrap();
        assert!(out.contains("13 events lost before export"), "{out}");
        assert!(out.contains("critical 3"), "{out}");
        assert!(out.contains("WARNING: 3 critical events"), "{out}");
    }

    #[test]
    fn summary_infers_evictions_from_sequence_gaps() {
        // Seqs 5 and 9 survive from a run that emitted 9 events: 7 lost.
        let events = vec![served(5, None, 1.0, 7), served(9, None, 2.0, 7)];
        let (_guard, path) = write_log(&events);
        let out = summary(&[path.as_str()]).unwrap();
        assert!(out.contains("7 events inferred lost"), "{out}");
    }

    #[test]
    fn summary_reports_reorder_trailer_for_sharded_logs() {
        let mut text = String::new();
        for e in [served(1, None, 1.0, 7), served(2, None, 2.0, 7)] {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        text.push_str(
            "{\"type\":\"reorder\",\"reserved\":120,\"max_in_flight\":6,\
             \"max_held\":4,\"drains\":17}\n",
        );
        let path = tempdir::path("events-reorder-trailer");
        std::fs::write(&path, text).unwrap();
        let s = path.to_string_lossy().into_owned();
        let _guard = tempdir::TempPath(path);
        let out = summary(&[s.as_str()]).unwrap();
        assert!(out.contains("reorder buffer (sharded run)"), "{out}");
        assert!(out.contains("reserved seqs       120"), "{out}");
        assert!(out.contains("max in-flight         6"), "{out}");
        assert!(out.contains("max held              4"), "{out}");
        assert!(out.contains("drains               17"), "{out}");
        // Serial logs have no trailer and no section.
        let (_g2, p2) = write_log(&[served(1, None, 1.0, 7)]);
        let serial = summary(&[p2.as_str()]).unwrap();
        assert!(!serial.contains("reorder buffer"), "{serial}");
    }

    #[test]
    fn summary_counts_types_and_guards_zero_span() {
        let events = vec![
            served(1, None, 5.0, 7),
            served(2, None, 5.0, 7),
            Event {
                seq: 3,
                parent: None,
                t: 5.0,
                queue_depth: 9,
                kind: EventKind::Fault {
                    desc: "host-crash 4".into(),
                },
            },
        ];
        let (_guard, path) = write_log(&events);
        let out = summary(&[path.as_str()]).unwrap();
        assert!(out.contains("3 events"), "{out}");
        assert!(out.contains("served"), "{out}");
        assert!(out.contains("fault"), "{out}");
        // All three events share one timestamp: no rate is computable.
        assert!(out.contains("n/a"), "{out}");
        assert!(out.contains("busiest objects"), "{out}");
    }
}
