//! A minimal JSON reader for inspecting `--json` reports.
//!
//! The simulator emits reports with [`radar_sim::RunReport::to_json_pretty`];
//! this module is the matching consumer used by scripts and the CLI's own
//! tests to pick individual fields back out. It parses the full JSON
//! grammar (RFC 8259) but is tuned for convenience over speed.

use std::fmt;
use std::ops::Index;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message when `text` is not valid
    /// JSON or has trailing garbage.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is a whole non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a float, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements, when it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// `value["field"]`: member lookup on objects, [`Value::Null`] when the
/// key is absent or the value is not an object (mirroring the common
/// dynamic-JSON idiom).
impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{k:?}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 character (multi-byte sequences pass
                // through unchanged; the input came from a &str).
                let s =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8".to_string())?;
                let c = s.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("-2.5e2").unwrap(), Value::Num(-250.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["c"], "x");
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["a"].as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v["a"].as_array().unwrap()[2]["b"], Value::Null);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("nil").is_err());
    }

    #[test]
    fn display_is_valid_json() {
        let text = r#"{"a":[1,true,"s"],"b":{"c":null}}"#;
        let v = Value::parse(text).unwrap();
        let reparsed = Value::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }
}
