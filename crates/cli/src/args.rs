//! Minimal flag parsing (no external dependency): `--flag`, `--key value`.

use std::collections::BTreeMap;
use std::fmt;

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--key` that expects a value was last on the line.
    MissingValue(String),
    /// An argument that is not a recognized flag or positional slot.
    Unknown(String),
    /// A value failed to parse.
    BadValue {
        /// The flag.
        key: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "flag {k} expects a value"),
            ArgError::Unknown(a) => write!(f, "unknown argument {a:?}"),
            ArgError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "flag {key}: expected {expected}, got {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// A parsed command line: positionals in order, `--key value` options,
/// and bare `--switch` flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Parsed {
    /// Positional arguments, in order.
    pub positionals: Vec<String>,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Parsed {
    /// Parses `args` given the sets of value-taking option names and
    /// bare switch names (both without the `--` prefix).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for unknown flags or a trailing value-less
    /// option.
    pub fn parse(args: &[&str], options: &[&str], switches: &[&str]) -> Result<Parsed, ArgError> {
        let mut out = Parsed::default();
        let mut it = args.iter();
        while let Some(&arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if switches.contains(&name) {
                    out.switches.push(name.to_string());
                } else if options.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(arg.to_string()))?;
                    out.options.insert(name.to_string(), value.to_string());
                } else {
                    return Err(ArgError::Unknown(arg.to_string()));
                }
            } else {
                out.positionals.push(arg.to_string());
            }
        }
        Ok(out)
    }

    /// The raw value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether bare `--switch` was given.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    /// Parses `--key`'s value as `T`, or returns `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparseable.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                key: format!("--{key}"),
                value: raw.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Parsed, ArgError> {
        Parsed::parse(args, &["objects", "rate"], &["json", "quiet"])
    }

    #[test]
    fn mixed_arguments() {
        let p = parse(&["pos1", "--objects", "100", "--json", "pos2"]).unwrap();
        assert_eq!(p.positionals, vec!["pos1", "pos2"]);
        assert_eq!(p.get("objects"), Some("100"));
        assert!(p.has("json"));
        assert!(!p.has("quiet"));
        assert_eq!(p.get("rate"), None);
    }

    #[test]
    fn typed_access_with_default() {
        let p = parse(&["--objects", "250"]).unwrap();
        assert_eq!(p.get_parsed("objects", 10u32, "an integer").unwrap(), 250);
        assert_eq!(p.get_parsed("rate", 4.0f64, "a number").unwrap(), 4.0);
    }

    #[test]
    fn errors() {
        assert_eq!(
            parse(&["--objects"]).unwrap_err(),
            ArgError::MissingValue("--objects".into())
        );
        assert_eq!(
            parse(&["--bogus"]).unwrap_err(),
            ArgError::Unknown("--bogus".into())
        );
        let p = parse(&["--objects", "ten"]).unwrap();
        assert!(matches!(
            p.get_parsed("objects", 0u32, "an integer").unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ArgError::MissingValue("--x".into()),
            ArgError::Unknown("y".into()),
            ArgError::BadValue {
                key: "--k".into(),
                value: "v".into(),
                expected: "a number",
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
