//! `radar objects` — protocol-level inspection of a flight-recorder
//! log: per-object lifecycle timelines, churn/cost attribution, and
//! the replica-set-invariant audit.
//!
//! All three subcommands replay a JSONL event log through the same
//! [`radar_obs::ObjectLedger`] streaming fold the simulator uses for
//! its `protocol_health` report section, so offline inspection and
//! in-run accounting can never disagree.

use std::fmt::Write as _;

use radar_obs::{EventLog, LedgerConfig, ObjectLedger};

use crate::args::Parsed;
use crate::events::{causal_chain, load_log};

pub(crate) fn command(args: &[&str]) -> Result<String, String> {
    let Some((&sub, rest)) = args.split_first() else {
        return Ok(help());
    };
    match sub {
        "timeline" => timeline(rest),
        "churn" => churn(rest),
        "audit" => audit(rest),
        "--help" | "-h" => Ok(help()),
        other => Err(format!(
            "unknown objects subcommand {other:?}\n\n{}",
            help()
        )),
    }
}

/// Ledger configuration from the shared `--object-size` / `--window`
/// flags (defaults match [`LedgerConfig::default`], which mirrors the
/// default scenario).
fn ledger_config(parsed: &Parsed) -> Result<LedgerConfig, String> {
    let defaults = LedgerConfig::default();
    Ok(LedgerConfig {
        object_size: parsed
            .get_parsed("object-size", defaults.object_size, "bytes")
            .map_err(|e| e.to_string())?,
        churn_window: parsed
            .get_parsed("window", defaults.churn_window, "seconds")
            .map_err(|e| e.to_string())?,
        ..defaults
    })
}

/// Replays every event of `log` through a fresh ledger.
fn fold_log(log: &EventLog, cfg: LedgerConfig) -> ObjectLedger {
    let mut ledger = ObjectLedger::new(cfg);
    for e in &log.events {
        ledger.fold(e);
    }
    if let Some(last) = log.events.last() {
        ledger.finalize(last.t);
    }
    ledger
}

fn timeline(args: &[&str]) -> Result<String, String> {
    const OPTIONS: &[&str] = &["object-size", "window"];
    let parsed = Parsed::parse(args, OPTIONS, &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Ok(help());
    }
    let [id, path] = parsed.positionals.as_slice() else {
        return Err(format!("objects timeline expects ID FILE\n\n{}", help()));
    };
    let object: u32 = id
        .parse()
        .map_err(|_| format!("expected an object id, got {id:?}"))?;
    let log = load_log(path)?;
    let ledger = fold_log(&log, ledger_config(&parsed)?);

    let Some(c) = ledger.object(object) else {
        return Err(format!("no events concern object {object} in {path}"));
    };
    let mut out = String::new();
    let _ = writeln!(out, "object {object} — lifecycle from {path}");
    let _ = writeln!(
        out,
        "  requests {} · served {} · relocations {} · bytes moved {} ({:.1} B/served)",
        c.requests,
        c.served,
        c.relocations,
        c.bytes_moved,
        c.bytes_per_served()
    );
    let _ = writeln!(
        out,
        "  churn: ping-pong {} · replicate-then-drop {} (window {:.0}s)",
        c.ping_pong,
        c.replicate_drop,
        ledger.config().churn_window
    );
    let replicas = ledger.replicas_of(object);
    if replicas.is_empty() {
        let _ = writeln!(out, "  replicas now: none observed");
    } else {
        let hosts: Vec<String> = replicas.iter().map(|h| h.to_string()).collect();
        let _ = writeln!(out, "  replicas now: hosts {}", hosts.join(", "));
    }
    let violations: Vec<_> = ledger
        .auditor()
        .violations()
        .iter()
        .filter(|v| v.object == object)
        .collect();
    if !violations.is_empty() {
        let _ = writeln!(out, "  INVARIANT VIOLATIONS involving this object:");
        for v in &violations {
            let _ = writeln!(out, "    {v}");
        }
    }

    let steps = ledger.timeline(object);
    if steps.is_empty() {
        let _ = writeln!(out, "\nno replica-set changes recorded");
        return Ok(out);
    }
    let dropped = ledger.timeline_dropped(object);
    if dropped > 0 {
        let _ = writeln!(out, "\n… {dropped} earlier steps beyond the timeline cap");
    }
    for step in steps {
        let _ = writeln!(
            out,
            "\n#{:<6} t={:<9.3} {}",
            step.seq,
            step.t,
            step.change.describe()
        );
        // The paper-facing "why": the Fig. 2 decision / placement-test
        // narrative of the chain that produced this step.
        if let Some(event) = log.events.iter().find(|e| e.seq == step.seq) {
            let chain = causal_chain(&log.events, event);
            for line in chain.lines().filter(|l| !l.is_empty()) {
                let _ = writeln!(out, "    {line}");
            }
        }
    }
    Ok(out)
}

fn churn(args: &[&str]) -> Result<String, String> {
    const OPTIONS: &[&str] = &["top", "object-size", "window"];
    let parsed = Parsed::parse(args, OPTIONS, &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Ok(help());
    }
    let [path] = parsed.positionals.as_slice() else {
        return Err(format!(
            "objects churn expects an events FILE\n\n{}",
            help()
        ));
    };
    let top: usize = parsed
        .get_parsed("top", 10, "a row count")
        .map_err(|e| e.to_string())?;
    let log = load_log(path)?;
    if log.events.is_empty() {
        return Ok("no events\n".to_string());
    }
    let ledger = fold_log(&log, ledger_config(&parsed)?);

    let mut out = ledger.health().render();
    let rows = ledger.churn_table(top);
    if !rows.is_empty() {
        out.push('\n');
        let _ = writeln!(
            out,
            "{:<8} {:>9} {:>8} {:>6} {:>10} {:>9} {:>10} {:>9}",
            "object", "requests", "served", "reloc", "bytes", "B/served", "ping-pong", "rep-drop"
        );
        for (object, c) in &rows {
            let _ = writeln!(
                out,
                "{:<8} {:>9} {:>8} {:>6} {:>10} {:>9.1} {:>10} {:>9}",
                object,
                c.requests,
                c.served,
                c.relocations,
                c.bytes_moved,
                c.bytes_per_served(),
                c.ping_pong,
                c.replicate_drop
            );
        }
    }
    let nodes = ledger.node_table();
    if !nodes.is_empty() {
        out.push('\n');
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>10} {:>10} {:>9}",
            "node", "served", "bytes-in", "bytes-out", "B/served"
        );
        for (node, c) in &nodes {
            let _ = writeln!(
                out,
                "{:<6} {:>8} {:>10} {:>10} {:>9.1}",
                node,
                c.served,
                c.bytes_in,
                c.bytes_out,
                c.bytes_per_served()
            );
        }
    }
    Ok(out)
}

/// Violations printed in full before the audit verdict truncates.
const AUDIT_VIOLATION_LINES: usize = 20;

fn audit(args: &[&str]) -> Result<String, String> {
    let parsed = Parsed::parse(args, &[], &["help"]).map_err(|e| e.to_string())?;
    if parsed.has("help") {
        return Ok(help());
    }
    let [path] = parsed.positionals.as_slice() else {
        return Err(format!(
            "objects audit expects an events FILE\n\n{}",
            help()
        ));
    };
    let log = load_log(path)?;
    let ledger = fold_log(&log, LedgerConfig::default());
    let auditor = ledger.auditor();
    let events = auditor.events_seen();

    let mut caveat = String::new();
    if let Some(ev) = &log.evictions {
        if ev.total() > 0 {
            let _ = writeln!(
                caveat,
                "note: {} events were evicted before export; the audit only \
                 covers what survived (stream the full run with \
                 `radar simulate --events FILE` for a complete audit)",
                ev.total()
            );
        }
    }

    let violations = auditor.violations();
    if violations.is_empty() {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audit clean: {events} events, {} active replicas, 0 violations",
            auditor.active_replicas()
        );
        out.push_str(&caveat);
        return Ok(out);
    }
    // A dirty audit is an error: the caller's exit code becomes 2, so
    // CI can gate on it.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "audit FAILED: {} violations in {events} events of {path}",
        violations.len()
    );
    out.push_str(&caveat);
    for v in violations.iter().take(AUDIT_VIOLATION_LINES) {
        let _ = writeln!(out, "  {v}");
    }
    if violations.len() > AUDIT_VIOLATION_LINES {
        let _ = writeln!(
            out,
            "  … {} more violations",
            violations.len() - AUDIT_VIOLATION_LINES
        );
    }
    Err(out)
}

fn help() -> String {
    "radar objects — protocol-level behaviour of a flight-recorder log\n\
     \n\
     Produce a log with `radar simulate --events FILE …`. All subcommands\n\
     replay it through the same ObjectLedger fold the simulator uses for\n\
     the `protocol_health` report section.\n\
     \n\
     USAGE:\n\
     \x20 radar objects timeline ID FILE    one object's replica-set lifecycle:\n\
     \x20                                   every create/drop/migrate/re-replication\n\
     \x20                                   with the causal chain that produced it\n\
     \x20 radar objects churn FILE [--top N]\n\
     \x20                                   churn and relocation-cost attribution:\n\
     \x20                                   ping-pong migrations, replicate-then-drop\n\
     \x20                                   cycles, bytes moved per request served,\n\
     \x20                                   per object and per node\n\
     \x20 radar objects audit FILE          replica-set-invariant audit: flags any\n\
     \x20                                   unnotified drop, orphaned replica, or\n\
     \x20                                   directory/host disagreement (exit 2 with\n\
     \x20                                   the offending event seqs on violations)\n\
     \n\
     OPTIONS (timeline / churn):\n\
     \x20 --object-size B   bytes per object copy, for relocation pricing\n\
     \x20                   (default 12288 — the default scenario's size)\n\
     \x20 --window S        churn hysteresis window in seconds (default 120 —\n\
     \x20                   two placement periods)\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_obs::{Event, EventKind, PlacementActionEvent, PlacementActionKind, ResetCause};

    fn ev(seq: u64, parent: Option<u64>, t: f64, kind: EventKind) -> Event {
        Event {
            seq,
            parent,
            t,
            queue_depth: 0,
            kind,
        }
    }

    fn write_log(lines: &[String]) -> (tempdir::TempPath, String) {
        let path = tempdir::path("objects-test");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let s = path.to_string_lossy().into_owned();
        (tempdir::TempPath(path), s)
    }

    /// Minimal self-cleaning temp files (std-only).
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static NEXT: AtomicU64 = AtomicU64::new(0);

        pub struct TempPath(pub PathBuf);
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        pub fn path(stem: &str) -> PathBuf {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            std::env::temp_dir().join(format!("radar-{stem}-{}-{n}.jsonl", std::process::id()))
        }
    }

    fn replication_log() -> Vec<String> {
        [
            ev(
                1,
                None,
                10.0,
                EventKind::RequestServed {
                    gateway: 0,
                    object: 7,
                    host: 1,
                    latency: 0.05,
                    hops: 2,
                },
            ),
            ev(
                2,
                None,
                60.0,
                EventKind::CountsReset {
                    object: 7,
                    cause: ResetCause::Created,
                },
            ),
            ev(
                3,
                Some(2),
                60.0,
                EventKind::PlacementAction(PlacementActionEvent {
                    host: 1,
                    object: 7,
                    action: PlacementActionKind::GeoReplicate,
                    target: Some(2),
                    unit_rate: 0.3,
                    share: None,
                    ratio: Some(0.4),
                    deletion_threshold: 0.01,
                    replication_threshold: 0.18,
                }),
            ),
        ]
        .iter()
        .map(Event::to_json_line)
        .collect()
    }

    #[test]
    fn timeline_renders_lifecycle_and_chain() {
        let (_g, path) = write_log(&replication_log());
        let out = timeline(&["7", path.as_str()]).unwrap();
        assert!(out.contains("object 7"), "{out}");
        assert!(out.contains("replica created on host 2"), "{out}");
        assert!(out.contains("replicas now: hosts 1, 2"), "{out}");
        assert!(out.contains("caused by:"), "{out}");
        assert!(out.contains("bytes moved 12288"), "{out}");
    }

    #[test]
    fn timeline_rejects_unknown_object() {
        let (_g, path) = write_log(&replication_log());
        let err = timeline(&["99", path.as_str()]).unwrap_err();
        assert!(err.contains("no events concern object 99"), "{err}");
    }

    #[test]
    fn churn_prices_relocations_per_object_and_node() {
        let (_g, path) = write_log(&replication_log());
        let out = churn(&[path.as_str(), "--object-size", "1000"]).unwrap();
        assert!(out.contains("protocol health"), "{out}");
        assert!(out.contains("bytes moved 1000"), "{out}");
        assert!(out.contains("[ok]"), "{out}");
        // Node table: host 1 shipped the copy out, host 2 received it.
        assert!(out.contains("bytes-in"), "{out}");
    }

    #[test]
    fn audit_passes_clean_log_and_fails_dirty_one() {
        let (_g, path) = write_log(&replication_log());
        let out = audit(&[path.as_str()]).unwrap();
        assert!(out.contains("audit clean"), "{out}");

        // A drop with no matching directory notification.
        let dirty = vec![ev(
            1,
            None,
            30.0,
            EventKind::PlacementAction(PlacementActionEvent {
                host: 3,
                object: 9,
                action: PlacementActionKind::Drop,
                target: None,
                unit_rate: 0.001,
                share: None,
                ratio: None,
                deletion_threshold: 0.01,
                replication_threshold: 0.18,
            }),
        )
        .to_json_line()];
        let (_g2, dirty_path) = write_log(&dirty);
        let err = audit(&[dirty_path.as_str()]).unwrap_err();
        assert!(err.contains("audit FAILED"), "{err}");
        assert!(err.contains("seq 1"), "{err}");
        assert!(err.contains("drop-before-notify"), "{err}");
    }

    #[test]
    fn audit_notes_evicted_events() {
        let mut lines = replication_log();
        lines.push("{\"type\":\"evictions\",\"routine\":5,\"notable\":0,\"critical\":1}".into());
        let (_g, path) = write_log(&lines);
        let out = audit(&[path.as_str()]).unwrap();
        assert!(out.contains("audit clean"), "{out}");
        assert!(out.contains("6 events were evicted"), "{out}");
    }
}
