//! End-to-end tests of the `radar` CLI through its library entry point.

use radar_cli::json::Value;
use radar_cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn help_paths() {
    let out = run(&args(&["--help"])).unwrap();
    assert!(out.contains("USAGE"));
    let err = run(&args(&["bogus"])).unwrap_err();
    assert!(err.contains("unknown command"));
    let out = run(&args(&[])).unwrap();
    assert!(out.contains("radar simulate"));
}

#[test]
fn simulate_text_summary() {
    let out = run(&args(&[
        "simulate",
        "--objects",
        "100",
        "--rate",
        "2",
        "--duration",
        "120",
        "--workload",
        "hot-pages",
    ]))
    .unwrap();
    assert!(out.contains("workload hot-pages"), "{out}");
    assert!(out.contains("replicas/object"));
}

#[test]
fn simulate_json_report() {
    let out = run(&args(&[
        "simulate",
        "--objects",
        "60",
        "--rate",
        "1",
        "--duration",
        "60",
        "--json",
    ]))
    .unwrap();
    let value = Value::parse(&out).expect("valid JSON");
    assert_eq!(value["workload"], "zipf");
    assert!(value["total_requests"].as_u64().unwrap() > 0);
    assert!(value["final_replicas"].as_array().unwrap().len() == 60);
}

#[test]
fn simulate_record_then_replay_round_trip() {
    let trace_path = std::env::temp_dir().join("radar-cli-roundtrip.trace");
    let p = trace_path.to_str().unwrap();
    let original = run(&args(&[
        "simulate",
        "--objects",
        "80",
        "--rate",
        "2",
        "--duration",
        "90",
        "--seed",
        "9",
        "--record-trace",
        p,
        "--json",
    ]))
    .unwrap();
    let replayed = run(&args(&[
        "simulate",
        "--objects",
        "80",
        "--rate",
        "2",
        "--duration",
        "90",
        "--seed",
        "9",
        "--replay",
        p,
        "--json",
    ]))
    .unwrap();
    let a = Value::parse(&original).unwrap();
    let b = Value::parse(&replayed).unwrap();
    assert_eq!(a["total_requests"], b["total_requests"]);
    assert_eq!(a["client_bandwidth"], b["client_bandwidth"]);
    assert_eq!(b["workload"], "replay");
    // The trace file itself passes validation.
    let out = run(&args(&["trace", "validate", p])).unwrap();
    assert!(out.contains("valid"));
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn simulate_rejects_bad_flags() {
    assert!(run(&args(&["simulate", "--objects", "zero"]))
        .unwrap_err()
        .contains("expected an object count"));
    assert!(run(&args(&["simulate", "--workload", "martian"]))
        .unwrap_err()
        .contains("unknown workload"));
    assert!(run(&args(&["simulate", "--watermarks", "90"]))
        .unwrap_err()
        .contains("low,high"));
    assert!(run(&args(&["simulate", "--watermarks", "90,80"]))
        .unwrap_err()
        .contains("below high watermark"));
    assert!(run(&args(&["simulate", "--policy", "psychic"]))
        .unwrap_err()
        .contains("unknown policy"));
}

#[test]
fn simulate_with_custom_topology_and_baseline_policy() {
    let topo_path = std::env::temp_dir().join("radar-cli-topo.spec");
    std::fs::write(
        &topo_path,
        "node a eu\nnode b eu\nnode c wna\nlink a b\nlink b c\n",
    )
    .unwrap();
    let out = run(&args(&[
        "simulate",
        "--topology",
        topo_path.to_str().unwrap(),
        "--objects",
        "30",
        "--rate",
        "1",
        "--duration",
        "60",
        "--policy",
        "closest",
        "--workload",
        "uniform",
    ]))
    .unwrap();
    assert!(out.contains("policy closest"), "{out}");
    let _ = std::fs::remove_file(topo_path);
}

#[test]
fn simulate_with_fault_schedule_file() {
    let spec_path = std::env::temp_dir().join("radar-cli-faults.spec");
    std::fs::write(
        &spec_path,
        "# two crashes, one for good\n\
         min-replicas 2\n\
         declare-dead-after 30\n\
         host-down 5 60 180\n\
         host-down 12 120\n",
    )
    .unwrap();
    let p = spec_path.to_str().unwrap();
    let out = run(&args(&[
        "simulate",
        "--objects",
        "100",
        "--rate",
        "2",
        "--duration",
        "300",
        "--faults",
        p,
    ]))
    .unwrap();
    assert!(out.contains("faults"), "{out}");
    assert!(out.contains("availability"), "{out}");

    let json = run(&args(&[
        "simulate",
        "--objects",
        "100",
        "--rate",
        "2",
        "--duration",
        "300",
        "--faults",
        p,
        "--json",
    ]))
    .unwrap();
    let value = Value::parse(&json).expect("valid JSON");
    assert_eq!(value["faults_injected"].as_u64(), Some(3));
    assert!(value["re_replications"].as_u64().unwrap() > 0);
    let _ = std::fs::remove_file(spec_path);
}

#[test]
fn simulate_rejects_bad_fault_schedules() {
    let err = run(&args(&["simulate", "--faults", "/nonexistent/file.spec"])).unwrap_err();
    assert!(err.contains("cannot read fault schedule"), "{err}");

    let spec_path = std::env::temp_dir().join("radar-cli-bad-faults.spec");
    std::fs::write(&spec_path, "host-down not-a-host 10\n").unwrap();
    let err = run(&args(&[
        "simulate",
        "--faults",
        spec_path.to_str().unwrap(),
    ]))
    .unwrap_err();
    assert!(err.contains("line 1"), "{err}");
    let _ = std::fs::remove_file(spec_path);
}
