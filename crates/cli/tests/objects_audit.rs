//! End-to-end replica-set-invariant auditing through the CLI.
//!
//! The audit is the PR's CI gate: the committed golden log and a
//! faulted sharded run must both satisfy the paper's replica-set
//! invariant, seeded violations must fail with the offending event
//! seq (exit 2 via `main`), and enabling the ledger must not perturb
//! the event stream.

use radar_cli::run;
use radar_obs::{Event, EventKind, PlacementActionEvent, PlacementActionKind, ResetCause};
use std::path::PathBuf;

fn args(a: &[&str]) -> Vec<String> {
    a.iter().map(|s| s.to_string()).collect()
}

/// The committed baseline (kept in sync with scripts/golden-diff.sh).
fn golden_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/events-seed42.jsonl"
    )
    .to_string()
}

struct TempPath(PathBuf);
impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn temp(stem: &str, ext: &str) -> (TempPath, String) {
    let path =
        std::env::temp_dir().join(format!("radar-audit-{stem}-{}.{ext}", std::process::id()));
    let s = path.to_string_lossy().into_owned();
    (TempPath(path), s)
}

fn ev(seq: u64, t: f64, kind: EventKind) -> Event {
    Event {
        seq,
        parent: None,
        t,
        queue_depth: 0,
        kind,
    }
}

fn placement(
    seq: u64,
    t: f64,
    host: u16,
    object: u32,
    action: PlacementActionKind,
    target: Option<u16>,
) -> Event {
    ev(
        seq,
        t,
        EventKind::PlacementAction(PlacementActionEvent {
            host,
            object,
            action,
            target,
            unit_rate: 0.3,
            share: None,
            ratio: None,
            deletion_threshold: 0.01,
            replication_threshold: 0.18,
        }),
    )
}

fn write_log(stem: &str, events: &[Event]) -> (TempPath, String) {
    let body: String = events.iter().map(|e| e.to_json_line() + "\n").collect();
    let (guard, path) = temp(stem, "jsonl");
    std::fs::write(&path, body).expect("temp log writable");
    (guard, path)
}

/// Golden scenario flags from tests/golden/README.md, plus extras.
fn simulate(extra: &[&str], events_path: &str) {
    let mut a = vec![
        "simulate",
        "--objects",
        "16",
        "--rate",
        "0.05",
        "--duration",
        "150",
        "--seed",
        "42",
        "--events",
        events_path,
    ];
    a.extend_from_slice(extra);
    run(&args(&a)).expect("scenario runs");
}

/// The wall-clock-dependent reorder trailer is the one permitted
/// difference between runs; everything else must match byte-for-byte.
fn without_reorder_trailer(path: &str) -> String {
    std::fs::read_to_string(path)
        .expect("log readable")
        .lines()
        .filter(|l| !l.contains("\"type\":\"reorder\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn golden_log_audits_clean() {
    let out = run(&args(&["objects", "audit", &golden_path()]))
        .expect("golden log satisfies the replica-set invariant");
    assert!(out.contains("audit clean"), "{out}");
    assert!(out.contains("0 violations"), "{out}");
}

#[test]
fn seeded_drop_before_notify_fails_naming_the_seq() {
    // A drop placement action with no counts-reset(dropped) pairing:
    // the host deleted its copy without notifying the directory.
    let (_g, path) = write_log(
        "drop-before-notify",
        &[placement(17, 60.0, 3, 9, PlacementActionKind::Drop, None)],
    );
    let err = run(&args(&["objects", "audit", &path])).expect_err("violation must fail the audit");
    assert!(err.contains("audit FAILED"), "{err}");
    assert!(err.contains("seq 17"), "{err}");
    assert!(err.contains("drop-before-notify"), "{err}");
}

#[test]
fn seeded_orphaned_replica_fails_naming_the_seq() {
    // A replicate with no counts-reset(created) pairing: a physical
    // copy the directory was never told about.
    let (_g, path) = write_log(
        "orphan",
        &[
            ev(
                1,
                10.0,
                EventKind::RequestServed {
                    gateway: 0,
                    object: 4,
                    host: 1,
                    latency: 0.05,
                    hops: 2,
                },
            ),
            placement(23, 60.0, 1, 4, PlacementActionKind::GeoReplicate, Some(6)),
        ],
    );
    let err = run(&args(&["objects", "audit", &path])).expect_err("violation must fail the audit");
    assert!(err.contains("audit FAILED"), "{err}");
    assert!(err.contains("seq 23"), "{err}");
    assert!(err.contains("orphaned-replica"), "{err}");
}

#[test]
fn notified_lifecycle_passes_the_audit() {
    let (_g, path) = write_log(
        "notified",
        &[
            ev(
                1,
                60.0,
                EventKind::CountsReset {
                    object: 7,
                    cause: ResetCause::Created,
                },
            ),
            placement(2, 60.0, 1, 7, PlacementActionKind::GeoReplicate, Some(2)),
            ev(
                3,
                120.0,
                EventKind::CountsReset {
                    object: 7,
                    cause: ResetCause::Dropped,
                },
            ),
            placement(4, 120.0, 2, 7, PlacementActionKind::Drop, None),
        ],
    );
    let out = run(&args(&["objects", "audit", &path])).expect("notified lifecycle is clean");
    assert!(out.contains("audit clean"), "{out}");
}

#[test]
fn faulted_sharded_run_audits_clean_and_matches_serial() {
    // Crash-and-recover plus a permanent loss, exercising purges,
    // re-replication, and the primary-fallback origin fetch — the
    // paths where a lenient-but-sound auditor earns its keep.
    let (_gf, faults) = temp("faults", "txt");
    std::fs::write(
        &faults,
        "min-replicas 2\ndeclare-dead-after 30\nhost-down 5 60 180\nhost-down 12 120\n",
    )
    .expect("fault spec writable");

    let (_g1, serial) = temp("faulted-serial", "jsonl");
    let (_g2, sharded) = temp("faulted-sharded", "jsonl");
    simulate(&["--faults", &faults], &serial);
    simulate(&["--faults", &faults, "--shards", "2"], &sharded);

    for path in [&serial, &sharded] {
        let out = run(&args(&["objects", "audit", path]))
            .expect("faulted run satisfies the replica-set invariant");
        assert!(out.contains("0 violations"), "{path}: {out}");
    }
    assert_eq!(
        without_reorder_trailer(&serial),
        without_reorder_trailer(&sharded),
        "2-shard faulted log must match the serial log apart from the reorder trailer"
    );
}

#[test]
fn ledger_does_not_perturb_the_event_stream() {
    // The ledger is observation only: the golden scenario re-run with
    // --ledger must reproduce the committed log byte-for-byte.
    let (_g, fresh) = temp("ledger-golden", "jsonl");
    simulate(&["--ledger"], &fresh);
    assert_eq!(
        std::fs::read_to_string(golden_path()).expect("golden log committed"),
        std::fs::read_to_string(&fresh).expect("fresh log written"),
        "--ledger changed the event stream"
    );
}
