//! Golden-log regression diffing through the CLI.
//!
//! Rerunning the committed golden scenario with the same seed must
//! reproduce the flight-recorder stream byte-for-byte, and a perturbed
//! seed must be caught with a located first divergence and its causal
//! chain — the mechanism `scripts/golden-diff.sh` gates CI with.

use radar_cli::run;
use std::path::PathBuf;

/// The committed baseline (see tests/golden/README.md; keep the
/// scenario flags in sync with scripts/golden-diff.sh).
fn golden_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/events-seed42.jsonl"
    )
    .to_string()
}

fn simulate_events(seed: &str, events_path: &str) {
    let args: Vec<String> = [
        "simulate",
        "--objects",
        "16",
        "--rate",
        "0.05",
        "--duration",
        "150",
        "--seed",
        seed,
        "--events",
        events_path,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(&args).expect("golden scenario runs");
}

fn diff(a: &str, b: &str) -> Result<String, String> {
    let args: Vec<String> = ["events", "diff", a, b]
        .iter()
        .map(|s| s.to_string())
        .collect();
    run(&args)
}

struct TempPath(PathBuf);
impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn temp(stem: &str) -> (TempPath, String) {
    let path = std::env::temp_dir().join(format!("radar-{stem}-{}.jsonl", std::process::id()));
    let s = path.to_string_lossy().into_owned();
    (TempPath(path), s)
}

#[test]
fn same_seed_rerun_matches_the_committed_golden_log() {
    let golden = golden_path();
    let (_guard, fresh) = temp("golden-same");
    simulate_events("42", &fresh);
    assert_eq!(
        std::fs::read_to_string(&golden).expect("golden log committed"),
        std::fs::read_to_string(&fresh).expect("fresh log written"),
        "seeded rerun is not byte-identical to tests/golden/events-seed42.jsonl \
         (if the behaviour change is intentional, run scripts/golden-diff.sh --regen)"
    );
    let out = diff(&golden, &fresh).expect("identical logs diff clean");
    assert!(out.contains("logs identical"), "{out}");
}

#[test]
fn perturbed_seed_diverges_with_located_causal_chain() {
    let golden = golden_path();
    let (_guard, fresh) = temp("golden-perturbed");
    simulate_events("43", &fresh);
    let err = diff(&golden, &fresh).expect_err("different seeds must diverge");
    assert!(err.contains("logs diverge at position"), "{err}");
    let seq: u64 = err
        .split("first differing seq ")
        .nth(1)
        .and_then(|rest| rest.split(')').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no divergence seq in report:\n{err}"));
    assert!(seq > 0, "divergence seq must be a real event: {err}");
    // The report carries each side's causal context, not just the line.
    assert!(
        err.contains("led to:") || err.contains("caused by:"),
        "no causal chain in report:\n{err}"
    );
}
