//! Arbitrary popularity distributions, e.g. measured from access logs.

use radar_core::ObjectId;
use radar_simcore::SimRng;
use radar_simnet::NodeId;

use crate::Workload;

/// A workload drawing objects from an explicit popularity table — the
/// bridge from measured traces (the paper's companion report runs
/// trace-driven simulations) to this repository's synthetic harness:
/// histogram your log into per-object weights and replay the
/// distribution.
///
/// Sampling is O(log n) by binary search over the cumulative weights.
///
/// # Examples
///
/// ```
/// use radar_simcore::SimRng;
/// use radar_simnet::NodeId;
/// use radar_workload::{Weighted, Workload};
///
/// // Object 2 is ten times as popular as objects 0 and 1.
/// let mut w = Weighted::new(vec![1.0, 1.0, 10.0])?;
/// let mut rng = SimRng::seed_from(1);
/// let draws: Vec<_> = (0..100).map(|_| w.choose(0.0, NodeId::new(0), &mut rng)).collect();
/// assert!(draws.iter().filter(|o| o.index() == 2).count() > 50);
/// # Ok::<(), radar_workload::WeightedError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Weighted {
    cumulative: Vec<f64>,
    total: f64,
}

/// Why a weight table was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightedError {
    /// The table was empty.
    Empty,
    /// A weight was negative, NaN, or infinite.
    BadWeight {
        /// Index of the offending weight.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// All weights were zero.
    AllZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::Empty => f.write_str("popularity table is empty"),
            WeightedError::BadWeight { index, value } => {
                write!(f, "weight {index} is not finite and non-negative: {value}")
            }
            WeightedError::AllZero => f.write_str("all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

impl Weighted {
    /// Builds the sampler from per-object weights (index = object id).
    /// Zero weights are allowed (those objects are never drawn) as long
    /// as at least one weight is positive.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError`] for an empty table, non-finite or
    /// negative entries, or an all-zero table.
    pub fn new(weights: Vec<f64>) -> Result<Self, WeightedError> {
        if weights.is_empty() {
            return Err(WeightedError::Empty);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for (index, &value) in weights.iter().enumerate() {
            if !(value.is_finite() && value >= 0.0) {
                return Err(WeightedError::BadWeight { index, value });
            }
            total += value;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllZero);
        }
        Ok(Self { cumulative, total })
    }

    /// Builds the sampler from observed access counts.
    ///
    /// # Errors
    ///
    /// As for [`Weighted::new`].
    pub fn from_counts(counts: &[u64]) -> Result<Self, WeightedError> {
        Self::new(counts.iter().map(|&c| c as f64).collect())
    }

    /// Number of objects in the table.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` if the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

impl Workload for Weighted {
    fn choose(&mut self, _now: f64, _gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        let pick = rng.unit() * self.total;
        // partition_point: first index whose cumulative weight exceeds
        // the pick. Zero-weight objects have zero-length intervals and
        // are skipped naturally.
        let idx = self.cumulative.partition_point(|&c| c <= pick);
        ObjectId::new(idx.min(self.cumulative.len() - 1) as u32)
    }

    fn name(&self) -> &str {
        "weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_histogram(w: &mut Weighted, n: usize) -> Vec<usize> {
        let mut rng = SimRng::seed_from(99);
        let mut hist = vec![0usize; w.len()];
        for _ in 0..n {
            hist[w.choose(0.0, NodeId::new(0), &mut rng).index()] += 1;
        }
        hist
    }

    #[test]
    fn frequencies_match_weights() {
        let mut w = Weighted::new(vec![1.0, 3.0, 6.0]).unwrap();
        let hist = draw_histogram(&mut w, 30_000);
        let f: Vec<f64> = hist.iter().map(|&c| c as f64 / 30_000.0).collect();
        assert!((f[0] - 0.1).abs() < 0.01, "{f:?}");
        assert!((f[1] - 0.3).abs() < 0.01, "{f:?}");
        assert!((f[2] - 0.6).abs() < 0.01, "{f:?}");
    }

    #[test]
    fn zero_weight_objects_never_drawn() {
        let mut w = Weighted::new(vec![0.0, 1.0, 0.0, 1.0]).unwrap();
        let hist = draw_histogram(&mut w, 5_000);
        assert_eq!(hist[0], 0);
        assert_eq!(hist[2], 0);
        assert!(hist[1] > 0 && hist[3] > 0);
    }

    #[test]
    fn from_counts_works() {
        let mut w = Weighted::from_counts(&[10, 0, 30]).unwrap();
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        let hist = draw_histogram(&mut w, 8_000);
        assert_eq!(hist[1], 0);
        assert!(hist[2] > hist[0] * 2);
        assert_eq!(w.name(), "weighted");
    }

    #[test]
    fn validation_errors() {
        assert_eq!(Weighted::new(vec![]).unwrap_err(), WeightedError::Empty);
        assert!(matches!(
            Weighted::new(vec![1.0, -2.0]).unwrap_err(),
            WeightedError::BadWeight { index: 1, .. }
        ));
        assert!(matches!(
            Weighted::new(vec![1.0, f64::NAN]).unwrap_err(),
            WeightedError::BadWeight { index: 1, .. }
        ));
        assert_eq!(
            Weighted::new(vec![0.0, 0.0]).unwrap_err(),
            WeightedError::AllZero
        );
        for e in [
            WeightedError::Empty,
            WeightedError::AllZero,
            WeightedError::BadWeight {
                index: 0,
                value: -1.0,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

/// Per-gateway popularity tables: each gateway draws from its own
/// [`Weighted`] distribution — the fully general form of trace-derived
/// demand (the [`crate::Regional`] workload is the synthetic special
/// case where each region's gateways share a preferred slice).
///
/// # Examples
///
/// ```
/// use radar_simcore::SimRng;
/// use radar_simnet::NodeId;
/// use radar_workload::{PerGatewayWeighted, Weighted, Workload};
///
/// // Gateway 0 only ever wants object 0; gateway 1 only object 1.
/// let mut w = PerGatewayWeighted::new(vec![
///     Weighted::new(vec![1.0, 0.0])?,
///     Weighted::new(vec![0.0, 1.0])?,
/// ])?;
/// let mut rng = SimRng::seed_from(1);
/// assert_eq!(w.choose(0.0, NodeId::new(0), &mut rng).index(), 0);
/// assert_eq!(w.choose(0.0, NodeId::new(1), &mut rng).index(), 1);
/// # Ok::<(), radar_workload::WeightedError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PerGatewayWeighted {
    tables: Vec<Weighted>,
}

impl PerGatewayWeighted {
    /// Builds from one table per gateway (indexed by gateway id). All
    /// tables must cover the same object space.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError::Empty`] for an empty table list or
    /// mismatched object-space sizes (reported as `Empty` on the absent
    /// dimension — construct tables with [`Weighted::new`] first, which
    /// validates the weights themselves).
    pub fn new(tables: Vec<Weighted>) -> Result<Self, WeightedError> {
        if tables.is_empty() {
            return Err(WeightedError::Empty);
        }
        let len = tables[0].len();
        if tables.iter().any(|t| t.len() != len) {
            return Err(WeightedError::Empty);
        }
        Ok(Self { tables })
    }

    /// Builds from per-gateway access-count histograms, e.g. straight
    /// from a partitioned access log.
    ///
    /// # Errors
    ///
    /// As for [`PerGatewayWeighted::new`] and [`Weighted::from_counts`].
    pub fn from_counts(counts: &[Vec<u64>]) -> Result<Self, WeightedError> {
        let tables = counts
            .iter()
            .map(|c| Weighted::from_counts(c))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(tables)
    }

    /// Number of gateways covered.
    pub fn gateways(&self) -> usize {
        self.tables.len()
    }
}

impl Workload for PerGatewayWeighted {
    fn choose(&mut self, now: f64, gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        // Gateways beyond the table list fall back to the last table, so
        // a partial log still drives a full platform.
        let idx = gateway.index().min(self.tables.len() - 1);
        self.tables[idx].choose(now, gateway, rng)
    }

    fn name(&self) -> &str {
        "per-gateway-weighted"
    }
}

#[cfg(test)]
mod per_gateway_tests {
    use super::*;

    #[test]
    fn gateways_draw_from_their_own_tables() {
        let mut w =
            PerGatewayWeighted::from_counts(&[vec![10, 0, 0], vec![0, 10, 0], vec![0, 0, 10]])
                .unwrap();
        assert_eq!(w.gateways(), 3);
        let mut rng = SimRng::seed_from(4);
        for g in 0..3u16 {
            for _ in 0..20 {
                assert_eq!(w.choose(0.0, NodeId::new(g), &mut rng).index(), g as usize);
            }
        }
        // Out-of-range gateways use the last table.
        assert_eq!(w.choose(0.0, NodeId::new(50), &mut rng).index(), 2);
    }

    #[test]
    fn validation() {
        assert_eq!(
            PerGatewayWeighted::new(vec![]).unwrap_err(),
            WeightedError::Empty
        );
        let mismatched = PerGatewayWeighted::new(vec![
            Weighted::new(vec![1.0]).unwrap(),
            Weighted::new(vec![1.0, 1.0]).unwrap(),
        ]);
        assert!(mismatched.is_err());
        // Weight errors surface from from_counts.
        assert!(PerGatewayWeighted::from_counts(&[vec![0, 0]]).is_err());
    }
}
