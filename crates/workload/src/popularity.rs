//! Object-popularity models (paper §6.1).

use radar_core::ObjectId;
use radar_simcore::SimRng;
use radar_simnet::{NodeId, Region, Topology};

use crate::Workload;

/// Zipf-distributed popularity via Jim Reeds' closed-form approximation
/// (paper §6.1, footnote 3): the requested page number is
/// `round(e^{u(0,1)·ln n})`, clamped to `[1, n]`, where page 1 is the
/// most popular. The paper reports this matches Zipf within 15%.
///
/// Object ids are page numbers minus one, so `ObjectId::new(0)` is the
/// hottest object.
#[derive(Debug, Clone)]
pub struct ZipfReeds {
    num_objects: u32,
    ln_n: f64,
}

impl ZipfReeds {
    /// Creates a Zipf workload over `num_objects` objects.
    ///
    /// # Panics
    ///
    /// Panics if `num_objects` is zero.
    pub fn new(num_objects: u32) -> Self {
        assert!(num_objects > 0, "workload needs at least one object");
        Self {
            num_objects,
            ln_n: (num_objects as f64).ln(),
        }
    }
}

impl Workload for ZipfReeds {
    fn choose(&mut self, _now: f64, _gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        let page = (rng.unit() * self.ln_n).exp().round() as u32;
        ObjectId::new(page.clamp(1, self.num_objects) - 1)
    }

    fn name(&self) -> &str {
        "zipf"
    }
}

/// Hot-sites workload: sites (nodes) are split randomly into hot and
/// cold; a request picks a random object *initially assigned to* a hot
/// site with probability `hot_prob`, otherwise a random object of a cold
/// site. The paper uses a 10%/90% site split with `hot_prob` = 0.9,
/// concentrating demand on the objects of a few sites — the flash-crowd /
/// popular-site scenario.
#[derive(Debug, Clone)]
pub struct HotSites {
    hot_objects: Vec<ObjectId>,
    cold_objects: Vec<ObjectId>,
    hot_prob: f64,
}

impl HotSites {
    /// Builds the paper's configuration: `hot_fraction` (0.1) of the
    /// `num_nodes` sites are drawn as hot using `rng`; objects map to
    /// sites by the initial round-robin rule (`object i` on
    /// `node i mod num_nodes`); hot objects draw `hot_prob` (0.9) of
    /// requests.
    ///
    /// # Panics
    ///
    /// Panics if there are no objects or nodes, if `hot_fraction` is not
    /// in `(0, 1)`, or if `hot_prob` is not in `(0, 1)`.
    pub fn new(
        num_objects: u32,
        num_nodes: u16,
        hot_fraction: f64,
        hot_prob: f64,
        rng: &mut SimRng,
    ) -> Self {
        assert!(num_objects > 0, "workload needs at least one object");
        assert!(num_nodes > 0, "workload needs at least one node");
        assert!(
            hot_fraction > 0.0 && hot_fraction < 1.0,
            "hot fraction must be in (0,1), got {hot_fraction}"
        );
        assert!(
            hot_prob > 0.0 && hot_prob < 1.0,
            "hot probability must be in (0,1), got {hot_prob}"
        );
        // Draw hot sites: a random subset of ceil(fraction × nodes),
        // at least 1 and at most nodes-1.
        let hot_count =
            ((num_nodes as f64 * hot_fraction).ceil() as usize).clamp(1, num_nodes as usize - 1);
        let mut site_ids: Vec<u16> = (0..num_nodes).collect();
        // Partial Fisher–Yates for the hot prefix.
        for i in 0..hot_count {
            let j = i + rng.index(site_ids.len() - i);
            site_ids.swap(i, j);
        }
        let hot_sites: std::collections::BTreeSet<u16> =
            site_ids[..hot_count].iter().copied().collect();
        let mut hot_objects = Vec::new();
        let mut cold_objects = Vec::new();
        for i in 0..num_objects {
            let site = (i % num_nodes as u32) as u16;
            if hot_sites.contains(&site) {
                hot_objects.push(ObjectId::new(i));
            } else {
                cold_objects.push(ObjectId::new(i));
            }
        }
        Self {
            hot_objects,
            cold_objects,
            hot_prob,
        }
    }

    /// The objects belonging to hot sites.
    pub fn hot_objects(&self) -> &[ObjectId] {
        &self.hot_objects
    }
}

impl Workload for HotSites {
    fn choose(&mut self, _now: f64, _gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        // Sparse object spaces can leave one bucket empty (e.g. fewer
        // objects than sites, none landing on a hot site); fall back to
        // the other bucket rather than panicking.
        let hot = (rng.chance(self.hot_prob) && !self.hot_objects.is_empty())
            || self.cold_objects.is_empty();
        if hot {
            self.hot_objects[rng.index(self.hot_objects.len())]
        } else {
            self.cold_objects[rng.index(self.cold_objects.len())]
        }
    }

    fn name(&self) -> &str {
        "hot-sites"
    }
}

/// Hot-pages workload: pages are split into hot and cold buckets in the
/// ratio 1:9; a hot page is requested with probability 0.9. Unlike
/// [`HotSites`], the hot objects are drawn uniformly over the object
/// space, so the initial round-robin placement spreads them across all
/// nodes.
#[derive(Debug, Clone)]
pub struct HotPages {
    hot: Vec<ObjectId>,
    cold: Vec<ObjectId>,
    hot_prob: f64,
}

impl HotPages {
    /// Builds the paper's configuration: `hot_fraction` (0.1) of pages
    /// drawn uniformly at random are hot and receive `hot_prob` (0.9) of
    /// requests.
    ///
    /// # Panics
    ///
    /// Panics on empty object space or out-of-range fractions, as for
    /// [`HotSites::new`].
    pub fn new(num_objects: u32, hot_fraction: f64, hot_prob: f64, rng: &mut SimRng) -> Self {
        assert!(num_objects > 0, "workload needs at least one object");
        assert!(
            hot_fraction > 0.0 && hot_fraction < 1.0,
            "hot fraction must be in (0,1), got {hot_fraction}"
        );
        assert!(
            hot_prob > 0.0 && hot_prob < 1.0,
            "hot probability must be in (0,1), got {hot_prob}"
        );
        let hot_count = ((num_objects as f64 * hot_fraction).ceil() as usize)
            .clamp(1, num_objects as usize - 1);
        let mut ids: Vec<u32> = (0..num_objects).collect();
        for i in 0..hot_count {
            let j = i + rng.index(ids.len() - i);
            ids.swap(i, j);
        }
        let hot: Vec<ObjectId> = ids[..hot_count].iter().map(|&i| ObjectId::new(i)).collect();
        let cold: Vec<ObjectId> = ids[hot_count..].iter().map(|&i| ObjectId::new(i)).collect();
        Self {
            hot,
            cold,
            hot_prob,
        }
    }

    /// The hot pages.
    pub fn hot_objects(&self) -> &[ObjectId] {
        &self.hot
    }
}

impl Workload for HotPages {
    fn choose(&mut self, _now: f64, _gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        if rng.chance(self.hot_prob) || self.cold.is_empty() {
            self.hot[rng.index(self.hot.len())]
        } else {
            self.cold[rng.index(self.cold.len())]
        }
    }

    fn name(&self) -> &str {
        "hot-pages"
    }
}

/// Regional workload: each backbone region is assigned a contiguous slice
/// of the object space (1% of all objects in the paper) as its
/// *preferred set*; a node requests a random object from its region's
/// preferred set with probability 0.9, and a uniformly random object
/// otherwise.
#[derive(Debug, Clone)]
pub struct Regional {
    num_objects: u32,
    /// Preferred (start, len) slice per region, indexed by `Region::index`.
    preferred: [(u32, u32); 4],
    /// Region of each node, indexed by node id.
    node_regions: Vec<Region>,
    preferred_prob: f64,
}

impl Regional {
    /// Builds the paper's configuration over `topology`: four contiguous
    /// slices of `slice_fraction` (0.01) of the object space, preferred
    /// with probability `preferred_prob` (0.9).
    ///
    /// # Panics
    ///
    /// Panics if the object space is too small for four non-empty slices,
    /// or if fractions are out of range.
    pub fn new(
        num_objects: u32,
        topology: &Topology,
        slice_fraction: f64,
        preferred_prob: f64,
    ) -> Self {
        assert!(
            slice_fraction > 0.0 && slice_fraction <= 0.25,
            "slice fraction must be in (0, 0.25], got {slice_fraction}"
        );
        assert!(
            preferred_prob > 0.0 && preferred_prob < 1.0,
            "preferred probability must be in (0,1), got {preferred_prob}"
        );
        let slice_len = ((num_objects as f64 * slice_fraction).round() as u32).max(1);
        assert!(
            slice_len * 4 <= num_objects,
            "object space too small for four preferred slices of {slice_len}"
        );
        let preferred = [
            (0, slice_len),
            (slice_len, slice_len),
            (2 * slice_len, slice_len),
            (3 * slice_len, slice_len),
        ];
        let node_regions = topology.nodes().map(|n| topology.region(n)).collect();
        Self {
            num_objects,
            preferred,
            node_regions,
            preferred_prob,
        }
    }

    /// The preferred object slice `(start, len)` of `region`.
    pub fn preferred_slice(&self, region: Region) -> (u32, u32) {
        self.preferred[region.index()]
    }
}

impl Workload for Regional {
    fn choose(&mut self, _now: f64, gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        let region = self.node_regions[gateway.index()];
        if rng.chance(self.preferred_prob) {
            let (start, len) = self.preferred[region.index()];
            ObjectId::new(start + rng.index(len as usize) as u32)
        } else {
            ObjectId::new(rng.index(self.num_objects as usize) as u32)
        }
    }

    fn name(&self) -> &str {
        "regional"
    }
}

/// Uniformly random object choice — the no-structure baseline.
#[derive(Debug, Clone)]
pub struct Uniform {
    num_objects: u32,
}

impl Uniform {
    /// Creates a uniform workload over `num_objects` objects.
    ///
    /// # Panics
    ///
    /// Panics if `num_objects` is zero.
    pub fn new(num_objects: u32) -> Self {
        assert!(num_objects > 0, "workload needs at least one object");
        Self { num_objects }
    }
}

impl Workload for Uniform {
    fn choose(&mut self, _now: f64, _gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        ObjectId::new(rng.index(self.num_objects as usize) as u32)
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

/// Probabilistic blend of workloads: component `i` is consulted with
/// probability proportional to its weight. The paper notes "a real-life
/// workload would be some mix of workloads similar to the ones
/// considered".
pub struct Mixture {
    components: Vec<(f64, Box<dyn Workload + Send>)>,
    total_weight: f64,
    name: String,
}

impl Mixture {
    /// Creates a mixture from `(weight, workload)` components.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or any weight is not positive and
    /// finite.
    pub fn new(components: Vec<(f64, Box<dyn Workload + Send>)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        for (w, _) in &components {
            assert!(
                w.is_finite() && *w > 0.0,
                "mixture weights must be positive and finite, got {w}"
            );
        }
        let total_weight = components.iter().map(|(w, _)| w).sum();
        let name = format!(
            "mix({})",
            components
                .iter()
                .map(|(_, c)| c.name())
                .collect::<Vec<_>>()
                .join("+")
        );
        Self {
            components,
            total_weight,
            name,
        }
    }
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("name", &self.name)
            .field("total_weight", &self.total_weight)
            .finish_non_exhaustive()
    }
}

impl Workload for Mixture {
    fn choose(&mut self, now: f64, gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        let mut pick = rng.unit() * self.total_weight;
        let last = self.components.len() - 1;
        for (i, (w, c)) in self.components.iter_mut().enumerate() {
            if pick < *w || i == last {
                return c.choose(now, gateway, rng);
            }
            pick -= *w;
        }
        unreachable!("loop always returns on the last component")
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Switches from one workload to another at a fixed simulation time —
/// the demand-shift scenario used to measure protocol responsiveness
/// after the system has already adapted once.
pub struct DemandShift {
    before: Box<dyn Workload + Send>,
    after: Box<dyn Workload + Send>,
    at: f64,
    name: String,
}

impl DemandShift {
    /// Uses `before` until simulated time `at` (seconds), then `after`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not finite and non-negative.
    pub fn new(before: Box<dyn Workload + Send>, after: Box<dyn Workload + Send>, at: f64) -> Self {
        assert!(
            at.is_finite() && at >= 0.0,
            "shift time must be finite and non-negative, got {at}"
        );
        let name = format!("shift({}->{}@{at})", before.name(), after.name());
        Self {
            before,
            after,
            at,
            name,
        }
    }
}

impl std::fmt::Debug for DemandShift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DemandShift")
            .field("name", &self.name)
            .field("at", &self.at)
            .finish_non_exhaustive()
    }
}

impl Workload for DemandShift {
    fn choose(&mut self, now: f64, gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        if now < self.at {
            self.before.choose(now, gateway, rng)
        } else {
            self.after.choose(now, gateway, rng)
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_simnet::builders;

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    fn draw_many(w: &mut dyn Workload, n: usize, rng: &mut SimRng) -> Vec<ObjectId> {
        (0..n).map(|_| w.choose(0.0, NodeId::new(0), rng)).collect()
    }

    #[test]
    fn zipf_concentrates_on_low_ranks() {
        let mut rng = rng();
        let mut z = ZipfReeds::new(1000);
        let draws = draw_many(&mut z, 40_000, &mut rng);
        // For density ∝ 1/v, P(v ≤ 10) = ln 10 / ln 1000 = 1/3.
        let low = draws.iter().filter(|o| o.index() < 10).count() as f64;
        let frac = low / draws.len() as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.03, "P(rank<=10) = {frac}");
        // All draws in range.
        assert!(draws.iter().all(|o| o.index() < 1000));
    }

    #[test]
    fn zipf_rank_one_is_most_popular() {
        let mut rng = rng();
        let mut z = ZipfReeds::new(100);
        let draws = draw_many(&mut z, 50_000, &mut rng);
        let count = |r: usize| draws.iter().filter(|o| o.index() == r).count();
        assert!(count(0) > count(10));
        assert!(count(0) > count(50));
    }

    #[test]
    fn hot_sites_split_follows_round_robin_assignment() {
        let mut rng = rng();
        let hs = HotSites::new(100, 10, 0.1, 0.9, &mut rng);
        // 1 hot site out of 10 => 10 hot objects, all ≡ same node mod 10.
        assert_eq!(hs.hot_objects().len(), 10);
        let site = hs.hot_objects()[0].index() % 10;
        assert!(hs.hot_objects().iter().all(|o| o.index() % 10 == site));
    }

    #[test]
    fn hot_sites_draws_mostly_hot() {
        let mut rng = rng();
        let mut hs = HotSites::new(1000, 10, 0.1, 0.9, &mut rng);
        let hot: std::collections::HashSet<_> = hs.hot_objects().iter().copied().collect();
        let draws = draw_many(&mut hs, 20_000, &mut rng);
        let hot_frac = draws.iter().filter(|o| hot.contains(o)).count() as f64 / draws.len() as f64;
        assert!((hot_frac - 0.9).abs() < 0.02, "hot fraction {hot_frac}");
    }

    #[test]
    fn hot_sites_with_empty_hot_bucket_serves_cold() {
        // 2 objects over 53 sites: the randomly drawn hot sites may miss
        // every object-bearing site; draws must fall back to cold.
        for seed in 0..50 {
            let mut rng = SimRng::seed_from(seed);
            let mut hs = HotSites::new(2, 53, 0.1, 0.9, &mut rng);
            for _ in 0..20 {
                let o = hs.choose(0.0, NodeId::new(0), &mut rng);
                assert!(o.index() < 2);
            }
        }
    }

    #[test]
    fn hot_pages_ratio_and_draw_probability() {
        let mut rng = rng();
        let mut hp = HotPages::new(1000, 0.1, 0.9, &mut rng);
        assert_eq!(hp.hot_objects().len(), 100);
        let hot: std::collections::HashSet<_> = hp.hot_objects().iter().copied().collect();
        let draws = draw_many(&mut hp, 20_000, &mut rng);
        let hot_frac = draws.iter().filter(|o| hot.contains(o)).count() as f64 / draws.len() as f64;
        assert!((hot_frac - 0.9).abs() < 0.02, "hot fraction {hot_frac}");
    }

    #[test]
    fn regional_prefers_own_slice() {
        let topo = builders::uunet();
        let mut rng = rng();
        let mut w = Regional::new(10_000, &topo, 0.01, 0.9);
        // A Europe gateway should draw from Europe's slice ~90% of the
        // time (plus ~0.1% incidental uniform hits).
        let europe_gateway = topo
            .nodes()
            .find(|&n| topo.region(n) == Region::Europe)
            .unwrap();
        let (start, len) = w.preferred_slice(Region::Europe);
        assert_eq!(len, 100);
        let draws: Vec<ObjectId> = (0..20_000)
            .map(|_| w.choose(0.0, europe_gateway, &mut rng))
            .collect();
        let in_slice = draws
            .iter()
            .filter(|o| (o.index() as u32) >= start && (o.index() as u32) < start + len)
            .count() as f64
            / draws.len() as f64;
        assert!(
            (in_slice - 0.9).abs() < 0.02,
            "in-slice fraction {in_slice}"
        );
    }

    #[test]
    fn regional_slices_disjoint() {
        let topo = builders::uunet();
        let w = Regional::new(10_000, &topo, 0.01, 0.9);
        let mut seen = std::collections::HashSet::new();
        for r in Region::ALL {
            let (start, len) = w.preferred_slice(r);
            for o in start..start + len {
                assert!(seen.insert(o), "object {o} in two slices");
            }
        }
    }

    #[test]
    fn uniform_covers_space() {
        let mut rng = rng();
        let mut u = Uniform::new(50);
        let draws = draw_many(&mut u, 5_000, &mut rng);
        let distinct: std::collections::HashSet<_> = draws.iter().collect();
        assert_eq!(distinct.len(), 50);
    }

    #[test]
    fn mixture_blends_components() {
        let mut rng = rng();
        // 3:1 blend of "always object 0" (uniform over 1) and uniform
        // over 100.
        let m_components: Vec<(f64, Box<dyn Workload + Send>)> = vec![
            (3.0, Box::new(Uniform::new(1))),
            (1.0, Box::new(Uniform::new(100))),
        ];
        let mut m = Mixture::new(m_components);
        let draws = draw_many(&mut m, 20_000, &mut rng);
        let zeros = draws.iter().filter(|o| o.index() == 0).count() as f64;
        // 3/4 from component 1 plus 1/400 from component 2.
        let frac = zeros / draws.len() as f64;
        assert!((frac - 0.7525).abs() < 0.02, "zero fraction {frac}");
        assert!(m.name().contains("mix"));
    }

    #[test]
    fn demand_shift_switches_at_time() {
        let mut rng = rng();
        let mut w = DemandShift::new(
            Box::new(Uniform::new(1)),   // always object 0
            Box::new(ZipfReeds::new(2)), // objects {0, 1}
            100.0,
        );
        for _ in 0..100 {
            assert_eq!(w.choose(99.9, NodeId::new(0), &mut rng).index(), 0);
        }
        let after: Vec<_> = (0..2000)
            .map(|_| w.choose(100.0, NodeId::new(0), &mut rng))
            .collect();
        assert!(
            after.iter().any(|o| o.index() == 1),
            "shifted workload active"
        );
        assert!(w.name().contains("shift"));
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_zipf_rejected() {
        let _ = ZipfReeds::new(0);
    }

    #[test]
    #[should_panic(expected = "hot fraction")]
    fn bad_hot_fraction_rejected() {
        let mut rng = rng();
        let _ = HotPages::new(10, 1.5, 0.9, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mixture_rejected() {
        let _ = Mixture::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "too small for four preferred slices")]
    fn tiny_regional_space_rejected() {
        let topo = builders::uunet();
        let _ = Regional::new(3, &topo, 0.25, 0.9);
    }
}
