//! Synthetic workload generators for the RaDaR evaluation (paper §6.1).
//!
//! The paper drives its simulation with four object-popularity models,
//! all reproduced here behind the [`Workload`] trait:
//!
//! * [`ZipfReeds`] — Zipf's law via Jim Reeds' closed-form approximation
//!   (`⌊e^{u·ln n}⌉`), "within 15% of the actual Zipf's law";
//! * [`HotSites`] — 10% of *sites* are hot and draw 90% of requests,
//!   modeling whole Web sites varying in popularity (requests address the
//!   objects initially assigned to those sites);
//! * [`HotPages`] — 10% of *pages* are hot and draw 90% of requests;
//! * [`Regional`] — each of the four backbone regions prefers its own
//!   contiguous 1% slice of the object space with probability 90%.
//!
//! Plus the compositors the evaluation harness needs: [`Uniform`],
//! [`Mixture`] (probabilistic blend), and [`DemandShift`] (switch
//! workloads at a point in simulated time, for responsiveness
//! experiments).
//!
//! [`ArrivalProcess`] models when requests enter a gateway: the paper
//! uses constant-rate arrivals ("each backbone node generates client
//! requests at a constant rate"); a Poisson option is provided for
//! robustness studies.
//!
//! # Examples
//!
//! ```
//! use radar_simcore::SimRng;
//! use radar_simnet::NodeId;
//! use radar_workload::{Workload, ZipfReeds};
//!
//! let mut rng = SimRng::seed_from(1);
//! let mut zipf = ZipfReeds::new(10_000);
//! let object = zipf.choose(0.0, NodeId::new(3), &mut rng);
//! assert!(object.index() < 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod arrival;
mod popularity;
mod weighted;

pub use arrival::ArrivalProcess;
pub use popularity::{DemandShift, HotPages, HotSites, Mixture, Regional, Uniform, ZipfReeds};
pub use weighted::{PerGatewayWeighted, Weighted, WeightedError};

use radar_core::ObjectId;
use radar_simcore::SimRng;
use radar_simnet::NodeId;

/// A source of object-popularity decisions: given the current time and
/// the gateway a request enters through, pick the requested object.
///
/// Implementations must be deterministic functions of `(now, gateway)`
/// and the bits drawn from `rng`, so experiments replay exactly from a
/// seed.
pub trait Workload {
    /// Chooses the object requested by a client entering at `gateway` at
    /// simulation time `now` (seconds).
    fn choose(&mut self, now: f64, gateway: NodeId, rng: &mut SimRng) -> ObjectId;

    /// A short human-readable name for reports ("zipf", "hot-sites", …).
    fn name(&self) -> &str;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn choose(&mut self, now: f64, gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        (**self).choose(now, gateway, rng)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}
