//! Request arrival processes.

use radar_simcore::SimRng;

/// When requests enter a gateway.
///
/// The paper's simulation uses constant-rate arrivals ("each backbone
/// node generates client requests at a constant rate", 40 req/s per
/// node). [`ArrivalProcess::Deterministic`] reproduces that;
/// [`ArrivalProcess::Poisson`] is provided for robustness/ablation
/// experiments.
///
/// # Examples
///
/// ```
/// use radar_simcore::SimRng;
/// use radar_workload::ArrivalProcess;
///
/// let mut rng = SimRng::seed_from(7);
/// let det = ArrivalProcess::Deterministic { rate: 40.0 };
/// assert_eq!(det.next_interarrival(&mut rng), 0.025);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals at `rate` requests/second.
    Deterministic {
        /// Requests per second.
        rate: f64,
    },
    /// Poisson arrivals (exponential inter-arrival times) at `rate`
    /// requests/second.
    Poisson {
        /// Requests per second (mean).
        rate: f64,
    },
}

impl ArrivalProcess {
    /// The mean arrival rate in requests/second.
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Deterministic { rate } | ArrivalProcess::Poisson { rate } => rate,
        }
    }

    /// Draws the next inter-arrival gap in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the configured rate is not strictly positive and finite.
    pub fn next_interarrival(&self, rng: &mut SimRng) -> f64 {
        let rate = self.rate();
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive and finite, got {rate}"
        );
        match self {
            ArrivalProcess::Deterministic { .. } => 1.0 / rate,
            ArrivalProcess::Poisson { .. } => rng.exponential(rate),
        }
    }

    /// A deterministic per-source phase offset in `[0, 1/rate)`, used to
    /// de-synchronize the constant-rate sources of different gateways
    /// (the paper's nodes are not phase-locked).
    pub fn phase_offset(&self, source_index: usize, num_sources: usize) -> f64 {
        let period = 1.0 / self.rate();
        if num_sources == 0 {
            return 0.0;
        }
        period * (source_index % num_sources) as f64 / num_sources as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_interarrival_is_period() {
        let mut rng = SimRng::seed_from(1);
        let a = ArrivalProcess::Deterministic { rate: 50.0 };
        for _ in 0..10 {
            assert_eq!(a.next_interarrival(&mut rng), 0.02);
        }
        assert_eq!(a.rate(), 50.0);
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let mut rng = SimRng::seed_from(2);
        let a = ArrivalProcess::Poisson { rate: 10.0 };
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| a.next_interarrival(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.1).abs() < 0.005, "mean inter-arrival {mean}");
    }

    #[test]
    fn phase_offsets_spread_within_period() {
        let a = ArrivalProcess::Deterministic { rate: 40.0 };
        let offsets: Vec<f64> = (0..8).map(|i| a.phase_offset(i, 8)).collect();
        for &o in &offsets {
            assert!((0.0..0.025).contains(&o));
        }
        let distinct: std::collections::BTreeSet<u64> =
            offsets.iter().map(|o| (o * 1e9) as u64).collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_rejected() {
        let mut rng = SimRng::seed_from(1);
        let _ = ArrivalProcess::Deterministic { rate: 0.0 }.next_interarrival(&mut rng);
    }
}
