//! Property tests of the workload generators: every generator must stay
//! within the object space, honor its declared mixture proportions, and
//! be a pure function of its seed.

use proptest::prelude::*;
use radar_simcore::SimRng;
use radar_simnet::{builders, NodeId};
use radar_workload::{
    ArrivalProcess, DemandShift, HotPages, HotSites, Mixture, Regional, Uniform, Weighted,
    Workload, ZipfReeds,
};

fn draws(w: &mut dyn Workload, seed: u64, n: usize, gateway: u16) -> Vec<usize> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| w.choose(i as f64, NodeId::new(gateway), &mut rng).index())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_generators_stay_in_range(
        objects in 4u32..500,
        seed in any::<u64>(),
        gateway in 0u16..53,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let topo = builders::uunet();
        let mut all: Vec<Box<dyn Workload + Send>> = vec![
            Box::new(ZipfReeds::new(objects)),
            Box::new(Uniform::new(objects)),
            Box::new(HotSites::new(objects, 53, 0.1, 0.9, &mut rng)),
            Box::new(HotPages::new(objects, 0.25, 0.9, &mut rng)),
            Box::new(Weighted::new((0..objects).map(|i| (i + 1) as f64).collect()).unwrap()),
        ];
        if objects >= 4 {
            all.push(Box::new(Regional::new(objects, &topo, 0.2, 0.9)));
        }
        for w in &mut all {
            for idx in draws(w.as_mut(), seed, 300, gateway) {
                prop_assert!(idx < objects as usize, "{} out of range", w.name());
            }
        }
    }

    #[test]
    fn generators_are_seed_deterministic(
        objects in 4u32..200,
        seed in any::<u64>(),
    ) {
        let mut a = ZipfReeds::new(objects);
        let mut b = ZipfReeds::new(objects);
        prop_assert_eq!(draws(&mut a, seed, 200, 0), draws(&mut b, seed, 200, 0));
    }

    #[test]
    fn mixture_respects_weights(
        w1 in 1u32..10,
        w2 in 1u32..10,
    ) {
        // Component 1 always draws object 0; component 2 always draws
        // object 1 (uniform over a shifted singleton via weights).
        let only = |i: u32, objects: u32| -> Box<dyn Workload + Send> {
            let mut weights = vec![0.0; objects as usize];
            weights[i as usize] = 1.0;
            Box::new(Weighted::new(weights).unwrap())
        };
        let mut m = Mixture::new(vec![
            (w1 as f64, only(0, 2)),
            (w2 as f64, only(1, 2)),
        ]);
        let out = draws(&mut m, 9, 4000, 0);
        let zeros = out.iter().filter(|&&i| i == 0).count() as f64;
        let expect = w1 as f64 / (w1 + w2) as f64;
        prop_assert!(
            (zeros / 4000.0 - expect).abs() < 0.05,
            "share {} vs expected {expect}",
            zeros / 4000.0
        );
    }

    #[test]
    fn demand_shift_boundary_is_exact(at in 1.0f64..1000.0) {
        let mut w = DemandShift::new(
            Box::new(Uniform::new(1)),
            Box::new(Weighted::new(vec![0.0, 1.0]).unwrap()),
            at,
        );
        let mut rng = SimRng::seed_from(3);
        prop_assert_eq!(w.choose(at - 1e-9, NodeId::new(0), &mut rng).index(), 0);
        prop_assert_eq!(w.choose(at, NodeId::new(0), &mut rng).index(), 1);
    }

    #[test]
    fn deterministic_arrivals_sum_to_rate(rate in 0.5f64..500.0) {
        let mut rng = SimRng::seed_from(1);
        let a = ArrivalProcess::Deterministic { rate };
        let total: f64 = (0..1000).map(|_| a.next_interarrival(&mut rng)).sum();
        // 1000 gaps at rate r span 1000/r seconds exactly.
        prop_assert!((total - 1000.0 / rate).abs() < 1e-6);
    }
}
