//! Property tests of the workload generators: every generator must stay
//! within the object space, honor its declared mixture proportions, and
//! be a pure function of its seed.
//!
//! Each property is exercised over a deterministic sweep of seeded
//! cases (the seeds feed [`SimRng`], so a failure reproduces exactly).

use radar_simcore::SimRng;
use radar_simnet::{builders, NodeId};
use radar_workload::{
    ArrivalProcess, DemandShift, HotPages, HotSites, Mixture, Regional, Uniform, Weighted,
    Workload, ZipfReeds,
};

fn draws(w: &mut dyn Workload, seed: u64, n: usize, gateway: u16) -> Vec<usize> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| w.choose(i as f64, NodeId::new(gateway), &mut rng).index())
        .collect()
}

#[test]
fn all_generators_stay_in_range() {
    let topo = builders::uunet();
    for case in 0..64u64 {
        let mut meta = SimRng::seed_from(0xA11_C0DE ^ case);
        let objects = 4 + meta.index(496) as u32;
        let seed = meta.next_u64();
        let gateway = meta.index(53) as u16;
        let mut rng = SimRng::seed_from(seed);
        let mut all: Vec<Box<dyn Workload + Send>> = vec![
            Box::new(ZipfReeds::new(objects)),
            Box::new(Uniform::new(objects)),
            Box::new(HotSites::new(objects, 53, 0.1, 0.9, &mut rng)),
            Box::new(HotPages::new(objects, 0.25, 0.9, &mut rng)),
            Box::new(Weighted::new((0..objects).map(|i| (i + 1) as f64).collect()).unwrap()),
            Box::new(Regional::new(objects, &topo, 0.2, 0.9)),
        ];
        for w in &mut all {
            for idx in draws(w.as_mut(), seed, 300, gateway) {
                assert!(
                    idx < objects as usize,
                    "{} out of range (case {case}, {objects} objects)",
                    w.name()
                );
            }
        }
    }
}

#[test]
fn generators_are_seed_deterministic() {
    for case in 0..32u64 {
        let mut meta = SimRng::seed_from(0xDE7E_2101 ^ case);
        let objects = 4 + meta.index(196) as u32;
        let seed = meta.next_u64();
        let mut a = ZipfReeds::new(objects);
        let mut b = ZipfReeds::new(objects);
        assert_eq!(draws(&mut a, seed, 200, 0), draws(&mut b, seed, 200, 0));
    }
}

#[test]
fn mixture_respects_weights() {
    // Component 1 always draws object 0; component 2 always draws
    // object 1 (uniform over a shifted singleton via weights).
    let only = |i: u32, objects: u32| -> Box<dyn Workload + Send> {
        let mut weights = vec![0.0; objects as usize];
        weights[i as usize] = 1.0;
        Box::new(Weighted::new(weights).unwrap())
    };
    for (w1, w2) in [(1u32, 1u32), (1, 9), (9, 1), (2, 5), (7, 3), (4, 4)] {
        let mut m = Mixture::new(vec![(w1 as f64, only(0, 2)), (w2 as f64, only(1, 2))]);
        let out = draws(&mut m, 9, 4000, 0);
        let zeros = out.iter().filter(|&&i| i == 0).count() as f64;
        let expect = w1 as f64 / (w1 + w2) as f64;
        assert!(
            (zeros / 4000.0 - expect).abs() < 0.05,
            "share {} vs expected {expect} for weights {w1}:{w2}",
            zeros / 4000.0
        );
    }
}

#[test]
fn demand_shift_boundary_is_exact() {
    let mut meta = SimRng::seed_from(0x5117F);
    let ats = [1.0, 2.5, 100.0, 999.0]
        .into_iter()
        .chain((0..12).map(|_| 1.0 + 999.0 * meta.unit()));
    for at in ats {
        let mut w = DemandShift::new(
            Box::new(Uniform::new(1)),
            Box::new(Weighted::new(vec![0.0, 1.0]).unwrap()),
            at,
        );
        let mut rng = SimRng::seed_from(3);
        assert_eq!(w.choose(at - 1e-9, NodeId::new(0), &mut rng).index(), 0);
        assert_eq!(w.choose(at, NodeId::new(0), &mut rng).index(), 1);
    }
}

#[test]
fn deterministic_arrivals_sum_to_rate() {
    let mut meta = SimRng::seed_from(0x0A22_17E5);
    let rates = [0.5, 1.0, 7.25, 40.0, 499.5]
        .into_iter()
        .chain((0..12).map(|_| 0.5 + 499.5 * meta.unit()));
    for rate in rates {
        let mut rng = SimRng::seed_from(1);
        let a = ArrivalProcess::Deterministic { rate };
        let total: f64 = (0..1000).map(|_| a.next_interarrival(&mut rng)).sum();
        // 1000 gaps at rate r span 1000/r seconds exactly.
        assert!(
            (total - 1000.0 / rate).abs() < 1e-6,
            "gap sum {total} at rate {rate}"
        );
    }
}
