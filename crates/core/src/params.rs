//! Protocol tuning parameters (paper Table 1 and §4.2).

use std::fmt;

/// All tunable parameters of the protocol, with the constraints the paper
/// derives for stability.
///
/// | Field | Paper symbol | Paper value |
/// |---|---|---|
/// | `low_watermark` | lw | 80 req/s (40 in the high-load runs) |
/// | `high_watermark` | hw | 90 req/s (50 in the high-load runs) |
/// | `deletion_threshold` | u | 0.03 req/s |
/// | `replication_threshold` | m | 6u = 0.18 req/s |
/// | `migration_ratio` | MIGR_RATIO | 0.6 |
/// | `replication_ratio` | REPL_RATIO | 1/6 |
/// | `distribution_constant` | the "2" in Fig. 2 | 2.0 |
/// | `placement_period` | inter-placement time | 100 s |
/// | `measurement_interval` | load measurement interval | 20 s |
///
/// Constraints enforced by [`ParamsBuilder::build`]:
///
/// * `4u < m` — Theorem 5's stability condition: replicas created by a
///   replication can never immediately fall below the deletion threshold,
///   so replicate→delete cycles cannot occur;
/// * `MIGR_RATIO > 0.5` — prevents two nodes from each seeing a majority
///   and ping-ponging an object between them;
/// * `REPL_RATIO < MIGR_RATIO` — "for replication to ever take place";
/// * `lw < hw`, and all rates/periods positive.
///
/// # Examples
///
/// ```
/// use radar_core::Params;
/// let p = Params::paper();
/// assert_eq!(p.high_watermark, 90.0);
/// assert!(4.0 * p.deletion_threshold < p.replication_threshold);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Low load watermark `lw` (requests/second).
    pub low_watermark: f64,
    /// High load watermark `hw` (requests/second).
    pub high_watermark: f64,
    /// Deletion threshold `u` (requests/second per affinity unit).
    pub deletion_threshold: f64,
    /// Replication threshold `m` (requests/second per affinity unit).
    pub replication_threshold: f64,
    /// `MIGR_RATIO`: the fraction of an object's requests a candidate must
    /// appear on (as a preference-path node) to attract a geo-migration.
    pub migration_ratio: f64,
    /// `REPL_RATIO`: the fraction required to attract a geo-replication.
    pub replication_ratio: f64,
    /// The constant of the request distribution algorithm (Fig. 2): the
    /// closest replica keeps receiving requests until its unit request
    /// count exceeds `constant ×` the minimum unit request count.
    pub distribution_constant: f64,
    /// Seconds between placement-decision runs on each host.
    pub placement_period: f64,
    /// Seconds per load measurement interval (§2.1).
    pub measurement_interval: f64,
}

impl Params {
    /// The paper's Table 1 configuration (normal-load watermarks
    /// hw=90 / lw=80).
    pub fn paper() -> Self {
        ParamsBuilder::new()
            .build()
            .expect("paper parameters satisfy all constraints")
    }

    /// The paper's high-load configuration (Fig. 9): hw=50 / lw=40, all
    /// other parameters as in [`Params::paper`].
    pub fn paper_high_load() -> Self {
        ParamsBuilder::new()
            .watermarks(40.0, 50.0)
            .build()
            .expect("paper high-load parameters satisfy all constraints")
    }

    /// Starts building a custom parameter set (defaults = paper values).
    pub fn builder() -> ParamsBuilder {
        ParamsBuilder::new()
    }

    /// Deletion threshold expressed as a request *count* per affinity unit
    /// per placement period (`u × placement_period`).
    pub fn deletion_count_threshold(&self) -> f64 {
        self.deletion_threshold * self.placement_period
    }

    /// Replication threshold expressed as a request count per affinity
    /// unit per placement period (`m × placement_period`).
    pub fn replication_count_threshold(&self) -> f64 {
        self.replication_threshold * self.placement_period
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::paper()
    }
}

/// Why a parameter set was rejected. See [`Params`] for the constraint
/// rationale.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// A field that must be strictly positive and finite was not.
    NonPositive {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `lw ≥ hw`.
    WatermarksInverted {
        /// Low watermark.
        low: f64,
        /// High watermark.
        high: f64,
    },
    /// `4u ≥ m`, violating Theorem 5's stability condition.
    ThresholdsUnstable {
        /// Deletion threshold `u`.
        deletion: f64,
        /// Replication threshold `m`.
        replication: f64,
    },
    /// `MIGR_RATIO ≤ 0.5`, allowing migration ping-pong.
    MigrationRatioTooLow(f64),
    /// `REPL_RATIO ≥ MIGR_RATIO`, so replication could never be chosen.
    ReplicationRatioTooHigh {
        /// Replication ratio.
        replication: f64,
        /// Migration ratio.
        migration: f64,
    },
    /// Distribution constant must exceed 1 (at 1 the closest replica
    /// never gets preference).
    DistributionConstantTooLow(f64),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::NonPositive { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
            ParamsError::WatermarksInverted { low, high } => {
                write!(f, "low watermark {low} must be below high watermark {high}")
            }
            ParamsError::ThresholdsUnstable {
                deletion,
                replication,
            } => write!(
                f,
                "stability requires 4·u < m (theorem 5), got u={deletion}, m={replication}"
            ),
            ParamsError::MigrationRatioTooLow(v) => {
                write!(
                    f,
                    "migration ratio must exceed 0.5 to prevent ping-pong, got {v}"
                )
            }
            ParamsError::ReplicationRatioTooHigh {
                replication,
                migration,
            } => write!(
                f,
                "replication ratio {replication} must be below migration ratio {migration}"
            ),
            ParamsError::DistributionConstantTooLow(v) => {
                write!(f, "distribution constant must exceed 1, got {v}")
            }
        }
    }
}

impl std::error::Error for ParamsError {}

/// Builder for [`Params`]; all setters default to the paper's Table 1
/// values.
///
/// # Examples
///
/// ```
/// use radar_core::Params;
/// let p = Params::builder()
///     .watermarks(40.0, 50.0)
///     .thresholds(0.03, 0.18)
///     .build()?;
/// assert_eq!(p.high_watermark, 50.0);
/// # Ok::<(), radar_core::ParamsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParamsBuilder {
    params: Params,
}

impl ParamsBuilder {
    /// Creates a builder initialized with the paper's values.
    pub fn new() -> Self {
        Self {
            params: Params {
                low_watermark: 80.0,
                high_watermark: 90.0,
                deletion_threshold: 0.03,
                replication_threshold: 0.18,
                migration_ratio: 0.6,
                replication_ratio: 1.0 / 6.0,
                distribution_constant: 2.0,
                placement_period: 100.0,
                measurement_interval: 20.0,
            },
        }
    }

    /// Sets the low and high watermarks (requests/second).
    pub fn watermarks(mut self, low: f64, high: f64) -> Self {
        self.params.low_watermark = low;
        self.params.high_watermark = high;
        self
    }

    /// Sets the deletion threshold `u` and replication threshold `m`
    /// (requests/second per affinity unit).
    pub fn thresholds(mut self, deletion: f64, replication: f64) -> Self {
        self.params.deletion_threshold = deletion;
        self.params.replication_threshold = replication;
        self
    }

    /// Sets `MIGR_RATIO` and `REPL_RATIO`.
    pub fn ratios(mut self, migration: f64, replication: f64) -> Self {
        self.params.migration_ratio = migration;
        self.params.replication_ratio = replication;
        self
    }

    /// Sets the request-distribution constant (the "2" in Fig. 2).
    pub fn distribution_constant(mut self, c: f64) -> Self {
        self.params.distribution_constant = c;
        self
    }

    /// Sets the placement period in seconds.
    pub fn placement_period(mut self, secs: f64) -> Self {
        self.params.placement_period = secs;
        self
    }

    /// Sets the load measurement interval in seconds.
    pub fn measurement_interval(mut self, secs: f64) -> Self {
        self.params.measurement_interval = secs;
        self
    }

    /// Validates the constraints and produces the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] describing the first violated constraint.
    pub fn build(self) -> Result<Params, ParamsError> {
        let p = self.params;
        let positives = [
            ("low_watermark", p.low_watermark),
            ("high_watermark", p.high_watermark),
            ("deletion_threshold", p.deletion_threshold),
            ("replication_threshold", p.replication_threshold),
            ("migration_ratio", p.migration_ratio),
            ("replication_ratio", p.replication_ratio),
            ("distribution_constant", p.distribution_constant),
            ("placement_period", p.placement_period),
            ("measurement_interval", p.measurement_interval),
        ];
        for (field, value) in positives {
            if !(value.is_finite() && value > 0.0) {
                return Err(ParamsError::NonPositive { field, value });
            }
        }
        if p.low_watermark >= p.high_watermark {
            return Err(ParamsError::WatermarksInverted {
                low: p.low_watermark,
                high: p.high_watermark,
            });
        }
        if 4.0 * p.deletion_threshold >= p.replication_threshold {
            return Err(ParamsError::ThresholdsUnstable {
                deletion: p.deletion_threshold,
                replication: p.replication_threshold,
            });
        }
        if p.migration_ratio <= 0.5 {
            return Err(ParamsError::MigrationRatioTooLow(p.migration_ratio));
        }
        if p.replication_ratio >= p.migration_ratio {
            return Err(ParamsError::ReplicationRatioTooHigh {
                replication: p.replication_ratio,
                migration: p.migration_ratio,
            });
        }
        if p.distribution_constant <= 1.0 {
            return Err(ParamsError::DistributionConstantTooLow(
                p.distribution_constant,
            ));
        }
        Ok(p)
    }
}

impl Default for ParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_match_table_1() {
        let p = Params::paper();
        assert_eq!(p.low_watermark, 80.0);
        assert_eq!(p.high_watermark, 90.0);
        assert_eq!(p.deletion_threshold, 0.03);
        assert_eq!(p.replication_threshold, 0.18);
        assert_eq!(p.migration_ratio, 0.6);
        assert!((p.replication_ratio - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(p.distribution_constant, 2.0);
        assert_eq!(p.placement_period, 100.0);
        assert_eq!(p.measurement_interval, 20.0);
    }

    #[test]
    fn high_load_params_lower_watermarks_only() {
        let p = Params::paper_high_load();
        assert_eq!(p.low_watermark, 40.0);
        assert_eq!(p.high_watermark, 50.0);
        assert_eq!(p.deletion_threshold, Params::paper().deletion_threshold);
    }

    #[test]
    fn count_thresholds_scale_with_period() {
        let p = Params::paper();
        assert!((p.deletion_count_threshold() - 3.0).abs() < 1e-9);
        assert!((p.replication_count_threshold() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(Params::default(), Params::paper());
    }

    #[test]
    fn inverted_watermarks_rejected() {
        let err = Params::builder()
            .watermarks(90.0, 80.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ParamsError::WatermarksInverted { .. }));
    }

    #[test]
    fn theorem5_constraint_enforced() {
        let err = Params::builder().thresholds(0.05, 0.2).build().unwrap_err();
        assert!(matches!(err, ParamsError::ThresholdsUnstable { .. }));
        // Exactly 4u == m is also rejected (strict inequality).
        let err = Params::builder()
            .thresholds(0.05, 0.05 * 4.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ParamsError::ThresholdsUnstable { .. }));
    }

    #[test]
    fn migration_ratio_must_exceed_half() {
        let err = Params::builder().ratios(0.5, 0.1).build().unwrap_err();
        assert!(matches!(err, ParamsError::MigrationRatioTooLow(_)));
    }

    #[test]
    fn replication_ratio_below_migration_ratio() {
        let err = Params::builder().ratios(0.6, 0.7).build().unwrap_err();
        assert!(matches!(err, ParamsError::ReplicationRatioTooHigh { .. }));
    }

    #[test]
    fn distribution_constant_above_one() {
        let err = Params::builder()
            .distribution_constant(1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ParamsError::DistributionConstantTooLow(_)));
    }

    #[test]
    fn non_positive_fields_rejected() {
        let err = Params::builder().placement_period(0.0).build().unwrap_err();
        assert!(matches!(
            err,
            ParamsError::NonPositive {
                field: "placement_period",
                ..
            }
        ));
        let err = Params::builder()
            .measurement_interval(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(err, ParamsError::NonPositive { .. }));
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            Params::builder()
                .watermarks(90.0, 80.0)
                .build()
                .unwrap_err(),
            Params::builder().thresholds(1.0, 1.0).build().unwrap_err(),
            Params::builder().ratios(0.4, 0.1).build().unwrap_err(),
            Params::builder()
                .distribution_constant(0.5)
                .build()
                .unwrap_err(),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
