//! The replica placement algorithm (paper §4, Figs. 3–5).
//!
//! Every host periodically runs [`run_placement`] over its objects:
//!
//! 1. **Deletion** — an affinity unit whose unit access rate fell below
//!    the deletion threshold `u` is dropped (`ReduceAffinity`, with the
//!    redirector protecting the last replica of each object).
//! 2. **Geo-migration** — if some other node lies on more than
//!    `MIGR_RATIO` of the object's preference paths, the host offers the
//!    object to the farthest such candidate (`CreateObj("MIGRATE")`).
//! 3. **Geo-replication** — a hot object (unit access rate above the
//!    replication threshold `m`) not just migrated is offered to the
//!    farthest candidate appearing on more than `REPL_RATIO` of paths.
//! 4. **Offloading** (Fig. 5) — while the host's load exceeds the high
//!    watermark (hysteresis down to the low watermark), it sheds objects
//!    in bulk to an under-loaded recipient, steering by the Theorem 1–4
//!    bounds instead of waiting for fresh measurements. (See
//!    [`run_placement`] for how this reads Fig. 3's offload guard.)
//!
//! The algorithms interact with the rest of the platform (candidate
//! hosts, the object's redirector, load reports) exclusively through
//! [`PlacementEnv`], so they run identically inside the discrete-event
//! simulator and in direct unit tests.
//!
//! ## A note on the published pseudocode
//!
//! Fig. 3's deletion test is garbled in the published text
//! (`cnt(s,x_s)/ctf(s) < u aff(x_s)`); we implement the prose semantics
//! of §4.2.1: *drop one affinity unit when the unit access count
//! `cnt(s,x_s)/aff(x_s)`, converted to a rate over the placement period,
//! is below `u`*. Migration is attempted for objects at or above `u`
//! (prose: "it can only migrate if its count is between u and m, and it
//! can either migrate or be replicated if its count is above m").

use radar_simnet::NodeId;

use crate::{bounds, CreateObjRequest, CreateObjResponse, HostState, ObjectId, RelocationKind};

/// The platform services the placement algorithm needs. Implemented by
/// the simulator (`radar-sim`) over real hosts/redirectors, and by mock
/// environments in tests.
pub trait PlacementEnv {
    /// Delivers a `CreateObj` request to candidate `target` and returns
    /// its decision (paper Fig. 4). On acceptance the implementation is
    /// responsible for the data transfer (if a new copy was created) and
    /// for notifying the object's redirector *after* the copy exists.
    fn create_obj(&mut self, target: NodeId, req: CreateObjRequest) -> CreateObjResponse;

    /// Asks the object's redirector to approve dropping `host`'s replica.
    /// Must refuse for the last replica. On approval the redirector
    /// removes the replica from its set *before* this returns, so the
    /// subset invariant holds when the host physically deletes it.
    fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool;

    /// Notifies the object's redirector that `host`'s replica now has
    /// affinity `aff` (≥ 1).
    fn notify_affinity(&mut self, object: ObjectId, host: NodeId, aff: u32);

    /// Finds an offload recipient for `requester`: a host whose load is
    /// below the low watermark, returned together with that load
    /// (the paper assumes "hosts periodically exchange load reports").
    /// Must never return `requester` itself.
    fn find_offload_recipient(&mut self, requester: NodeId) -> Option<(NodeId, f64)>;

    /// Hop distance between two nodes (from the routing database).
    fn distance(&self, a: NodeId, b: NodeId) -> u32;

    /// Whether `object` may gain another replica — `false` when a §5
    /// consistency cap (non-commuting updates) has been reached.
    fn may_replicate(&self, object: ObjectId) -> bool;

    /// Number of distinct hosts currently holding a replica of `object`,
    /// from the object's redirector. Placement policies that steer
    /// toward a replica-count target (availability-aware placement)
    /// read it; the paper's own algorithm never does.
    fn replica_count(&self, object: ObjectId) -> usize;
}

/// Reusable working memory for [`run_placement_into`]: every buffer the
/// placement algorithms need, owned by the caller so a steady-state
/// epoch performs no heap allocation once the buffers reached their
/// high-water capacity.
#[derive(Debug, Clone, Default)]
pub struct PlacementScratch {
    /// Snapshot of the host's object ids (the host table is mutated
    /// while iterating).
    object_ids: Vec<ObjectId>,
    /// Qualified-candidate buffer for the geo phases:
    /// `(hop distance from the deciding host, candidate, share)`.
    candidates: Vec<(u32, NodeId, f64)>,
    /// Offload ordering buffer `(object, foreign share)`.
    offload_objects: Vec<(ObjectId, f64)>,
    /// Objects the geo phase relocated this run (sorted; the offloader
    /// must not re-move them).
    moved: Vec<ObjectId>,
}

impl PlacementScratch {
    /// Borrows the object-id snapshot buffer, for custom
    /// `PlacementPolicy` implementations that want the same
    /// allocation-free epochs as [`run_placement_into`].
    pub fn object_ids_mut(&mut self) -> &mut Vec<ObjectId> {
        &mut self.object_ids
    }

    /// Borrows the `(object, key)` ordering buffer (the offloader's
    /// foreign-share list), for custom policies' own orderings.
    pub fn keyed_objects_mut(&mut self) -> &mut Vec<(ObjectId, f64)> {
        &mut self.offload_objects
    }
}

/// What a placement run did — returned by [`run_placement`] for metrics
/// and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementOutcome {
    /// Whether the host was in offloading mode during this run.
    pub offloading_mode: bool,
    /// Objects whose affinity was reduced without removing the replica.
    pub affinity_reductions: Vec<ObjectId>,
    /// Objects whose replica was dropped entirely (redirector-approved).
    pub drops: Vec<ObjectId>,
    /// Proximity-driven migrations `(object, recipient)`.
    pub geo_migrations: Vec<(ObjectId, NodeId)>,
    /// Proximity-driven replications `(object, recipient)`.
    pub geo_replications: Vec<(ObjectId, NodeId)>,
    /// Load-driven migrations performed by the offloader.
    pub offload_migrations: Vec<(ObjectId, NodeId)>,
    /// Load-driven replications performed by the offloader.
    pub offload_replications: Vec<(ObjectId, NodeId)>,
    /// Every action taken, in order, with the threshold-test values that
    /// triggered it — the flight recorder's placement feed.
    pub decisions: Vec<PlacementDecision>,
}

/// One action a placement run took, for [`PlacementOutcome::decisions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementAction {
    /// Deletion test fired; the redirector approved dropping the replica.
    Drop,
    /// Deletion test fired; one affinity unit was shed, replica remains.
    AffinityReduce,
    /// Deletion test fired; the redirector refused (last replica).
    DropRefused,
    /// Geo-migration toward a preference-path-qualified candidate.
    GeoMigrate,
    /// Geo-replication of a hot object toward a qualified candidate.
    GeoReplicate,
    /// Load-driven migration by the offloader (Fig. 5).
    LoadMigrate,
    /// Load-driven replication of a hot object by the offloader.
    LoadReplicate,
}

impl PlacementAction {
    /// Stable string tag used in event logs (`drop`, `affinity-reduce`,
    /// `drop-refused`, `geo-migrate`, `geo-replicate`, `load-migrate`,
    /// `load-replicate`).
    pub fn as_str(&self) -> &'static str {
        match self {
            PlacementAction::Drop => "drop",
            PlacementAction::AffinityReduce => "affinity-reduce",
            PlacementAction::DropRefused => "drop-refused",
            PlacementAction::GeoMigrate => "geo-migrate",
            PlacementAction::GeoReplicate => "geo-replicate",
            PlacementAction::LoadMigrate => "load-migrate",
            PlacementAction::LoadReplicate => "load-replicate",
        }
    }
}

/// One recorded placement decision: the action plus the values of the
/// Fig. 3–5 threshold tests in force when it triggered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementDecision {
    /// The object acted on.
    pub object: ObjectId,
    /// What was done.
    pub action: PlacementAction,
    /// The recipient, for migrations and replications.
    pub target: Option<NodeId>,
    /// The unit access rate `cnt_s/aff/period` the tests compared.
    pub unit_rate: f64,
    /// The qualifying share: the chosen candidate's preference-path
    /// share (geo actions) or the object's foreign-request share
    /// (offload ordering). `None` for deletion-test actions.
    pub share: Option<f64>,
    /// The path-share ratio the geo test required (`MIGR_RATIO` /
    /// `REPL_RATIO`); `None` for deletion- and load-driven actions.
    pub ratio: Option<f64>,
    /// The deletion threshold `u` in force.
    pub deletion_threshold: f64,
    /// The replication threshold `m` in force.
    pub replication_threshold: f64,
}

impl PlacementOutcome {
    /// Total number of object relocations (migrations + replications).
    pub fn relocations(&self) -> usize {
        self.geo_migrations.len()
            + self.geo_replications.len()
            + self.offload_migrations.len()
            + self.offload_replications.len()
    }

    /// Empties every list while keeping their capacity, so one outcome
    /// value can be reused across placement epochs allocation-free.
    pub fn clear(&mut self) {
        self.offloading_mode = false;
        self.affinity_reductions.clear();
        self.drops.clear();
        self.geo_migrations.clear();
        self.geo_replications.clear();
        self.offload_migrations.clear();
        self.offload_replications.clear();
        self.decisions.clear();
    }
}

/// Result of the `ReduceAffinity` procedure (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceOutcome {
    /// Affinity decremented; replica remains.
    Reduced,
    /// Replica dropped entirely (redirector approved).
    Dropped,
    /// Redirector refused (last replica); nothing changed.
    Refused,
}

/// `ReduceAffinity(x_s)` (paper Fig. 3): decrement the affinity, or —
/// when it would reach zero — ask the redirector for permission to drop
/// the replica.
fn reduce_affinity(
    host: &mut HostState,
    object: ObjectId,
    env: &mut dyn PlacementEnv,
) -> ReduceOutcome {
    let aff = host
        .object(object)
        .expect("reduce_affinity on hosted object")
        .aff();
    if aff > 1 {
        let new_aff = host.reduce_affinity(object);
        env.notify_affinity(object, host.node(), new_aff);
        ReduceOutcome::Reduced
    } else if env.request_drop(object, host.node()) {
        host.drop_object(object);
        ReduceOutcome::Dropped
    } else {
        ReduceOutcome::Refused
    }
}

/// The candidate side of `CreateObj` (paper Fig. 4).
///
/// Admission tests use the candidate's **upper-limit** load estimate
/// (§2.1): refuse if it exceeds the low watermark; for migrations,
/// additionally refuse if accepting could push the load past the high
/// watermark (the Theorem 4 bound `4 × unit_load`). The asymmetry is
/// deliberate: the paper keeps replication admissible even when it might
/// overshoot, because "overloading a recipient temporarily may be
/// necessary in this case in order to bootstrap the replication process",
/// while an unchecked migration could ping-pong an object between a
/// locally overloaded site and its neighbor.
///
/// On acceptance the object is installed (or its affinity incremented)
/// and the candidate's upper load estimate is raised by the Theorem 2/4
/// bound. The caller must then notify the redirector and account for the
/// data transfer if [`CreateObjResponse::Accepted::new_copy`] is set.
pub fn handle_create_obj(
    host: &mut HostState,
    now: f64,
    req: &CreateObjRequest,
) -> CreateObjResponse {
    host.advance(now);
    let params = *host.params();
    let load = host.load_upper();
    if load > params.low_watermark {
        return CreateObjResponse::Refused;
    }
    // Storage admission (§2.1's storage-load component): a full host
    // refuses new physical copies; affinity increments need no space.
    if !host.has_object(req.object) && host.storage_full() {
        return CreateObjResponse::Refused;
    }
    if req.kind == RelocationKind::Migrate
        && load + bounds::target_increase(req.unit_load, 1) > params.high_watermark
    {
        return CreateObjResponse::Refused;
    }
    let new_copy = host.accept_object(now, req.object, req.unit_load);
    CreateObjResponse::Accepted { new_copy }
}

/// `DecidePlacement()` (paper Fig. 3): one periodic placement run for
/// `host` at time `now`.
///
/// Returns a [`PlacementOutcome`] describing every action taken. All
/// per-candidate access counts are reset at the end of the run.
///
/// Convenience wrapper over [`run_placement_into`] that allocates fresh
/// working memory; hot callers (the simulator's placement handler) hold
/// a [`PlacementScratch`] + [`PlacementOutcome`] and reuse them instead.
pub fn run_placement(
    host: &mut HostState,
    now: f64,
    env: &mut dyn PlacementEnv,
) -> PlacementOutcome {
    let mut scratch = PlacementScratch::default();
    let mut out = PlacementOutcome::default();
    run_placement_into(host, now, env, &mut scratch, &mut out);
    out
}

/// [`run_placement`] with caller-owned working memory: `out` is cleared
/// and refilled, and every intermediate list lives in `scratch`, so a
/// steady-state epoch allocates nothing once the buffers have grown to
/// their high-water capacity.
pub fn run_placement_into(
    host: &mut HostState,
    now: f64,
    env: &mut dyn PlacementEnv,
    scratch: &mut PlacementScratch,
    out: &mut PlacementOutcome,
) {
    out.clear();
    host.advance(now);
    let params = *host.params();
    let s = host.node();

    // Mode transitions, using the lower-limit load estimate (§2.1: "the
    // host decides it needs to offload based on a lower-limit estimate").
    let load = host.load_lower();
    if load > params.high_watermark {
        host.set_offloading(true);
    }
    if load < params.low_watermark {
        host.set_offloading(false);
    }
    out.offloading_mode = host.is_offloading();

    host.collect_object_ids(&mut scratch.object_ids);
    for i in 0..scratch.object_ids.len() {
        let x = scratch.object_ids[i];
        // One map lookup per object: the borrow is reused by the geo-
        // migration candidate scan below (it ends before the first
        // `&mut host` use, so the deletion/migration mutations borrow-
        // check against a fresh `host`).
        let o = host.object(x).expect("object_ids() returns hosted objects");
        let (aff, cnt_s, unit_load, acquired_at) =
            (o.aff(), o.count(s), o.unit_load(), o.acquired_at());
        // A replica acquired since the last run has only partial-window
        // access counts; judging it now would re-create the
        // replicate/delete vicious cycle. Defer to the next run.
        if acquired_at > host.last_placement_run() {
            continue;
        }
        let unit_rate = cnt_s as f64 / aff as f64 / params.placement_period;

        // 1. Deletion: below-u affinity units are dropped; such an object
        //    is not otherwise relocated this round.
        if unit_rate < params.deletion_threshold {
            let action = match reduce_affinity(host, x, env) {
                ReduceOutcome::Dropped => {
                    out.drops.push(x);
                    PlacementAction::Drop
                }
                ReduceOutcome::Reduced => {
                    out.affinity_reductions.push(x);
                    PlacementAction::AffinityReduce
                }
                ReduceOutcome::Refused => PlacementAction::DropRefused,
            };
            out.decisions.push(PlacementDecision {
                object: x,
                action,
                target: None,
                unit_rate,
                share: None,
                ratio: None,
                deletion_threshold: params.deletion_threshold,
                replication_threshold: params.replication_threshold,
            });
            continue;
        }

        // 2. Geo-migration: a node on > MIGR_RATIO of preference paths,
        //    farthest candidate first.
        let mut migrated = false;
        if cnt_s > 0 {
            qualified_candidates(
                o,
                s,
                cnt_s,
                params.migration_ratio,
                env,
                &mut scratch.candidates,
            );
            for &(_, p, share) in &scratch.candidates {
                let req = CreateObjRequest {
                    kind: RelocationKind::Migrate,
                    object: x,
                    source: s,
                    unit_load,
                };
                if env.create_obj(p, req).is_accepted() {
                    match reduce_affinity(host, x, env) {
                        ReduceOutcome::Dropped | ReduceOutcome::Reduced => {}
                        ReduceOutcome::Refused => unreachable!(
                            "drop after migration cannot be the last replica: \
                             the recipient's copy was just registered"
                        ),
                    }
                    out.geo_migrations.push((x, p));
                    out.decisions.push(PlacementDecision {
                        object: x,
                        action: PlacementAction::GeoMigrate,
                        target: Some(p),
                        unit_rate,
                        share: Some(share),
                        ratio: Some(params.migration_ratio),
                        deletion_threshold: params.deletion_threshold,
                        replication_threshold: params.replication_threshold,
                    });
                    migrated = true;
                    break;
                }
            }
        }

        // 3. Geo-replication: hot objects (> m) that were not migrated.
        if !migrated && unit_rate > params.replication_threshold && env.may_replicate(x) {
            // Fresh borrow: a migration attempt may have mutated `host`.
            let o = host.object(x).expect("object survives a refused migration");
            qualified_candidates(
                o,
                s,
                cnt_s,
                params.replication_ratio,
                env,
                &mut scratch.candidates,
            );
            for &(_, p, share) in &scratch.candidates {
                let req = CreateObjRequest {
                    kind: RelocationKind::Replicate,
                    object: x,
                    source: s,
                    unit_load,
                };
                if env.create_obj(p, req).is_accepted() {
                    out.geo_replications.push((x, p));
                    out.decisions.push(PlacementDecision {
                        object: x,
                        action: PlacementAction::GeoReplicate,
                        target: Some(p),
                        unit_rate,
                        share: Some(share),
                        ratio: Some(params.replication_ratio),
                        deletion_threshold: params.deletion_threshold,
                        replication_threshold: params.replication_threshold,
                    });
                    break;
                }
            }
        }
    }

    // 4. Offloading (Fig. 5). The published Fig. 3 runs Offload() only
    //    when the geo phase moved nothing at all; taken literally, that
    //    starves a saturated host whose geo phase trickles out a single
    //    replication per period (its only path-qualified candidates are
    //    a couple of loaded hub neighbors), and hot spots then never
    //    dissolve — contradicting the paper's own Fig. 8a. We read the
    //    guard's intent as "don't double-move what this run already
    //    moved": offloading proceeds whenever the host remains in
    //    offloading mode, skipping objects the geo phase just relocated.
    if host.is_offloading() {
        scratch.moved.clear();
        scratch.moved.extend(
            out.geo_migrations
                .iter()
                .chain(&out.geo_replications)
                .map(|&(x, _)| x),
        );
        scratch.moved.sort_unstable();
        offload(host, now, env, out, scratch);
    }

    host.reset_access_counts();
    host.mark_placement_run(now);
}

/// Candidates `p ≠ s` whose access-count share exceeds `ratio` (written
/// into `out` with that share, for the decision record), ordered
/// farthest-from-`s` first (the paper's responsiveness heuristic: "s
/// attempts to place the replica on the farthest among all qualified
/// candidates"), with lowest node id breaking distance ties. The hop
/// distance is computed once per candidate while filtering and carried
/// in the buffer, so the sort needs no cached-key side allocation and
/// no `env.distance` virtual calls per comparison.
fn qualified_candidates(
    o: &crate::ObjectState,
    s: NodeId,
    cnt_s: u64,
    ratio: f64,
    env: &dyn PlacementEnv,
    out: &mut Vec<(u32, NodeId, f64)>,
) {
    out.clear();
    out.extend(o.counts().filter_map(|(p, c)| {
        let share = c as f64 / cnt_s as f64;
        (p != s && share > ratio).then(|| (env.distance(s, p), p, share))
    }));
    // Unstable sort is safe: (distance, id) is unique per candidate, so
    // the order is total and identical to a stable sort's.
    out.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
}

/// `Offload()` (paper Fig. 5): shed objects in bulk to one under-loaded
/// recipient, re-computing the conservative lower (self) and upper
/// (recipient) load estimates after every transfer, and stopping as soon
/// as either estimate crosses the low watermark or the recipient refuses.
fn offload(
    host: &mut HostState,
    now: f64,
    env: &mut dyn PlacementEnv,
    out: &mut PlacementOutcome,
    scratch: &mut PlacementScratch,
) {
    let Some((recipient, mut recipient_load)) = env.find_offload_recipient(host.node()) else {
        return;
    };
    assert_ne!(
        recipient,
        host.node(),
        "offload recipient must be a different host"
    );
    let params = *host.params();
    let s = host.node();

    // Objects with the highest foreign-request share first: these gain
    // (or lose least) proximity when moved.
    host.collect_object_ids(&mut scratch.object_ids);
    scratch.offload_objects.clear();
    for &x in &scratch.object_ids {
        // Same partial-window rule as the geo phase (never shed a
        // replica acquired since the last placement run), and don't
        // double-move objects the geo phase just relocated
        // (`scratch.moved` is sorted by the caller).
        if scratch.moved.binary_search(&x).is_ok() {
            continue;
        }
        let o = host.object(x).expect("hosted");
        if o.acquired_at() > host.last_placement_run() {
            continue;
        }
        let cnt_s = o.count(s);
        let foreign = if cnt_s == 0 {
            0.0
        } else {
            o.counts()
                .filter(|&(p, _)| p != s)
                .map(|(_, c)| c as f64 / cnt_s as f64)
                .fold(0.0, f64::max)
        };
        scratch.offload_objects.push((x, foreign));
    }
    // Unstable sort is safe (and allocation-free): the id tiebreak makes
    // the order total, so the result is identical to a stable sort.
    scratch.offload_objects.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("foreign ratios are finite")
            .then(a.0.cmp(&b.0))
    });

    for i in 0..scratch.offload_objects.len() {
        let (x, foreign) = scratch.offload_objects[i];
        if host.load_lower() <= params.low_watermark {
            break;
        }
        if recipient_load >= params.low_watermark {
            break;
        }
        let (aff, rate, unit_load, cnt_s) = {
            let o = host.object(x).expect("hosted");
            (o.aff(), o.rate(), o.unit_load(), o.count(s))
        };
        let unit_rate = cnt_s as f64 / aff as f64 / params.placement_period;
        let decision = |action| PlacementDecision {
            object: x,
            action,
            target: Some(recipient),
            unit_rate,
            share: Some(foreign),
            ratio: None,
            deletion_threshold: params.deletion_threshold,
            replication_threshold: params.replication_threshold,
        };

        if unit_rate <= params.replication_threshold {
            // Migrate. (Hot objects are never load-migrated: "load-
            // migrating these objects out might undo a previous
            // geo-replication".)
            let req = CreateObjRequest {
                kind: RelocationKind::Migrate,
                object: x,
                source: s,
                unit_load,
            };
            if env.create_obj(recipient, req).is_accepted() {
                host.note_shed(now, bounds::migration_source_decrease(rate, aff));
                recipient_load += bounds::target_increase(rate, aff);
                match reduce_affinity(host, x, env) {
                    ReduceOutcome::Dropped | ReduceOutcome::Reduced => {}
                    ReduceOutcome::Refused => {
                        unreachable!("drop after migration cannot be the last replica")
                    }
                }
                out.offload_migrations.push((x, recipient));
                out.decisions.push(decision(PlacementAction::LoadMigrate));
            } else {
                break;
            }
        } else {
            if !env.may_replicate(x) {
                continue;
            }
            let req = CreateObjRequest {
                kind: RelocationKind::Replicate,
                object: x,
                source: s,
                unit_load,
            };
            if env.create_obj(recipient, req).is_accepted() {
                host.note_shed(now, bounds::replication_source_decrease(rate));
                recipient_load += bounds::target_increase(rate, aff);
                out.offload_replications.push((x, recipient));
                out.decisions.push(decision(PlacementAction::LoadReplicate));
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, Redirector};
    use radar_simnet::{builders, RoutingTable};
    use std::collections::BTreeMap;

    /// A mock platform: peer hosts, one redirector, and a routing table.
    struct MockEnv {
        routes: RoutingTable,
        redirector: Redirector,
        peers: BTreeMap<NodeId, HostState>,
        now: f64,
        offload_recipient: Option<NodeId>,
        replica_cap: Option<usize>,
        refuse_all: bool,
        create_obj_calls: u32,
    }

    impl MockEnv {
        fn new(topology: &radar_simnet::Topology, num_objects: u32) -> Self {
            Self {
                routes: topology.routes(),
                redirector: Redirector::new(num_objects, 2.0),
                peers: BTreeMap::new(),
                now: 0.0,
                offload_recipient: None,
                replica_cap: None,
                refuse_all: false,
                create_obj_calls: 0,
            }
        }

        fn add_peer(&mut self, node: NodeId, params: Params) {
            self.peers.insert(node, HostState::new(node, params));
        }
    }

    impl PlacementEnv for MockEnv {
        fn create_obj(&mut self, target: NodeId, req: CreateObjRequest) -> CreateObjResponse {
            self.create_obj_calls += 1;
            if self.refuse_all {
                return CreateObjResponse::Refused;
            }
            let peer = self.peers.get_mut(&target).expect("peer exists");
            let resp = handle_create_obj(peer, self.now, &req);
            if resp.is_accepted() {
                self.redirector.notify_created(req.object, target);
            }
            resp
        }

        fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
            self.redirector.request_drop(object, host)
        }

        fn notify_affinity(&mut self, object: ObjectId, host: NodeId, aff: u32) {
            self.redirector.notify_affinity(object, host, aff);
        }

        fn find_offload_recipient(&mut self, _requester: NodeId) -> Option<(NodeId, f64)> {
            let r = self.offload_recipient?;
            let load = self.peers.get(&r).expect("recipient exists").load_upper();
            Some((r, load))
        }

        fn distance(&self, a: NodeId, b: NodeId) -> u32 {
            self.routes.distance(a, b)
        }

        fn may_replicate(&self, object: ObjectId) -> bool {
            match self.replica_cap {
                None => true,
                Some(cap) => self.redirector.replica_count(object) < cap,
            }
        }

        fn replica_count(&self, object: ObjectId) -> usize {
            self.redirector.replica_count(object)
        }
    }

    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    /// Installs `object` on `host` and registers it with the redirector.
    fn seed(host: &mut HostState, env: &mut MockEnv, object: ObjectId) {
        host.install_object(object);
        env.redirector.install(object, host.node());
    }

    /// Feeds `count` accesses whose preference paths all equal `path`
    /// (path[0] must be the host's node), plus matching serviced events
    /// spread over the window `[t0, t0+20)`.
    fn feed(host: &mut HostState, object: ObjectId, path: &[NodeId], count: u64, t0: f64) {
        assert_eq!(path[0], host.node());
        for i in 0..count {
            let t = t0 + 20.0 * i as f64 / count as f64;
            host.record_serviced(t, object);
            host.record_access(object, path);
        }
    }

    #[test]
    fn qualified_candidate_order_matches_uncached_comparator() {
        // The precomputed-distance sort must reproduce the original
        // comparator's order exactly: farthest from the source first,
        // lowest node id breaking distance ties.
        let topo = builders::uunet();
        let env = MockEnv::new(&topo, 1);
        let mut host = HostState::new(n(20), Params::paper());
        host.install_object(x(0));
        // Access counts over many gateways: every node on a preference
        // path through the whole topology picks up a count, producing a
        // wide candidate set with plenty of equal-distance ties.
        for g in 0..topo.len() as u16 {
            let path: Vec<NodeId> = env.routes.path(n(20), n(g));
            for _ in 0..1 + (g % 3) {
                host.record_access(x(0), &path);
            }
        }
        let cnt_s = host.object(x(0)).unwrap().count(n(20));
        assert!(cnt_s > 0);

        let mut cached = Vec::new();
        let o = host.object(x(0)).unwrap();
        qualified_candidates(o, n(20), cnt_s, 0.0, &env, &mut cached);
        assert!(cached.len() > 10, "want a wide candidate set");

        // The pre-optimization ordering: the same key derived inside the
        // comparator on every comparison.
        let mut reference = cached.clone();
        reference.sort_by_key(|&(_, p, _)| (std::cmp::Reverse(env.distance(n(20), p)), p));
        assert_eq!(cached, reference);

        // Spot-check the contract itself on the leaders: distances are
        // non-increasing, ids ascending within equal distance, and the
        // carried distance matches the routing database.
        for w in cached.windows(2) {
            let (a, b) = (w[0].1, w[1].1);
            let (da, db) = (env.distance(n(20), a), env.distance(n(20), b));
            assert_eq!((w[0].0, w[1].0), (da, db));
            assert!(da > db || (da == db && a < b), "{a} vs {b}");
        }
    }

    #[test]
    fn scratch_reuse_reproduces_fresh_run() {
        // Two identical hosts, one run through the allocating wrapper and
        // one through run_placement_into with dirty reused buffers: the
        // outcomes and host states must match.
        let build = || {
            let topo = builders::line(3);
            let mut env = MockEnv::new(&topo, 3);
            env.add_peer(n(1), Params::paper());
            env.add_peer(n(2), Params::paper());
            let mut host = HostState::new(n(0), Params::paper());
            seed(&mut host, &mut env, x(0));
            feed(&mut host, x(0), &[n(0)], 40, 0.0);
            feed(&mut host, x(0), &[n(0), n(1), n(2)], 20, 0.0);
            seed(&mut host, &mut env, x(1));
            env.redirector.install(x(1), n(1));
            seed(&mut host, &mut env, x(2));
            feed(&mut host, x(2), &[n(0), n(1), n(2)], 10, 0.0);
            (env, host)
        };
        let (mut env_a, mut host_a) = build();
        let fresh = run_placement(&mut host_a, 100.0, &mut env_a);

        let (mut env_b, mut host_b) = build();
        let mut scratch = PlacementScratch::default();
        // Dirty the buffers so the test catches any missing clear().
        scratch.object_ids.push(x(99));
        scratch.candidates.push((3, n(9), 0.5));
        scratch.offload_objects.push((x(98), 1.0));
        scratch.moved.push(x(97));
        let mut out = PlacementOutcome {
            offloading_mode: true,
            drops: vec![x(96)],
            ..PlacementOutcome::default()
        };
        run_placement_into(&mut host_b, 100.0, &mut env_b, &mut scratch, &mut out);
        assert_eq!(fresh, out);
        assert_eq!(host_a.object_ids(), host_b.object_ids());
    }

    #[test]
    fn cold_sole_replica_survives() {
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 1);
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        // No accesses at all: unit rate 0 < u, but drop is refused (last
        // replica).
        let out = run_placement(&mut host, 100.0, &mut env);
        assert!(out.drops.is_empty());
        assert!(host.has_object(x(0)));
        assert_eq!(env.redirector.replica_count(x(0)), 1);
    }

    #[test]
    fn cold_redundant_replica_dropped() {
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 1);
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        env.redirector.install(x(0), n(1)); // second replica elsewhere
        let out = run_placement(&mut host, 100.0, &mut env);
        assert_eq!(out.drops, vec![x(0)]);
        assert!(!host.has_object(x(0)));
        assert_eq!(env.redirector.replicas(x(0))[0].host, n(1));
    }

    #[test]
    fn cold_high_affinity_replica_sheds_one_unit() {
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 1);
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        host.install_object(x(0)); // aff 2
        env.redirector.install(x(0), n(0));
        let out = run_placement(&mut host, 100.0, &mut env);
        assert_eq!(out.affinity_reductions, vec![x(0)]);
        assert_eq!(host.object(x(0)).unwrap().aff(), 1);
        assert_eq!(env.redirector.total_affinity(x(0)), 1);
    }

    #[test]
    fn geo_migration_follows_majority_path() {
        // line 0-1-2; host at 0, all requests enter via gateway 2, so the
        // preference path is [0,1,2] and node 2 sees 100% > MIGR_RATIO.
        let topo = builders::line(3);
        let mut env = MockEnv::new(&topo, 1);
        env.add_peer(n(1), Params::paper());
        env.add_peer(n(2), Params::paper());
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        feed(&mut host, x(0), &[n(0), n(1), n(2)], 10, 0.0);
        let out = run_placement(&mut host, 100.0, &mut env);
        // Farthest qualified candidate is node 2 (both 1 and 2 exceed
        // 60% of paths; 2 is farther).
        assert_eq!(out.geo_migrations, vec![(x(0), n(2))]);
        assert!(!host.has_object(x(0)));
        assert!(env.peers[&n(2)].has_object(x(0)));
        let reps = env.redirector.replicas(x(0));
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].host, n(2));
    }

    #[test]
    fn migration_declined_by_loaded_candidate_falls_to_closer_one() {
        let topo = builders::line(3);
        let mut env = MockEnv::new(&topo, 1);
        env.add_peer(n(1), Params::paper());
        env.add_peer(n(2), Params::paper());
        // Load node 2 beyond the low watermark so it refuses.
        {
            let p2 = env.peers.get_mut(&n(2)).unwrap();
            p2.install_object(x(0)); // note: same object; rates need objects? use serviced only
            for i in 0..1700 {
                p2.record_serviced(i as f64 * 20.0 / 1700.0, x(0));
            }
            p2.advance(20.0); // measured 85 > lw=80
            p2.drop_object(x(0));
        }
        env.redirector = Redirector::new(1, 2.0); // reset: only host 0 has x
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        feed(&mut host, x(0), &[n(0), n(1), n(2)], 10, 0.0);
        let out = run_placement(&mut host, 100.0, &mut env);
        assert_eq!(out.geo_migrations, vec![(x(0), n(1))]);
        assert!(env.peers[&n(1)].has_object(x(0)));
        assert!(!env.peers[&n(2)].has_object(x(0)));
    }

    #[test]
    fn hot_object_geo_replicates_without_losing_source() {
        // Host 0; 2/3 of requests local, 1/3 via node 2 (share 33% is
        // below MIGR_RATIO but above REPL_RATIO). Make it hot: > 18
        // accesses per affinity unit per period.
        let topo = builders::line(3);
        let mut env = MockEnv::new(&topo, 1);
        env.add_peer(n(1), Params::paper());
        env.add_peer(n(2), Params::paper());
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        feed(&mut host, x(0), &[n(0)], 40, 0.0); // local-only paths
        feed(&mut host, x(0), &[n(0), n(1), n(2)], 20, 0.0);
        let out = run_placement(&mut host, 100.0, &mut env);
        assert!(out.geo_migrations.is_empty());
        assert_eq!(out.geo_replications, vec![(x(0), n(2))]);
        assert!(host.has_object(x(0)));
        assert!(env.peers[&n(2)].has_object(x(0)));
        assert_eq!(env.redirector.replica_count(x(0)), 2);
    }

    #[test]
    fn decisions_record_threshold_values() {
        // A hot geo-replication records the action with the share and
        // ratio that qualified the candidate and the u/m in force.
        let topo = builders::line(3);
        let mut env = MockEnv::new(&topo, 2);
        env.add_peer(n(1), Params::paper());
        env.add_peer(n(2), Params::paper());
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        feed(&mut host, x(0), &[n(0)], 40, 0.0);
        feed(&mut host, x(0), &[n(0), n(1), n(2)], 20, 0.0);
        // Plus one cold redundant replica that gets dropped.
        seed(&mut host, &mut env, x(1));
        env.redirector.install(x(1), n(1));
        let params = Params::paper();
        let out = run_placement(&mut host, 100.0, &mut env);
        assert_eq!(out.decisions.len(), 2);

        let drop = out
            .decisions
            .iter()
            .find(|d| d.object == x(1))
            .expect("drop decision recorded");
        assert_eq!(drop.action, PlacementAction::Drop);
        assert_eq!(drop.action.as_str(), "drop");
        assert_eq!(drop.target, None);
        assert_eq!(drop.unit_rate, 0.0);
        assert_eq!(drop.share, None);
        assert_eq!(drop.deletion_threshold, params.deletion_threshold);
        assert_eq!(drop.replication_threshold, params.replication_threshold);

        let repl = out
            .decisions
            .iter()
            .find(|d| d.object == x(0))
            .expect("replication decision recorded");
        assert_eq!(repl.action, PlacementAction::GeoReplicate);
        assert_eq!(repl.target, Some(n(2)));
        assert_eq!(repl.ratio, Some(params.replication_ratio));
        // Node 2 lies on 20 of 60 preference paths.
        let share = repl.share.expect("geo decision carries a share");
        assert!((share - 1.0 / 3.0).abs() < 1e-9, "share = {share}");
        assert!(repl.unit_rate > params.replication_threshold);
    }

    #[test]
    fn offload_decisions_record_foreign_share() {
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 10);
        env.add_peer(n(1), Params::paper());
        env.offload_recipient = Some(n(1));
        let mut host = HostState::new(n(0), Params::paper());
        for i in 0..10 {
            seed(&mut host, &mut env, x(i));
            for k in 0..200 {
                host.record_serviced(20.0 * k as f64 / 200.0, x(i));
            }
            for _ in 0..5 {
                host.record_access(x(i), &[n(0)]);
            }
        }
        let out = run_placement(&mut host, 20.0, &mut env);
        assert_eq!(out.offload_migrations.len(), 2);
        let load_decisions: Vec<&PlacementDecision> = out
            .decisions
            .iter()
            .filter(|d| d.action == PlacementAction::LoadMigrate)
            .collect();
        assert_eq!(load_decisions.len(), 2);
        for d in load_decisions {
            assert_eq!(d.target, Some(n(1)));
            assert_eq!(d.share, Some(0.0), "purely local demand");
            assert_eq!(d.ratio, None);
        }
    }

    #[test]
    fn warm_object_neither_dropped_nor_replicated() {
        // Unit rate between u and m, no foreign majority: nothing happens.
        let topo = builders::line(3);
        let mut env = MockEnv::new(&topo, 1);
        env.add_peer(n(1), Params::paper());
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        feed(&mut host, x(0), &[n(0)], 10, 0.0);
        let out = run_placement(&mut host, 100.0, &mut env);
        assert_eq!(out.relocations(), 0);
        assert!(out.drops.is_empty() && out.affinity_reductions.is_empty());
        assert!(host.has_object(x(0)));
    }

    #[test]
    fn replica_cap_blocks_geo_replication() {
        let topo = builders::line(3);
        let mut env = MockEnv::new(&topo, 1);
        env.add_peer(n(2), Params::paper());
        env.replica_cap = Some(1);
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        feed(&mut host, x(0), &[n(0)], 40, 0.0);
        feed(&mut host, x(0), &[n(0), n(1), n(2)], 20, 0.0);
        let out = run_placement(&mut host, 100.0, &mut env);
        assert!(out.geo_replications.is_empty());
        assert_eq!(env.redirector.replica_count(x(0)), 1);
    }

    #[test]
    fn access_counts_reset_after_run() {
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 1);
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        feed(&mut host, x(0), &[n(0)], 10, 0.0);
        run_placement(&mut host, 100.0, &mut env);
        assert_eq!(host.object(x(0)).unwrap().count(n(0)), 0);
    }

    #[test]
    fn overloaded_host_offloads_in_bulk() {
        // 10 objects, each 10 req/s in the window before placement, all
        // local demand (no geo candidates). Total 100 > hw=90.
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 10);
        env.add_peer(n(1), Params::paper());
        env.offload_recipient = Some(n(1));
        let mut host = HostState::new(n(0), Params::paper());
        for i in 0..10 {
            seed(&mut host, &mut env, x(i));
            // 200 services in [0,20) => rate 10/s; 5 access counts => unit
            // rate 0.05, between u and m (migratable, not droppable).
            for k in 0..200 {
                host.record_serviced(20.0 * k as f64 / 200.0, x(i));
            }
            for _ in 0..5 {
                host.record_access(x(i), &[n(0)]);
            }
        }
        let out = run_placement(&mut host, 20.0, &mut env);
        assert!(out.offloading_mode);
        // Lower estimate: 100 - 10 per migration; stops at <= 80 after 2.
        // Recipient bound: +40 per migration; stops at >= 80 after 2.
        assert_eq!(out.offload_migrations.len(), 2);
        assert_eq!(host.object_count(), 8);
        assert_eq!(env.peers[&n(1)].object_count(), 2);
        assert!(host.load_lower() <= 80.0);
        // The shed load is reflected immediately in the estimates, not
        // deferred to the next measurement.
        assert!(host.in_estimate_mode());
    }

    #[test]
    fn offload_replicates_hot_objects_instead_of_migrating() {
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 2);
        env.add_peer(n(1), Params::paper());
        env.offload_recipient = Some(n(1));
        let mut host = HostState::new(n(0), Params::paper());
        // One very hot object (unit rate > m) plus one warm object.
        seed(&mut host, &mut env, x(0));
        seed(&mut host, &mut env, x(1));
        for k in 0..1900 {
            host.record_serviced(20.0 * k as f64 / 1900.0, x(0));
        }
        for _ in 0..25 {
            host.record_access(x(0), &[n(0)]); // 25 > 18 = m*period
        }
        for k in 0..100 {
            host.record_serviced(20.0 * k as f64 / 100.0, x(1));
        }
        for _ in 0..5 {
            host.record_access(x(1), &[n(0)]);
        }
        let out = run_placement(&mut host, 20.0, &mut env);
        assert!(out.offloading_mode);
        assert!(out.offload_replications.iter().any(|&(obj, _)| obj == x(0)));
        assert!(host.has_object(x(0)), "hot object is replicated, not moved");
    }

    #[test]
    fn offload_stops_on_recipient_refusal() {
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 4);
        env.add_peer(n(1), Params::paper());
        env.offload_recipient = Some(n(1));
        env.refuse_all = true;
        let mut host = HostState::new(n(0), Params::paper());
        for i in 0..4 {
            seed(&mut host, &mut env, x(i));
            for k in 0..500 {
                host.record_serviced(20.0 * k as f64 / 500.0, x(i));
            }
            for _ in 0..5 {
                host.record_access(x(i), &[n(0)]);
            }
        }
        let out = run_placement(&mut host, 20.0, &mut env);
        assert!(out.offloading_mode);
        assert_eq!(out.relocations(), 0);
        // Exactly one CreateObj attempt: the first refusal aborts the
        // offload round.
        assert_eq!(env.create_obj_calls, 1);
        assert_eq!(host.object_count(), 4);
    }

    #[test]
    fn offload_skips_objects_the_geo_phase_moved() {
        // Overloaded host with one geo-migratable object: the migration
        // happens in the geo phase, and the offloader then sheds *other*
        // objects without touching the migrated one again.
        let topo = builders::line(3);
        let mut env = MockEnv::new(&topo, 2);
        env.add_peer(n(1), Params::paper());
        env.add_peer(n(2), Params::paper());
        env.offload_recipient = Some(n(1));
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        seed(&mut host, &mut env, x(1));
        // x0: light (rate 10/s, so the Theorem-4 migration bound 4×10
        // passes at the candidate), all paths through node 2 => migrates.
        // 10 counts / 100 s = 0.1 < m: migratable.
        for k in 0..200 {
            host.record_serviced(20.0 * k as f64 / 200.0, x(0));
        }
        for _ in 0..10 {
            host.record_access(x(0), &[n(0), n(1), n(2)]);
        }
        // x1 overloads the host (85/s) but is purely local and hot, so
        // the geo phase leaves it alone.
        for k in 0..1700 {
            host.record_serviced(20.0 * k as f64 / 1700.0, x(1));
        }
        for _ in 0..25 {
            host.record_access(x(1), &[n(0)]);
        }
        let out = run_placement(&mut host, 20.0, &mut env);
        assert!(out.offloading_mode);
        assert_eq!(out.geo_migrations.len(), 1);
        // x0 left in the geo phase; the offloader may shed x1 (hot =>
        // replication) but must not re-move x0.
        assert!(out
            .offload_migrations
            .iter()
            .chain(&out.offload_replications)
            .all(|&(obj, _)| obj != x(0)));
        assert_eq!(out.offload_replications, vec![(x(1), n(1))]);
    }

    #[test]
    fn offloading_mode_hysteresis() {
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 1);
        let mut host = HostState::new(n(0), Params::paper());
        seed(&mut host, &mut env, x(0));
        // Window [0,20): 100 req/s => enters offloading at t=20.
        for k in 0..2000 {
            host.record_serviced(20.0 * k as f64 / 2000.0, x(0));
        }
        for _ in 0..25 {
            host.record_access(x(0), &[n(0)]);
        }
        let out = run_placement(&mut host, 20.0, &mut env);
        assert!(out.offloading_mode);
        // Window [20,40): 85 req/s — between lw and hw: stays offloading.
        for k in 0..1700 {
            host.record_serviced(20.0 + 20.0 * k as f64 / 1700.0, x(0));
        }
        for _ in 0..25 {
            host.record_access(x(0), &[n(0)]);
        }
        let out = run_placement(&mut host, 40.0, &mut env);
        assert!(
            out.offloading_mode,
            "hysteresis keeps offloading between lw and hw"
        );
        // Window [40,60): 10 req/s — drops below lw: exits offloading.
        for k in 0..200 {
            host.record_serviced(40.0 + 20.0 * k as f64 / 200.0, x(0));
        }
        for _ in 0..25 {
            host.record_access(x(0), &[n(0)]);
        }
        let out = run_placement(&mut host, 60.0, &mut env);
        assert!(!out.offloading_mode);
    }

    #[test]
    fn create_obj_admission_rules() {
        let mut host = HostState::new(n(1), Params::paper());
        // Fresh host (load 0): accepts a migration.
        let req = CreateObjRequest {
            kind: RelocationKind::Migrate,
            object: x(0),
            source: n(0),
            unit_load: 5.0,
        };
        assert_eq!(
            handle_create_obj(&mut host, 0.0, &req),
            CreateObjResponse::Accepted { new_copy: true }
        );
        // Second acceptance of the same object: affinity bump, no copy.
        assert_eq!(
            handle_create_obj(&mut host, 0.0, &req),
            CreateObjResponse::Accepted { new_copy: false }
        );
        assert_eq!(host.object(x(0)).unwrap().aff(), 2);
    }

    #[test]
    fn create_obj_refuses_when_storage_full() {
        let mut host = HostState::new(n(1), Params::paper());
        host.set_storage_limit(1);
        host.install_object(x(5));
        let req = CreateObjRequest {
            kind: RelocationKind::Replicate,
            object: x(0),
            source: n(0),
            unit_load: 0.1,
        };
        assert_eq!(
            handle_create_obj(&mut host, 0.0, &req),
            CreateObjResponse::Refused
        );
        // An affinity bump on the already-stored object still succeeds.
        let bump = CreateObjRequest {
            object: x(5),
            ..req
        };
        assert_eq!(
            handle_create_obj(&mut host, 0.0, &bump),
            CreateObjResponse::Accepted { new_copy: false }
        );
    }

    #[test]
    fn create_obj_refuses_above_low_watermark() {
        let mut host = HostState::new(n(1), Params::paper());
        host.install_object(x(9));
        for k in 0..1700 {
            host.record_serviced(20.0 * k as f64 / 1700.0, x(9));
        }
        host.advance(20.0); // measured 85 > lw=80
        let req = CreateObjRequest {
            kind: RelocationKind::Replicate,
            object: x(0),
            source: n(0),
            unit_load: 0.1,
        };
        assert_eq!(
            handle_create_obj(&mut host, 20.0, &req),
            CreateObjResponse::Refused
        );
    }

    #[test]
    fn create_obj_migration_bound_check() {
        let mut host = HostState::new(n(1), Params::paper());
        host.install_object(x(9));
        // Measured 79: below lw, but 79 + 4*5 = 99 > hw=90.
        for k in 0..1580 {
            host.record_serviced(20.0 * k as f64 / 1580.0, x(9));
        }
        host.advance(20.0);
        let migrate = CreateObjRequest {
            kind: RelocationKind::Migrate,
            object: x(0),
            source: n(0),
            unit_load: 5.0,
        };
        assert_eq!(
            handle_create_obj(&mut host, 20.0, &migrate),
            CreateObjResponse::Refused
        );
        // The same load offered as a *replication* is accepted — the
        // paper deliberately allows temporary overshoot to bootstrap
        // replication.
        let replicate = CreateObjRequest {
            kind: RelocationKind::Replicate,
            ..migrate
        };
        assert!(handle_create_obj(&mut host, 20.0, &replicate).is_accepted());
    }

    #[test]
    fn upper_estimate_accumulates_across_accepts() {
        // Fig. 4's point: a recipient that just accepted load uses its
        // raised estimate for the next decision, not the stale
        // measurement.
        let mut host = HostState::new(n(1), Params::paper());
        let req = CreateObjRequest {
            kind: RelocationKind::Migrate,
            object: x(0),
            source: n(0),
            unit_load: 21.0, // bound 84 > lw after one accept
        };
        assert!(handle_create_obj(&mut host, 0.0, &req).is_accepted());
        let req2 = CreateObjRequest {
            object: x(1),
            ..req
        };
        assert_eq!(
            handle_create_obj(&mut host, 0.0, &req2),
            CreateObjResponse::Refused
        );
    }

    #[test]
    fn freshly_acquired_replica_not_judged_same_epoch() {
        // A host accepts an object mid-period and runs its own placement
        // at the same epoch with zero access counts: the replica must
        // survive (no drop), deferring judgment to the next run.
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 1);
        let mut host = HostState::new(n(1), Params::paper());
        env.redirector.install(x(0), n(0)); // source copy elsewhere
        let req = CreateObjRequest {
            kind: RelocationKind::Replicate,
            object: x(0),
            source: n(0),
            unit_load: 0.5,
        };
        assert!(handle_create_obj(&mut host, 100.0, &req).is_accepted());
        env.redirector.notify_created(x(0), n(1));

        let out = run_placement(&mut host, 100.0, &mut env);
        assert_eq!(out.drops, Vec::<ObjectId>::new());
        assert!(host.has_object(x(0)));

        // Next epoch, still cold: now it is judged and dropped.
        let out = run_placement(&mut host, 200.0, &mut env);
        assert_eq!(out.drops, vec![x(0)]);
        assert!(!host.has_object(x(0)));
    }

    #[test]
    fn bootstrap_installs_are_judged_immediately() {
        // install_object (initial placement) is not an acquisition: the
        // first placement run may prune it.
        let topo = builders::line(2);
        let mut env = MockEnv::new(&topo, 1);
        let mut host = HostState::new(n(0), Params::paper());
        host.install_object(x(0));
        env.redirector.install(x(0), n(0));
        env.redirector.install(x(0), n(1));
        let out = run_placement(&mut host, 100.0, &mut env);
        assert_eq!(out.drops, vec![x(0)]);
    }
}
