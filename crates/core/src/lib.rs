//! The RaDaR dynamic object replication and migration protocol.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"A Dynamic Object Replication and Migration Protocol for an Internet
//! Hosting Service"* (Rabinovich, Rabinovich, Rajaraman, Aggarwal;
//! ICDCS 1999): a protocol suite that decides **how many replicas of each
//! Web object to keep, where to keep them, and which replica serves each
//! request** — with every decision made *autonomously* by individual
//! hosts, using only locally observable information.
//!
//! The two interlocking algorithms:
//!
//! * **Request distribution** ([`Redirector::choose_replica`], paper
//!   Fig. 2). For each request the redirector considers just two replicas:
//!   the one *closest* to the requesting gateway and the one with the
//!   smallest *unit request count* (`rcnt/aff`). The closest wins unless
//!   its unit count exceeds the minimum by more than the distribution
//!   constant (2). This single rule blends proximity and load *without
//!   ever measuring server load*, and — crucially — makes the load shift
//!   caused by any replica-set change **predictable** (Theorems 1–5,
//!   [`bounds`]).
//! * **Replica placement** ([`placement`], paper Figs. 3–5). Each host
//!   periodically walks its objects: drops affinity units whose unit
//!   access rate fell below the deletion threshold `u`, geo-migrates
//!   objects whose requests mostly pass through another node, and
//!   geo-replicates hot objects (unit access rate > `m`) toward nodes on
//!   many preference paths. A host whose load exceeds the high watermark
//!   enters *offloading* mode and sheds objects in bulk, steering by the
//!   theorem bounds instead of waiting for fresh load measurements after
//!   every move.
//!
//! The protocol is written sans-I/O: hosts and redirectors are plain
//! state machines, and all interaction with "the network" goes through
//! the [`placement::PlacementEnv`] trait. The `radar-sim` crate wires
//! these state machines into a discrete-event simulation; unit tests
//! drive them directly.
//!
//! # Quick tour
//!
//! ```
//! use radar_core::{Catalog, ObjectId, Params, Redirector};
//! use radar_simnet::{builders, NodeId};
//!
//! let topo = builders::two_continents();
//! let routes = topo.routes();
//! let params = Params::paper();
//!
//! // One object, initially replicated on both continents.
//! let mut redirector = Redirector::new(1, params.distribution_constant);
//! let x = ObjectId::new(0);
//! let america = NodeId::new(0);
//! let europe = NodeId::new(1);
//! redirector.install(x, america);
//! redirector.install(x, europe);
//!
//! // Balanced demand: every request is served by its local replica.
//! let from_us = redirector.choose_replica(x, america, &routes).unwrap();
//! let from_eu = redirector.choose_replica(x, europe, &routes).unwrap();
//! assert_eq!(from_us, america);
//! assert_eq!(from_eu, europe);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bounds;
mod catalog;
mod directory;
pub mod guide;
mod host;
mod load;
mod params;
pub mod placement;
mod redirector;
mod types;

pub use catalog::{Catalog, ConsistencyMix, ObjectKind};
pub use directory::{shard_ranges, Directory, DirectoryShard};
pub use host::{HostState, ObjectState};
pub use load::LoadEstimator;
pub use params::{Params, ParamsBuilder, ParamsError};
pub use redirector::{
    ChoiceBranch, ChoiceCandidate, ChoiceExplanation, Redirector, RedirectorShard, ReplicaInfo,
};
pub use types::{CreateObjRequest, CreateObjResponse, ObjectId, PlacementReason, RelocationKind};
