//! Shared protocol vocabulary: object ids and inter-host messages.

use std::fmt;

use radar_simnet::NodeId;

/// Identifier of a hosted Web object.
///
/// Object ids are dense indices (`0..num_objects`); the paper's initial
/// round-robin placement puts object `i` on node `i mod 53`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(u32);

impl ObjectId {
    /// Creates an object id from a dense index.
    pub const fn new(index: u32) -> Self {
        ObjectId(index)
    }

    /// The dense index of this object.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Whether a `CreateObj` message proposes a migration or a replication
/// (paper Fig. 4: the candidate applies a stricter admission test to
/// migrations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelocationKind {
    /// Move the affinity unit: source sheds it after the copy succeeds.
    Migrate,
    /// Add an affinity unit at the target; the source keeps its replica.
    Replicate,
}

impl fmt::Display for RelocationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelocationKind::Migrate => f.write_str("MIGRATE"),
            RelocationKind::Replicate => f.write_str("REPLICATE"),
        }
    }
}

/// Why a relocation was initiated — for metrics and tracing. The paper
/// distinguishes *geo*-motivated moves (proximity, §4.2.1) from
/// *load*-motivated moves (offloading, §4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementReason {
    /// Proximity-driven (geo-migration / geo-replication).
    Geo,
    /// Load-driven (host offloading).
    Load,
}

/// The `CreateObj` request a host sends to a placement candidate
/// (paper Fig. 4). Carries the per-affinity-unit load of the source
/// replica, which the candidate uses in its admission test and in its
/// upper-bound load estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreateObjRequest {
    /// Migration or replication.
    pub kind: RelocationKind,
    /// The object to copy.
    pub object: ObjectId,
    /// Source node (where the object is copied from).
    pub source: NodeId,
    /// `load(x_s)/aff(x_s)` at the source — the unit load of the replica.
    pub unit_load: f64,
}

/// The candidate's answer to a [`CreateObjRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateObjResponse {
    /// The candidate accepted and now holds the object; `new_copy` is
    /// `true` when actual object data had to be transferred (a brand-new
    /// replica) rather than just an affinity increment.
    Accepted {
        /// Whether a new physical copy was created (vs. affinity bump).
        new_copy: bool,
    },
    /// The candidate refused (its load admission test failed).
    Refused,
}

impl CreateObjResponse {
    /// `true` if the candidate accepted.
    pub fn is_accepted(self) -> bool {
        matches!(self, CreateObjResponse::Accepted { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_roundtrip_and_display() {
        let x = ObjectId::new(42);
        assert_eq!(x.index(), 42);
        assert_eq!(x.to_string(), "x42");
    }

    #[test]
    fn relocation_kind_display_matches_paper() {
        assert_eq!(RelocationKind::Migrate.to_string(), "MIGRATE");
        assert_eq!(RelocationKind::Replicate.to_string(), "REPLICATE");
    }

    #[test]
    fn response_acceptance() {
        assert!(CreateObjResponse::Accepted { new_copy: true }.is_accepted());
        assert!(!CreateObjResponse::Refused.is_accepted());
    }

    #[test]
    fn object_ids_order_by_index() {
        assert!(ObjectId::new(1) < ObjectId::new(2));
    }
}
