//! Load-change bounds (paper Theorems 1–5).
//!
//! These closed forms are what let a host relocate **many objects at
//! once** without waiting for fresh load measurements after each move:
//! under steady demand, the request distribution algorithm guarantees
//! that any single migration/replication shifts load by no more than the
//! amounts below. The offloading algorithm (Fig. 5) subtracts the source
//! bounds from its lower load estimate and adds the target bound to the
//! recipient's upper estimate after every transfer.
//!
//! The empirical validation of these theorems against the actual
//! distribution algorithm lives in this crate's `tests/theorem_bounds.rs`
//! property suite.

/// Theorem 1: when host `i` **replicates** object `x` elsewhere, the load
/// on `i` may decrease by at most `¾·ℓ`, where `ℓ = load(x_i)` before the
/// replication.
///
/// # Examples
///
/// ```
/// assert_eq!(radar_core::bounds::replication_source_decrease(8.0), 6.0);
/// ```
pub fn replication_source_decrease(load: f64) -> f64 {
    0.75 * load
}

/// Theorems 2 and 4: when host `i` replicates **or** migrates object `x`
/// to host `j`, the load on `j` may increase by at most
/// `4·ℓ/aff(x_i)`.
///
/// # Panics
///
/// Panics if `aff` is zero.
///
/// # Examples
///
/// ```
/// assert_eq!(radar_core::bounds::target_increase(8.0, 2), 16.0);
/// ```
pub fn target_increase(load: f64, aff: u32) -> f64 {
    assert!(aff >= 1, "a replica's affinity is at least 1");
    4.0 * load / aff as f64
}

/// Theorem 3: when host `i` **migrates** object `x` to host `j` (moving
/// one affinity unit), the load on `i` may decrease by at most
/// `ℓ/aff + ¾·ℓ·(aff−1)/aff`.
///
/// For `aff = 1` this is exactly `ℓ` — migrating the only affinity unit
/// can shed the object's entire load, but no more.
///
/// # Panics
///
/// Panics if `aff` is zero.
///
/// # Examples
///
/// ```
/// use radar_core::bounds::migration_source_decrease;
/// assert_eq!(migration_source_decrease(8.0, 1), 8.0);
/// assert_eq!(migration_source_decrease(8.0, 2), 4.0 + 3.0);
/// ```
pub fn migration_source_decrease(load: f64, aff: u32) -> f64 {
    assert!(aff >= 1, "a replica's affinity is at least 1");
    let a = aff as f64;
    load / a + 0.75 * load * (a - 1.0) / a
}

/// Theorem 5: if hosts replicate only when an object's unit access count
/// exceeds `m`, then after the replication every replica's unit access
/// count is at least `m/4` — even under concurrent independent
/// replications. With the parameter constraint `4u < m` this exceeds the
/// deletion threshold `u`, so replication can never trigger deletion.
///
/// # Examples
///
/// ```
/// assert_eq!(radar_core::bounds::post_replication_unit_count_floor(0.18), 0.045);
/// ```
pub fn post_replication_unit_count_floor(m: f64) -> f64 {
    m / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_decrease_is_three_quarters() {
        assert_eq!(replication_source_decrease(100.0), 75.0);
        assert_eq!(replication_source_decrease(0.0), 0.0);
    }

    #[test]
    fn target_increase_scales_inverse_affinity() {
        assert_eq!(target_increase(10.0, 1), 40.0);
        assert_eq!(target_increase(10.0, 4), 10.0);
    }

    #[test]
    fn migration_decrease_affinity_one_is_full_load() {
        assert_eq!(migration_source_decrease(12.0, 1), 12.0);
    }

    #[test]
    fn migration_decrease_between_unit_and_full() {
        for aff in 2..10 {
            let d = migration_source_decrease(10.0, aff);
            assert!(d > 10.0 / aff as f64);
            assert!(d < 10.0);
        }
    }

    #[test]
    fn migration_decrease_never_below_replication_decrease() {
        // Migration sheds at least as much as replication would (it also
        // removes the local affinity unit).
        for aff in 1..10 {
            assert!(
                migration_source_decrease(10.0, aff) + 1e-12
                    >= replication_source_decrease(10.0) / aff as f64
            );
        }
    }

    #[test]
    fn theorem5_floor_exceeds_deletion_threshold_under_constraint() {
        let u = 0.03;
        let m = 0.18;
        assert!(post_replication_unit_count_floor(m) > u);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_affinity_rejected() {
        let _ = target_increase(1.0, 0);
    }
}
