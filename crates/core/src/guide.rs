//! # A guided tour of the protocol
//!
//! This documentation-only module walks through one object's life under
//! the protocol, connecting the paper's algorithms to this crate's
//! types. Nothing here is code you call; it is the map.
//!
//! ## The cast
//!
//! A hosting platform is a set of backbone nodes, each a router plus a
//! hosting server ([`HostState`]). Requests enter at *gateways* and are
//! steered by a *redirector* ([`Redirector`]) that knows, per object,
//! which hosts currently hold replicas. All tunables live in [`Params`];
//! the paper's Table 1 values are `Params::paper()`.
//!
//! ## Serving a request (Fig. 2)
//!
//! When a request for object `x` arrives from gateway `g`, the
//! redirector runs [`Redirector::choose_replica`]. It considers exactly
//! two candidates:
//!
//! * `p` — the replica *closest* to `g` (hop count from the routing
//!   database), and
//! * `q` — the replica with the smallest *unit request count*
//!   `rcnt/aff`, where `rcnt` counts how often the redirector has picked
//!   that replica and `aff` is its affinity.
//!
//! `p` serves the request unless its unit count exceeds
//! `distribution_constant` (2) times `q`'s — proximity wins until a
//! replica has soaked up twice its fair share, at which point the
//! least-used replica takes over. The beauty of the rule is what it
//! does **not** need: nobody measures server load, yet an overloaded
//! replica sheds exactly a bounded fraction of its traffic
//! ([`bounds`], Theorems 1–4), and those bounds are what make
//! autonomous placement possible.
//!
//! *Affinity* deserves a word: a host holding "three replicas" of `x`
//! really holds one copy with `aff = 3`, which simply triples its fair
//! share in the unit-count arithmetic. Affinity is how the protocol
//! expresses "this replica should carry more of the load" without
//! moving bytes.
//!
//! ## Watching demand (§4.1)
//!
//! Every response from host `s` to gateway `g` travels the *preference
//! path* — the router path between them. Host `s` increments an access
//! count `cnt(p, x)` for **every** node `p` on that path
//! ([`HostState::record_access`]): each was a place that would have
//! served this request with less backbone traffic. Meanwhile
//! [`HostState::record_serviced`] feeds the load measurement — the
//! serviced-request rate over 20-second intervals (§2.1).
//!
//! ## Deciding placement (Fig. 3, [`placement::run_placement`])
//!
//! Every `placement_period` (100 s) the host walks its objects:
//!
//! 1. **Drop** an affinity unit whose unit access rate fell below the
//!    deletion threshold `u` — the redirector refuses to let the last
//!    replica die ([`Redirector::request_drop`]).
//! 2. **Geo-migrate** when some other node sat on more than
//!    `MIGR_RATIO` (60%) of the object's preference paths: most of this
//!    object's traffic would rather be served from over there. The
//!    host offers the object to the farthest such candidate
//!    (`CreateObj("MIGRATE")`, [`placement::handle_create_obj`]).
//! 3. **Geo-replicate** hot objects (unit access rate above `m = 6u`)
//!    toward any node on more than `REPL_RATIO` (1/6) of paths.
//! 4. **Offload** (Fig. 5): if the host's load exceeds the high
//!    watermark, it sheds objects *in bulk* to one under-loaded
//!    recipient — and here the Theorem bounds earn their keep. After
//!    each transfer the host lowers its own load estimate by the
//!    maximal possible decrease and raises the recipient's by the
//!    maximal possible increase ([`LoadEstimator`]), so it can move
//!    many objects on one decision without waiting 20 seconds between
//!    moves to observe what actually happened.
//!
//! The candidate always runs its own admission test: refuse above the
//! low watermark, and refuse migrations whose Theorem-4 bound could
//! breach the high watermark. Replications may overshoot temporarily —
//! the paper allows it deliberately, to bootstrap replication out of a
//! hot spot.
//!
//! ## Why it doesn't oscillate
//!
//! Three mechanisms conspire:
//!
//! * **Theorem 5**: with `4u < m` (enforced by [`ParamsBuilder`]), a
//!   replica created because demand exceeded `m` cannot immediately
//!   fall below `u` — replicate→delete cycles are impossible under
//!   steady demand.
//! * **Watermark hysteresis**: offloading engages above `hw` and
//!   disengages below `lw < hw`.
//! * **Partial-window exemption**: a replica acquired mid-period is not
//!   judged until it has lived one full period (see
//!   [`placement`]'s module docs for why the literal pseudocode needs
//!   this repair).
//!
//! ## Consistency (§5, [`Catalog`])
//!
//! Objects updated only by their provider replicate freely (primary
//! copy, asynchronous propagation). Objects whose per-access updates
//! do not commute carry a replica cap ([`ObjectKind::NonCommuting`]) —
//! at cap 1 they are migrate-only. The placement algorithm consults the
//! cap through [`placement::PlacementEnv::may_replicate`].
//!
//! ## Driving it
//!
//! Everything above is sans-I/O: [`HostState`] and [`Redirector`] are
//! plain state machines, and a [`placement::PlacementEnv`]
//! implementation supplies the platform (candidate hosts, redirector
//! notifications, load reports, routing distances). The `radar-sim`
//! crate is one such environment — a discrete-event simulation of the
//! paper's testbed — and the crate's test suites are another.
//!
//! [`HostState`]: crate::HostState
//! [`Redirector`]: crate::Redirector
//! [`Redirector::choose_replica`]: crate::Redirector::choose_replica
//! [`Redirector::request_drop`]: crate::Redirector::request_drop
//! [`HostState::record_access`]: crate::HostState::record_access
//! [`HostState::record_serviced`]: crate::HostState::record_serviced
//! [`Params`]: crate::Params
//! [`ParamsBuilder`]: crate::ParamsBuilder
//! [`LoadEstimator`]: crate::LoadEstimator
//! [`Catalog`]: crate::Catalog
//! [`ObjectKind::NonCommuting`]: crate::ObjectKind::NonCommuting
//! [`bounds`]: crate::bounds
//! [`placement`]: crate::placement
//! [`placement::run_placement`]: crate::placement::run_placement
//! [`placement::handle_create_obj`]: crate::placement::handle_create_obj
//! [`placement::PlacementEnv`]: crate::placement::PlacementEnv
//! [`placement::PlacementEnv::may_replicate`]: crate::placement::PlacementEnv::may_replicate
