//! The object catalog: sizes, consistency classes, and primary copies
//! (paper §5).

use radar_simnet::NodeId;

use crate::ObjectId;

/// The paper's §5 consistency taxonomy of hosted objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// Type 1: "objects that do not change as the result of user
    /// accesses" — static pages or read-only dynamic services. Updated
    /// only by the content provider via the primary copy; replicate
    /// freely. The paper cites studies putting 80–95% of Web accesses in
    /// this class.
    Immutable,
    /// Type 2: per-access modifications commute (e.g. hit counters whose
    /// values may be merged). Replicate freely provided statistics are
    /// merged out of band.
    CommutingUpdates,
    /// Type 3: non-commuting per-access updates. "In general, can only be
    /// migrated"; when the application tolerates some inconsistency, a
    /// bounded number of replicas is allowed.
    NonCommuting {
        /// Maximum number of simultaneous physical replicas (≥ 1).
        /// 1 reproduces the strict migrate-only regime.
        max_replicas: u32,
    },
}

impl ObjectKind {
    /// Whether an object of this kind, currently on `replica_count`
    /// distinct hosts, may gain a replica on a *new* host.
    pub fn may_add_replica(self, replica_count: usize) -> bool {
        match self {
            ObjectKind::Immutable | ObjectKind::CommutingUpdates => true,
            ObjectKind::NonCommuting { max_replicas } => replica_count < max_replicas as usize,
        }
    }
}

/// Static description of every hosted object: uniform size (the paper
/// simulates 12 KB pages), consistency kind, and the node holding the
/// *primary copy* used for provider-update propagation.
///
/// # Examples
///
/// ```
/// use radar_core::{Catalog, ObjectId, ObjectKind};
/// use radar_simnet::NodeId;
///
/// // 100 immutable objects of 12 KB, primaries round-robin over 4 nodes.
/// let catalog = Catalog::uniform(100, 12 * 1024, 4);
/// assert_eq!(catalog.primary(ObjectId::new(5)), NodeId::new(1));
/// assert!(catalog.kind(ObjectId::new(0)).may_add_replica(10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    kinds: Vec<ObjectKind>,
    size_bytes: u64,
    primaries: Vec<NodeId>,
}

impl Catalog {
    /// A catalog of `num_objects` immutable objects of `size_bytes` each,
    /// with primaries assigned round-robin over `num_nodes` nodes — the
    /// paper's initial configuration ("object i is assigned to node
    /// i mod 53").
    ///
    /// # Panics
    ///
    /// Panics if `num_objects` or `num_nodes` is zero, or `num_nodes`
    /// exceeds `u16::MAX`.
    pub fn uniform(num_objects: u32, size_bytes: u64, num_nodes: u16) -> Self {
        assert!(num_objects > 0, "catalog needs at least one object");
        assert!(num_nodes > 0, "catalog needs at least one node");
        let kinds = vec![ObjectKind::Immutable; num_objects as usize];
        let primaries = (0..num_objects)
            .map(|i| NodeId::new((i % num_nodes as u32) as u16))
            .collect();
        Self {
            kinds,
            size_bytes,
            primaries,
        }
    }

    /// A catalog with explicitly provided kinds and primaries.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` and `primaries` differ in length, are empty, or
    /// any `NonCommuting` cap is zero.
    pub fn from_parts(kinds: Vec<ObjectKind>, size_bytes: u64, primaries: Vec<NodeId>) -> Self {
        assert_eq!(
            kinds.len(),
            primaries.len(),
            "kinds and primaries must describe the same objects"
        );
        assert!(!kinds.is_empty(), "catalog needs at least one object");
        for (i, k) in kinds.iter().enumerate() {
            if let ObjectKind::NonCommuting { max_replicas } = k {
                assert!(
                    *max_replicas >= 1,
                    "object {i}: non-commuting replica cap must be at least 1"
                );
            }
        }
        Self {
            kinds,
            size_bytes,
            primaries,
        }
    }

    /// Number of objects described.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` if the catalog describes no objects (never true for a
    /// constructed catalog; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// All object ids, ascending.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        (0..self.kinds.len() as u32).map(ObjectId::new)
    }

    /// Uniform object size in bytes (12 KB in the paper's Table 1).
    pub fn object_size(&self) -> u64 {
        self.size_bytes
    }

    /// Consistency kind of `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn kind(&self, object: ObjectId) -> ObjectKind {
        self.kinds[object.index()]
    }

    /// The node holding the primary copy of `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn primary(&self, object: ObjectId) -> NodeId {
        self.primaries[object.index()]
    }

    /// Moves the primary copy of `object` to `node` (e.g. after the
    /// original host migrates the object away).
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn set_primary(&mut self, object: ObjectId, node: NodeId) {
        self.primaries[object.index()] = node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_round_robin_primaries() {
        let c = Catalog::uniform(10, 12_288, 3);
        assert_eq!(c.len(), 10);
        assert!(!c.is_empty());
        assert_eq!(c.object_size(), 12_288);
        assert_eq!(c.primary(ObjectId::new(0)), NodeId::new(0));
        assert_eq!(c.primary(ObjectId::new(4)), NodeId::new(1));
        assert_eq!(c.primary(ObjectId::new(9)), NodeId::new(0));
        assert!(c.objects().all(|x| c.kind(x) == ObjectKind::Immutable));
    }

    #[test]
    fn replica_caps() {
        assert!(ObjectKind::Immutable.may_add_replica(1_000_000));
        assert!(ObjectKind::CommutingUpdates.may_add_replica(42));
        let capped = ObjectKind::NonCommuting { max_replicas: 3 };
        assert!(capped.may_add_replica(2));
        assert!(!capped.may_add_replica(3));
        let strict = ObjectKind::NonCommuting { max_replicas: 1 };
        assert!(!strict.may_add_replica(1));
    }

    #[test]
    fn from_parts_and_set_primary() {
        let mut c = Catalog::from_parts(
            vec![
                ObjectKind::Immutable,
                ObjectKind::NonCommuting { max_replicas: 2 },
            ],
            1024,
            vec![NodeId::new(0), NodeId::new(1)],
        );
        assert_eq!(
            c.kind(ObjectId::new(1)),
            ObjectKind::NonCommuting { max_replicas: 2 }
        );
        c.set_primary(ObjectId::new(0), NodeId::new(5));
        assert_eq!(c.primary(ObjectId::new(0)), NodeId::new(5));
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn mismatched_parts_rejected() {
        let _ = Catalog::from_parts(vec![ObjectKind::Immutable], 1, vec![]);
    }

    #[test]
    #[should_panic(expected = "cap must be at least 1")]
    fn zero_cap_rejected() {
        let _ = Catalog::from_parts(
            vec![ObjectKind::NonCommuting { max_replicas: 0 }],
            1,
            vec![NodeId::new(0)],
        );
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_uniform_rejected() {
        let _ = Catalog::uniform(0, 1, 1);
    }
}
