//! The object catalog: sizes, consistency classes, and primary copies
//! (paper §5).

use radar_simnet::NodeId;

use crate::ObjectId;

/// The paper's §5 consistency taxonomy of hosted objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// Type 1: "objects that do not change as the result of user
    /// accesses" — static pages or read-only dynamic services. Updated
    /// only by the content provider via the primary copy; replicate
    /// freely. The paper cites studies putting 80–95% of Web accesses in
    /// this class.
    Immutable,
    /// Type 2: per-access modifications commute (e.g. hit counters whose
    /// values may be merged). Replicate freely provided statistics are
    /// merged out of band.
    CommutingUpdates,
    /// Type 3: non-commuting per-access updates. "In general, can only be
    /// migrated"; when the application tolerates some inconsistency, a
    /// bounded number of replicas is allowed.
    NonCommuting {
        /// Maximum number of simultaneous physical replicas (≥ 1).
        /// 1 reproduces the strict migrate-only regime.
        max_replicas: u32,
    },
}

impl ObjectKind {
    /// Whether an object of this kind, currently on `replica_count`
    /// distinct hosts, may gain a replica on a *new* host.
    pub fn may_add_replica(self, replica_count: usize) -> bool {
        match self {
            ObjectKind::Immutable | ObjectKind::CommutingUpdates => true,
            ObjectKind::NonCommuting { max_replicas } => replica_count < max_replicas as usize,
        }
    }
}

/// A named mix of §5 consistency classes for catalog construction —
/// the simulator's `--consistency` knob. Kinds are assigned to objects
/// deterministically by object index, so the same mix name always
/// yields the same catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyMix {
    /// Every object is type-1 ([`ObjectKind::Immutable`]) — the paper's
    /// simulated configuration and this simulator's default.
    ReadOnly,
    /// 80% type-1, 15% type-2, 5% type-3 (migrate-only, cap 1) — the
    /// low end of the paper's "80–95% of Web accesses" estimate for
    /// type-1 content.
    Mixed,
    /// 50% type-1, 30% type-2, 20% type-3 (half capped at 2 replicas,
    /// half strict migrate-only) — a stress mix for update propagation
    /// and replica-cap enforcement.
    WriteHeavy,
}

impl ConsistencyMix {
    /// Every named mix, in CLI listing order.
    pub const ALL: &'static [ConsistencyMix] = &[
        ConsistencyMix::ReadOnly,
        ConsistencyMix::Mixed,
        ConsistencyMix::WriteHeavy,
    ];

    /// Stable name used on the command line and in reports.
    pub fn name(self) -> &'static str {
        match self {
            ConsistencyMix::ReadOnly => "read-only",
            ConsistencyMix::Mixed => "mixed",
            ConsistencyMix::WriteHeavy => "write-heavy",
        }
    }

    /// Parses a mix name; `None` for unknown names (callers list
    /// [`ALL`](Self::ALL) in their error message).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// The consistency kind this mix assigns to object `index`.
    pub fn kind_of(self, index: u32) -> ObjectKind {
        match self {
            ConsistencyMix::ReadOnly => ObjectKind::Immutable,
            ConsistencyMix::Mixed => match index % 20 {
                0..=15 => ObjectKind::Immutable,
                16..=18 => ObjectKind::CommutingUpdates,
                _ => ObjectKind::NonCommuting { max_replicas: 1 },
            },
            ConsistencyMix::WriteHeavy => match index % 10 {
                0..=4 => ObjectKind::Immutable,
                5..=7 => ObjectKind::CommutingUpdates,
                8 => ObjectKind::NonCommuting { max_replicas: 2 },
                _ => ObjectKind::NonCommuting { max_replicas: 1 },
            },
        }
    }
}

impl std::fmt::Display for ConsistencyMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Static description of every hosted object: uniform size (the paper
/// simulates 12 KB pages), consistency kind, and the node holding the
/// *primary copy* used for provider-update propagation.
///
/// # Examples
///
/// ```
/// use radar_core::{Catalog, ObjectId, ObjectKind};
/// use radar_simnet::NodeId;
///
/// // 100 immutable objects of 12 KB, primaries round-robin over 4 nodes.
/// let catalog = Catalog::uniform(100, 12 * 1024, 4);
/// assert_eq!(catalog.primary(ObjectId::new(5)), NodeId::new(1));
/// assert!(catalog.kind(ObjectId::new(0)).may_add_replica(10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    kinds: Vec<ObjectKind>,
    size_bytes: u64,
    primaries: Vec<NodeId>,
}

impl Catalog {
    /// A catalog of `num_objects` immutable objects of `size_bytes` each,
    /// with primaries assigned round-robin over `num_nodes` nodes — the
    /// paper's initial configuration ("object i is assigned to node
    /// i mod 53").
    ///
    /// # Panics
    ///
    /// Panics if `num_objects` or `num_nodes` is zero, or `num_nodes`
    /// exceeds `u16::MAX`.
    pub fn uniform(num_objects: u32, size_bytes: u64, num_nodes: u16) -> Self {
        assert!(num_objects > 0, "catalog needs at least one object");
        assert!(num_nodes > 0, "catalog needs at least one node");
        let kinds = vec![ObjectKind::Immutable; num_objects as usize];
        let primaries = (0..num_objects)
            .map(|i| NodeId::new((i % num_nodes as u32) as u16))
            .collect();
        Self {
            kinds,
            size_bytes,
            primaries,
        }
    }

    /// A catalog whose kinds follow a named [`ConsistencyMix`], with
    /// primaries assigned round-robin like [`uniform`](Self::uniform).
    /// `with_mix(n, s, k, ConsistencyMix::ReadOnly)` equals
    /// `uniform(n, s, k)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_objects` or `num_nodes` is zero.
    pub fn with_mix(
        num_objects: u32,
        size_bytes: u64,
        num_nodes: u16,
        mix: ConsistencyMix,
    ) -> Self {
        let mut catalog = Self::uniform(num_objects, size_bytes, num_nodes);
        for (i, kind) in catalog.kinds.iter_mut().enumerate() {
            *kind = mix.kind_of(i as u32);
        }
        catalog
    }

    /// A catalog with explicitly provided kinds and primaries.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` and `primaries` differ in length, are empty, or
    /// any `NonCommuting` cap is zero.
    pub fn from_parts(kinds: Vec<ObjectKind>, size_bytes: u64, primaries: Vec<NodeId>) -> Self {
        assert_eq!(
            kinds.len(),
            primaries.len(),
            "kinds and primaries must describe the same objects"
        );
        assert!(!kinds.is_empty(), "catalog needs at least one object");
        for (i, k) in kinds.iter().enumerate() {
            if let ObjectKind::NonCommuting { max_replicas } = k {
                assert!(
                    *max_replicas >= 1,
                    "object {i}: non-commuting replica cap must be at least 1"
                );
            }
        }
        Self {
            kinds,
            size_bytes,
            primaries,
        }
    }

    /// Number of objects described.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` if the catalog describes no objects (never true for a
    /// constructed catalog; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// All object ids, ascending.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        (0..self.kinds.len() as u32).map(ObjectId::new)
    }

    /// Uniform object size in bytes (12 KB in the paper's Table 1).
    pub fn object_size(&self) -> u64 {
        self.size_bytes
    }

    /// Consistency kind of `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn kind(&self, object: ObjectId) -> ObjectKind {
        self.kinds[object.index()]
    }

    /// The node holding the primary copy of `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn primary(&self, object: ObjectId) -> NodeId {
        self.primaries[object.index()]
    }

    /// Moves the primary copy of `object` to `node` (e.g. after the
    /// original host migrates the object away).
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn set_primary(&mut self, object: ObjectId, node: NodeId) {
        self.primaries[object.index()] = node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_round_robin_primaries() {
        let c = Catalog::uniform(10, 12_288, 3);
        assert_eq!(c.len(), 10);
        assert!(!c.is_empty());
        assert_eq!(c.object_size(), 12_288);
        assert_eq!(c.primary(ObjectId::new(0)), NodeId::new(0));
        assert_eq!(c.primary(ObjectId::new(4)), NodeId::new(1));
        assert_eq!(c.primary(ObjectId::new(9)), NodeId::new(0));
        assert!(c.objects().all(|x| c.kind(x) == ObjectKind::Immutable));
    }

    #[test]
    fn replica_caps() {
        assert!(ObjectKind::Immutable.may_add_replica(1_000_000));
        assert!(ObjectKind::CommutingUpdates.may_add_replica(42));
        let capped = ObjectKind::NonCommuting { max_replicas: 3 };
        assert!(capped.may_add_replica(2));
        assert!(!capped.may_add_replica(3));
        let strict = ObjectKind::NonCommuting { max_replicas: 1 };
        assert!(!strict.may_add_replica(1));
    }

    #[test]
    fn mixes_parse_and_assign_deterministically() {
        for &mix in ConsistencyMix::ALL {
            assert_eq!(ConsistencyMix::parse(mix.name()), Some(mix));
            assert_eq!(mix.to_string(), mix.name());
        }
        assert_eq!(ConsistencyMix::parse("no-such-mix"), None);
        assert_eq!(
            Catalog::with_mix(40, 1024, 4, ConsistencyMix::ReadOnly),
            Catalog::uniform(40, 1024, 4)
        );
        // Mixed: 80/15/5 over every 20-object stripe.
        let c = Catalog::with_mix(40, 1024, 4, ConsistencyMix::Mixed);
        let count = |k: ObjectKind| c.objects().filter(|&x| c.kind(x) == k).count();
        assert_eq!(count(ObjectKind::Immutable), 32);
        assert_eq!(count(ObjectKind::CommutingUpdates), 6);
        assert_eq!(count(ObjectKind::NonCommuting { max_replicas: 1 }), 2);
        // Write-heavy includes both capped and migrate-only type-3.
        let w = Catalog::with_mix(20, 1024, 4, ConsistencyMix::WriteHeavy);
        let count = |k: ObjectKind| w.objects().filter(|&x| w.kind(x) == k).count();
        assert_eq!(count(ObjectKind::Immutable), 10);
        assert_eq!(count(ObjectKind::CommutingUpdates), 6);
        assert_eq!(count(ObjectKind::NonCommuting { max_replicas: 2 }), 2);
        assert_eq!(count(ObjectKind::NonCommuting { max_replicas: 1 }), 2);
    }

    #[test]
    fn from_parts_and_set_primary() {
        let mut c = Catalog::from_parts(
            vec![
                ObjectKind::Immutable,
                ObjectKind::NonCommuting { max_replicas: 2 },
            ],
            1024,
            vec![NodeId::new(0), NodeId::new(1)],
        );
        assert_eq!(
            c.kind(ObjectId::new(1)),
            ObjectKind::NonCommuting { max_replicas: 2 }
        );
        c.set_primary(ObjectId::new(0), NodeId::new(5));
        assert_eq!(c.primary(ObjectId::new(0)), NodeId::new(5));
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn mismatched_parts_rejected() {
        let _ = Catalog::from_parts(vec![ObjectKind::Immutable], 1, vec![]);
    }

    #[test]
    #[should_panic(expected = "cap must be at least 1")]
    fn zero_cap_rejected() {
        let _ = Catalog::from_parts(
            vec![ObjectKind::NonCommuting { max_replicas: 0 }],
            1,
            vec![NodeId::new(0)],
        );
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_uniform_rejected() {
        let _ = Catalog::uniform(0, 1, 1);
    }
}
