//! The redirector: the request distribution algorithm (paper Fig. 2)
//! over a replica [`Directory`].

use radar_simnet::{NodeId, RoutingTable};

use crate::directory::{Directory, DirectoryShard, ReplicaSet};
use crate::ObjectId;

/// Per-replica bookkeeping the redirector keeps (paper §3): the request
/// count `rcnt(x_s)` and the replica affinity `aff_r(x_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaInfo {
    /// The hosting node.
    pub host: NodeId,
    /// How many times the redirector has chosen this replica since the
    /// last replica-set change.
    pub rcnt: u64,
    /// Replica affinity: "a compact way of representing multiple replicas
    /// of the same object on the same host".
    pub aff: u32,
}

impl ReplicaInfo {
    /// The *unit request count* `rcnt/aff` — the load-balance score used
    /// by the distribution algorithm.
    pub fn unit_rcnt(&self) -> f64 {
        self.rcnt as f64 / self.aff as f64
    }
}

/// One candidate replica as the distribution algorithm saw it at
/// decision time (request counts snapshotted *before* the winner's
/// count increments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChoiceCandidate {
    /// The hosting node.
    pub host: NodeId,
    /// Request count at decision time.
    pub rcnt: u64,
    /// Replica affinity.
    pub aff: u32,
    /// Hop distance from the host to the requesting gateway.
    pub distance: u32,
}

impl ChoiceCandidate {
    /// The unit request count `rcnt/aff` the algorithm compared.
    pub fn unit_rcnt(&self) -> f64 {
        self.rcnt as f64 / self.aff as f64
    }
}

/// Which arm of the Fig. 2 distribution rule selected the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceBranch {
    /// The closest replica `p` served (the default arm).
    Closest,
    /// `unit_rcnt(p)/constant > unit_rcnt(q)`: the least-requested
    /// replica `q` served to shed load.
    LeastRequested,
}

impl ChoiceBranch {
    /// Stable string tag (`closest` / `least-requested`) used in event
    /// logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            ChoiceBranch::Closest => "closest",
            ChoiceBranch::LeastRequested => "least-requested",
        }
    }
}

/// The full input and outcome of one Fig. 2 decision, for the flight
/// recorder: every usable candidate, the identified `p` and `q`, their
/// unit request counts, and which branch won.
#[derive(Debug, Clone, PartialEq)]
pub struct ChoiceExplanation {
    /// The host chosen to serve the request.
    pub chosen: NodeId,
    /// Which rule picked it.
    pub branch: ChoiceBranch,
    /// The distribution constant in force.
    pub constant: f64,
    /// The closest usable replica `p`.
    pub closest: NodeId,
    /// The usable replica `q` with the least unit request count.
    pub least: NodeId,
    /// `unit_rcnt(p)` at decision time.
    pub unit_closest: f64,
    /// `unit_rcnt(q)` at decision time.
    pub unit_least: f64,
    /// Every usable candidate (sorted by host id, counts pre-increment).
    pub candidates: Vec<ChoiceCandidate>,
}

impl Default for ChoiceExplanation {
    /// A placeholder value for reusable scratch explanations; every
    /// field is overwritten when a decision fills it.
    fn default() -> Self {
        Self {
            chosen: NodeId::new(0),
            branch: ChoiceBranch::Closest,
            constant: 0.0,
            closest: NodeId::new(0),
            least: NodeId::new(0),
            unit_closest: 0.0,
            unit_least: 0.0,
            candidates: Vec::new(),
        }
    }
}

/// The redirector responsible for a set of objects.
///
/// A RaDaR deployment hash-partitions the URL namespace over many
/// redirectors; each object has exactly one responsible redirector, so a
/// single `Redirector` value faithfully models the protocol (the paper's
/// simulation likewise uses one redirector co-located with the network
/// centroid).
///
/// The redirector is a thin decision layer over a replica [`Directory`]
/// (which owns the per-object replica sets, request counts, and
/// affinities — see that type for the membership protocol):
///
/// * [`choose_replica`](Self::choose_replica) — Fig. 2's distribution rule;
/// * the directory's notification surface, re-exposed here
///   ([`notify_created`](Self::notify_created),
///   [`request_drop`](Self::request_drop), …) so protocol call sites keep
///   one entry point.
///
/// # A note on the published pseudocode
///
/// Fig. 2 of the paper labels its two branch arms inconsistently with the
/// prose and with the worked America/Europe example. We implement the
/// semantics the prose defines: *serve from the closest replica `p`
/// unless `unit_rcnt(p) / constant > unit_rcnt(q)` for the least-requested
/// replica `q`, in which case serve from `q`*.
#[derive(Debug, Clone, PartialEq)]
pub struct Redirector {
    directory: Directory,
    constant: f64,
}

impl Redirector {
    /// Creates a redirector responsible for objects `0..num_objects`,
    /// with the given distribution constant (2.0 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `constant` is not finite and greater than 1.
    pub fn new(num_objects: u32, constant: f64) -> Self {
        assert!(
            constant.is_finite() && constant > 1.0,
            "distribution constant must be finite and > 1, got {constant}"
        );
        Self {
            directory: Directory::new(num_objects),
            constant,
        }
    }

    /// The replica directory behind this redirector.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Number of objects this redirector is responsible for.
    pub fn num_objects(&self) -> usize {
        self.directory.num_objects()
    }

    /// Installs an initial replica (bootstrap placement); see
    /// [`Directory::install`].
    pub fn install(&mut self, object: ObjectId, host: NodeId) {
        self.directory.install(object, host);
    }

    /// The current replicas of `object` (sorted by host id).
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn replicas(&self, object: ObjectId) -> &[ReplicaInfo] {
        self.directory.replicas(object)
    }

    /// Number of distinct hosts holding `object`.
    pub fn replica_count(&self, object: ObjectId) -> usize {
        self.directory.replica_count(object)
    }

    /// Sum of affinities across all replicas of `object` — the number of
    /// *logical* replicas.
    pub fn total_affinity(&self, object: ObjectId) -> u32 {
        self.directory.total_affinity(object)
    }

    /// Total physical replicas across every object, maintained
    /// incrementally by the directory (no per-object rescan).
    pub fn total_replicas(&self) -> u64 {
        self.directory.total_replicas()
    }

    /// Total number of replica-set change notifications processed.
    pub fn notifications(&self) -> u64 {
        self.directory.notifications()
    }

    /// The object's provider-update version; see
    /// [`Directory::update_version`].
    pub fn update_version(&self, object: ObjectId) -> u64 {
        self.directory.update_version(object)
    }

    /// Records one provider update against `object` and returns the new
    /// update version; see [`Directory::bump_update_version`].
    pub fn bump_update_version(&mut self, object: ObjectId) -> u64 {
        self.directory.bump_update_version(object)
    }

    /// Starts a placement-epoch batch on the directory; see
    /// [`Directory::begin_batch`].
    pub fn begin_batch(&mut self) {
        self.directory.begin_batch();
    }

    /// Commits the directory's placement-epoch batch; see
    /// [`Directory::commit_batch`]. Returns the number of objects whose
    /// counts were reset.
    pub fn commit_batch(&mut self) -> usize {
        self.directory.commit_batch()
    }

    /// The request distribution algorithm (paper Fig. 2).
    ///
    /// Chooses the replica of `object` to serve a request entering at
    /// `gateway`, increments its request count, and returns its host.
    /// Returns `None` if the object currently has no replicas (a protocol
    /// invariant violation in a full system; reachable in unit tests).
    ///
    /// Ties: the closest replica breaks distance ties by lowest host id;
    /// the least-requested replica breaks unit-count ties by lowest host
    /// id. Both rules are deterministic.
    pub fn choose_replica(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        routes: &RoutingTable,
    ) -> Option<NodeId> {
        self.choose_replica_filtered(object, gateway, routes, &|_| true)
    }

    /// [`choose_replica`](Self::choose_replica) restricted to replicas
    /// whose host passes `usable` — the graceful-degradation path: under
    /// fault injection the platform passes a liveness/reachability
    /// predicate so the redirector skips crashed or partitioned replicas.
    /// Returns `None` when no usable replica exists (the platform then
    /// falls back to the object's primary copy).
    pub fn choose_replica_filtered(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        routes: &RoutingTable,
        usable: &dyn Fn(NodeId) -> bool,
    ) -> Option<NodeId> {
        self.choose_inner(object, gateway, routes, usable, false)
            .map(|(host, _)| host)
    }

    /// [`choose_replica_filtered`](Self::choose_replica_filtered) that
    /// additionally returns a [`ChoiceExplanation`] capturing the full
    /// Fig. 2 input — the flight recorder's entry point. Same
    /// side effects (the winner's request count increments); costs one
    /// candidate-vector allocation per call, so the hot path keeps
    /// using the plain variant when tracing is off.
    pub fn choose_replica_explained(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        routes: &RoutingTable,
        usable: &dyn Fn(NodeId) -> bool,
    ) -> Option<(NodeId, ChoiceExplanation)> {
        self.choose_inner(object, gateway, routes, usable, true)
            .map(|(host, expl)| (host, expl.expect("explanation requested")))
    }

    /// Fig. 2 over a pre-filtered candidate list — the entry point for
    /// redirect engines that cache candidates across requests. Each
    /// candidate is `(entry_index, distance)`: the replica's index in
    /// [`replicas`](Self::replicas) and its precomputed hop distance to
    /// the requesting gateway. The caller guarantees the list matches the
    /// object's *current* replica set (cache keyed on
    /// [`Directory::version`]); usability filtering has already happened.
    ///
    /// `closest` optionally names the entry index of the closest
    /// candidate `p` (minimum `(distance, host)`). Unlike request
    /// counts, `p` is a pure function of the candidate list, so callers
    /// caching the list can precompute it once and skip the per-request
    /// scan; `None` scans here.
    ///
    /// Identical decision semantics and side effects to the other
    /// variants: the winner's request count increments. Returns `None`
    /// for an empty candidate list.
    ///
    /// # Panics
    ///
    /// Panics if an entry index is out of range for the replica set —
    /// the symptom of a stale cache.
    pub fn choose_among(
        &mut self,
        object: ObjectId,
        candidates: &[(u32, u32)],
        closest: Option<u32>,
        explain: bool,
    ) -> Option<(NodeId, Option<ChoiceExplanation>)> {
        if explain {
            let mut expl = ChoiceExplanation::default();
            let host = self.decide(object, candidates, closest, Some(&mut expl))?;
            Some((host, Some(expl)))
        } else {
            self.decide(object, candidates, closest, None)
                .map(|host| (host, None))
        }
    }

    /// [`choose_among`](Self::choose_among) that fills a caller-owned
    /// explanation instead of allocating one — the allocation-free
    /// tracing entry point. When `explanation` is `Some`, the scratch's
    /// candidate buffer is cleared and refilled in place (its fields are
    /// only meaningful when the call returns `Some`); `None` skips the
    /// snapshot entirely. Decision semantics and side effects are
    /// identical to every other `choose_*` variant.
    pub fn choose_among_into(
        &mut self,
        object: ObjectId,
        candidates: &[(u32, u32)],
        closest: Option<u32>,
        explanation: Option<&mut ChoiceExplanation>,
    ) -> Option<NodeId> {
        self.decide(object, candidates, closest, explanation)
    }

    /// Builds the usable candidate list, then runs the shared decision
    /// path. `explain` controls whether the decision snapshot is built
    /// (before the winner's count increments, so the explanation shows
    /// the counts the algorithm actually compared).
    fn choose_inner(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        routes: &RoutingTable,
        usable: &dyn Fn(NodeId) -> bool,
        explain: bool,
    ) -> Option<(NodeId, Option<ChoiceExplanation>)> {
        let candidates: Vec<(u32, u32)> = self
            .directory
            .replicas(object)
            .iter()
            .enumerate()
            .filter(|(_, e)| usable(e.host))
            .map(|(i, e)| (i as u32, routes.distance(e.host, gateway)))
            .collect();
        if explain {
            let mut expl = ChoiceExplanation::default();
            let host = self.decide(object, &candidates, None, Some(&mut expl))?;
            Some((host, Some(expl)))
        } else {
            self.decide(object, &candidates, None, None)
                .map(|host| (host, None))
        }
    }

    /// The single Fig. 2 code path behind every `choose_*` variant:
    /// identify `p` (closest) and `q` (least unit request count) among
    /// `candidates`, pick the branch, increment the winner. When
    /// `explanation` is `Some`, the snapshot is written into it in place
    /// (candidate buffer cleared and refilled) so tracing callers reuse
    /// one allocation across requests.
    fn decide(
        &mut self,
        object: ObjectId,
        candidates: &[(u32, u32)],
        closest: Option<u32>,
        explanation: Option<&mut ChoiceExplanation>,
    ) -> Option<NodeId> {
        decide_in(
            self.directory.set_mut(object),
            self.constant,
            candidates,
            closest,
            explanation,
        )
    }

    /// Force-removes every replica hosted on `host` — crash recovery;
    /// see [`Directory::purge_host`]. Returns the affected objects, for
    /// the caller's re-replication sweep.
    pub fn purge_host(&mut self, host: NodeId) -> Vec<ObjectId> {
        self.directory.purge_host(host)
    }

    /// Notification that `host` created a new copy of `object`; see
    /// [`Directory::notify_created`].
    pub fn notify_created(&mut self, object: ObjectId, host: NodeId) {
        self.directory.notify_created(object, host);
    }

    /// Notification that `host` reduced a replica's affinity; see
    /// [`Directory::notify_affinity`].
    pub fn notify_affinity(&mut self, object: ObjectId, host: NodeId, new_aff: u32) {
        self.directory.notify_affinity(object, host, new_aff);
    }

    /// A host's *intention to drop* its replica of `object`; see
    /// [`Directory::request_drop`]. Returns `true` if the drop was
    /// approved.
    pub fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
        self.directory.request_drop(object, host)
    }

    /// Splits the redirector's directory into `num_shards` contiguous
    /// object-range shards, each paired with the distribution constant so
    /// it can run Fig. 2 decisions independently; see
    /// [`Directory::split_shards`] for the partition contract. The parent
    /// keeps its aggregate counters and must not serve decisions until
    /// [`absorb_shards`](Self::absorb_shards) reunites the state.
    pub fn split_shards(&mut self, num_shards: usize) -> Vec<RedirectorShard> {
        let constant = self.constant;
        self.directory
            .split_shards(num_shards)
            .into_iter()
            .map(|shard| RedirectorShard { shard, constant })
            .collect()
    }

    /// Reunites shards produced by [`split_shards`](Self::split_shards);
    /// see [`Directory::absorb_shards`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Directory::absorb_shards`].
    pub fn absorb_shards(&mut self, shards: Vec<RedirectorShard>) {
        self.directory
            .absorb_shards(shards.into_iter().map(|s| s.shard).collect());
    }
}

/// The single Fig. 2 code path shared by [`Redirector`] and
/// [`RedirectorShard`]: identify `p` (closest) and `q` (least unit
/// request count) among `candidates`, pick the branch, increment the
/// winner. When `explanation` is `Some`, the snapshot is written into it
/// in place (candidate buffer cleared and refilled) so tracing callers
/// reuse one allocation across requests.
fn decide_in(
    set: &mut ReplicaSet,
    constant: f64,
    candidates: &[(u32, u32)],
    closest: Option<u32>,
    explanation: Option<&mut ChoiceExplanation>,
) -> Option<NodeId> {
    if candidates.is_empty() {
        return None;
    }
    // p: closest usable replica to the gateway (precomputed by
    // caching callers — it does not depend on request counts).
    let p_idx = closest.unwrap_or_else(|| {
        candidates
            .iter()
            .min_by_key(|&&(i, dist)| (dist, set.entries[i as usize].host))
            .expect("non-empty candidate set")
            .0
    });
    // q: usable replica with the smallest unit request count.
    let &(q_idx, _) = candidates
        .iter()
        .min_by(|&&(a, _), &&(b, _)| {
            let (ea, eb) = (&set.entries[a as usize], &set.entries[b as usize]);
            ea.unit_rcnt()
                .partial_cmp(&eb.unit_rcnt())
                .expect("unit request counts are finite")
                .then(ea.host.cmp(&eb.host))
        })
        .expect("non-empty candidate set");
    let ratio1 = set.entries[p_idx as usize].unit_rcnt();
    let ratio2 = set.entries[q_idx as usize].unit_rcnt();
    let (chosen, branch) = if ratio1 / constant > ratio2 {
        (q_idx as usize, ChoiceBranch::LeastRequested)
    } else {
        (p_idx as usize, ChoiceBranch::Closest)
    };
    if let Some(out) = explanation {
        out.chosen = set.entries[chosen].host;
        out.branch = branch;
        out.constant = constant;
        out.closest = set.entries[p_idx as usize].host;
        out.least = set.entries[q_idx as usize].host;
        out.unit_closest = ratio1;
        out.unit_least = ratio2;
        out.candidates.clear();
        out.candidates.extend(candidates.iter().map(|&(i, dist)| {
            let e = &set.entries[i as usize];
            ChoiceCandidate {
                host: e.host,
                rcnt: e.rcnt,
                aff: e.aff,
                distance: dist,
            }
        }));
    }
    set.entries[chosen].rcnt += 1;
    Some(set.entries[chosen].host)
}

/// One shard of a [`Redirector`]: a contiguous object slice of its
/// [`Directory`] plus the distribution constant, able to run Fig. 2
/// decisions and process membership notifications for its own objects
/// with no access to any other shard's state.
///
/// Produced by [`Redirector::split_shards`] and reunited by
/// [`Redirector::absorb_shards`]. The sharded simulator moves these
/// values onto worker threads between epoch barriers; because each holds
/// *ownership* of its slice (not a view), cross-shard interference is
/// ruled out by construction.
///
/// Decision semantics are bit-identical to the parent: the shard calls
/// the same decision code path ([`Redirector::choose_among_into`]'s
/// backing function) over the same [`ReplicaInfo`] entries, so a
/// decision made on a shard and the same decision made on the unsplit
/// redirector produce the same winner and the same count increments.
#[derive(Debug, Clone, PartialEq)]
pub struct RedirectorShard {
    shard: DirectoryShard,
    constant: f64,
}

impl RedirectorShard {
    /// The first object id this shard owns.
    pub fn base(&self) -> u32 {
        self.shard.base()
    }

    /// Number of objects this shard owns.
    pub fn len(&self) -> usize {
        self.shard.len()
    }

    /// `true` if the shard owns no objects (possible when there are more
    /// shards than objects).
    pub fn is_empty(&self) -> bool {
        self.shard.is_empty()
    }

    /// `true` if `object` belongs to this shard's range.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.shard.contains(object)
    }

    /// The current replicas of `object` (sorted by host id).
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn replicas(&self, object: ObjectId) -> &[ReplicaInfo] {
        self.shard.replicas(object)
    }

    /// The object's membership/affinity version; see
    /// [`Directory::version`].
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn version(&self, object: ObjectId) -> u64 {
        self.shard.version(object)
    }

    /// Installs a replica without a count reset; see
    /// [`Directory::install`].
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn install(&mut self, object: ObjectId, host: NodeId) {
        self.shard.install(object, host);
    }

    /// Creation notification (sent *after* the copy exists); see
    /// [`Directory::notify_created`].
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn notify_created(&mut self, object: ObjectId, host: NodeId) {
        self.shard.notify_created(object, host);
    }

    /// Drop arbitration (removal happens *before* the host deletes); see
    /// [`Directory::request_drop`]. Returns `true` if approved.
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
        self.shard.request_drop(object, host)
    }

    /// Fig. 2 over a pre-filtered candidate list, exactly like
    /// [`Redirector::choose_among_into`] but against this shard's slice
    /// of the directory.
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range or an entry index
    /// is stale.
    pub fn choose_among_into(
        &mut self,
        object: ObjectId,
        candidates: &[(u32, u32)],
        closest: Option<u32>,
        explanation: Option<&mut ChoiceExplanation>,
    ) -> Option<NodeId> {
        decide_in(
            self.shard.set_mut(object),
            self.constant,
            candidates,
            closest,
            explanation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_simnet::builders;

    fn x() -> ObjectId {
        ObjectId::new(0)
    }

    /// Two-continents fixture: node 0 = America, node 1 = Europe.
    fn setup() -> (Redirector, radar_simnet::RoutingTable) {
        let topo = builders::two_continents();
        let routes = topo.routes();
        let mut r = Redirector::new(1, 2.0);
        r.install(x(), NodeId::new(0));
        r.install(x(), NodeId::new(1));
        (r, routes)
    }

    #[test]
    fn balanced_demand_served_locally() {
        // Paper §3, first case: requests split evenly => every request
        // goes to its closest replica.
        let (mut r, routes) = setup();
        for _ in 0..100 {
            assert_eq!(
                r.choose_replica(x(), NodeId::new(0), &routes),
                Some(NodeId::new(0))
            );
            assert_eq!(
                r.choose_replica(x(), NodeId::new(1), &routes),
                Some(NodeId::new(1))
            );
        }
    }

    #[test]
    fn one_sided_demand_sheds_a_third() {
        // Paper §3, second case: all requests local to America => "the
        // load on the American site will be reduced by one-third on
        // average" (America serves ~2/3, Europe ~1/3).
        let (mut r, routes) = setup();
        let mut to_europe = 0;
        let n = 3000;
        for _ in 0..n {
            if r.choose_replica(x(), NodeId::new(0), &routes) == Some(NodeId::new(1)) {
                to_europe += 1;
            }
        }
        let frac = to_europe as f64 / n as f64;
        assert!(
            (frac - 1.0 / 3.0).abs() < 0.02,
            "expected ~1/3 shed to Europe, got {frac}"
        );
    }

    #[test]
    fn n_replicas_bound_closest_to_2_over_n_plus_1() {
        // Paper §3: with n replicas and all demand closest to one of
        // them, that replica serves 2N/(n+1) of N requests.
        let topo = builders::star(6); // hub 0, leaves 1..=5
        let routes = topo.routes();
        for n_replicas in 2..=5u16 {
            let mut r = Redirector::new(1, 2.0);
            // Replica on leaf 1 (closest to gateway at leaf 1) and on
            // other leaves.
            for i in 1..=n_replicas {
                r.install(x(), NodeId::new(i));
            }
            let mut local = 0;
            let n = 6000;
            for _ in 0..n {
                if r.choose_replica(x(), NodeId::new(1), &routes) == Some(NodeId::new(1)) {
                    local += 1;
                }
            }
            let frac = local as f64 / n as f64;
            let expect = 2.0 / (n_replicas as f64 + 1.0);
            assert!(
                (frac - expect).abs() < 0.02,
                "n={n_replicas}: expected {expect}, got {frac}"
            );
        }
    }

    #[test]
    fn affinity_shifts_distribution() {
        // Paper §3: affinity 4 on the American replica with a 90/10
        // request mix sends ~1/9 of requests to Europe. We check the
        // coarser claim: higher affinity attracts a larger share.
        let (mut r, routes) = setup();
        r.notify_affinity(x(), NodeId::new(0), 4);
        let n = 9000;
        let mut to_europe = 0;
        for i in 0..n {
            // Regular inter-spacing: one European request after every
            // nine American ones.
            let gw = if i % 10 == 9 { 1 } else { 0 };
            if r.choose_replica(x(), NodeId::new(gw), &routes) == Some(NodeId::new(1)) {
                to_europe += 1;
            }
        }
        let frac = to_europe as f64 / n as f64;
        assert!(
            (frac - 1.0 / 9.0).abs() < 0.03,
            "expected ~1/9 to Europe, got {frac}"
        );
    }

    #[test]
    fn counts_reset_on_set_change() {
        let (mut r, routes) = setup();
        for _ in 0..50 {
            r.choose_replica(x(), NodeId::new(0), &routes);
        }
        assert!(r.replicas(x()).iter().any(|e| e.rcnt > 1));
        r.notify_created(x(), NodeId::new(0));
        assert!(r.replicas(x()).iter().all(|e| e.rcnt == 1));
    }

    #[test]
    fn install_and_create_merge_affinity() {
        let mut r = Redirector::new(1, 2.0);
        r.install(x(), NodeId::new(3));
        r.notify_created(x(), NodeId::new(3));
        assert_eq!(r.replica_count(x()), 1);
        assert_eq!(r.total_affinity(x()), 2);
    }

    #[test]
    fn last_replica_protected() {
        let mut r = Redirector::new(1, 2.0);
        r.install(x(), NodeId::new(0));
        assert!(!r.request_drop(x(), NodeId::new(0)));
        r.install(x(), NodeId::new(1));
        assert!(r.request_drop(x(), NodeId::new(0)));
        assert!(!r.request_drop(x(), NodeId::new(1)));
        assert_eq!(r.replica_count(x()), 1);
    }

    #[test]
    fn drop_of_unknown_replica_refused() {
        let mut r = Redirector::new(1, 2.0);
        r.install(x(), NodeId::new(0));
        r.install(x(), NodeId::new(1));
        assert!(!r.request_drop(x(), NodeId::new(7)));
    }

    #[test]
    fn choose_replica_empty_set_is_none() {
        let topo = builders::two_continents();
        let routes = topo.routes();
        let mut r = Redirector::new(1, 2.0);
        assert_eq!(r.choose_replica(x(), NodeId::new(0), &routes), None);
    }

    #[test]
    #[should_panic(expected = "unknown replica")]
    fn affinity_notification_for_unknown_replica_panics() {
        let mut r = Redirector::new(1, 2.0);
        r.notify_affinity(x(), NodeId::new(0), 2);
    }

    #[test]
    #[should_panic(expected = "must use request_drop")]
    fn affinity_zero_panics() {
        let mut r = Redirector::new(1, 2.0);
        r.install(x(), NodeId::new(0));
        r.notify_affinity(x(), NodeId::new(0), 0);
    }

    #[test]
    fn filtered_choice_skips_unusable_hosts() {
        let (mut r, routes) = setup();
        // Node 0 is closest to gateway 0, but marked down: every request
        // must go to node 1.
        for _ in 0..20 {
            assert_eq!(
                r.choose_replica_filtered(x(), NodeId::new(0), &routes, &|h| h != NodeId::new(0)),
                Some(NodeId::new(1))
            );
        }
        // Nothing usable: None, even though replicas exist.
        assert_eq!(
            r.choose_replica_filtered(x(), NodeId::new(0), &routes, &|_| false),
            None
        );
        assert_eq!(r.replica_count(x()), 2, "filtering never mutates the set");
    }

    #[test]
    fn explained_choice_matches_plain_choice() {
        // The explained variant must make the identical decision (same
        // increments, same winner) and report the inputs it compared.
        let (mut r1, routes) = setup();
        let mut r2 = r1.clone();
        for i in 0..200 {
            let gw = NodeId::new(if i % 3 == 0 { 1 } else { 0 });
            let plain = r1.choose_replica(x(), gw, &routes);
            let (host, expl) = r2
                .choose_replica_explained(x(), gw, &routes, &|_| true)
                .expect("replicas exist");
            assert_eq!(plain, Some(host));
            assert_eq!(expl.chosen, host);
            assert_eq!(expl.candidates.len(), 2);
            // The snapshot is pre-increment and self-consistent.
            let p = expl
                .candidates
                .iter()
                .find(|c| c.host == expl.closest)
                .expect("p in candidates");
            assert_eq!(p.unit_rcnt(), expl.unit_closest);
            let q = expl
                .candidates
                .iter()
                .find(|c| c.host == expl.least)
                .expect("q in candidates");
            assert_eq!(q.unit_rcnt(), expl.unit_least);
            // The branch tag matches the arithmetic.
            let shed = expl.unit_closest / expl.constant > expl.unit_least;
            assert_eq!(expl.branch == ChoiceBranch::LeastRequested, shed);
            assert_eq!(expl.chosen, if shed { expl.least } else { expl.closest });
        }
        assert_eq!(r1, r2, "identical state after identical decisions");
    }

    #[test]
    fn explained_choice_respects_filter() {
        let (mut r, routes) = setup();
        let (host, expl) = r
            .choose_replica_explained(x(), NodeId::new(0), &routes, &|h| h != NodeId::new(0))
            .expect("one usable replica");
        assert_eq!(host, NodeId::new(1));
        assert_eq!(expl.candidates.len(), 1);
        assert_eq!(expl.branch.as_str(), "closest");
        assert!(r
            .choose_replica_explained(x(), NodeId::new(0), &routes, &|_| false)
            .is_none());
    }

    #[test]
    fn choose_among_matches_choose_inner() {
        // Feeding the cached-candidate entry point the same (index,
        // distance) pairs choose_inner would build must reproduce the
        // decision stream exactly — the correctness contract the redirect
        // engine's candidate cache relies on.
        let (mut r1, routes) = setup();
        let mut r2 = r1.clone();
        for i in 0..200 {
            let gw = NodeId::new(if i % 3 == 0 { 1 } else { 0 });
            let cands: Vec<(u32, u32)> = r2
                .replicas(x())
                .iter()
                .enumerate()
                .map(|(j, e)| (j as u32, routes.distance(e.host, gw)))
                .collect();
            // Alternate between scanning for p here and letting decide()
            // scan — the precomputed hint must be a pure optimization.
            let closest = (i % 2 == 0).then(|| {
                cands
                    .iter()
                    .min_by_key(|&&(j, d)| (d, r2.replicas(x())[j as usize].host))
                    .expect("non-empty")
                    .0
            });
            let plain = r1.choose_replica(x(), gw, &routes);
            let (host, expl) = r2
                .choose_among(x(), &cands, closest, false)
                .expect("replicas exist");
            assert_eq!(plain, Some(host));
            assert!(expl.is_none());
        }
        assert_eq!(r1, r2, "identical state after identical decisions");
        assert_eq!(r2.choose_among(x(), &[], None, true), None);
    }

    #[test]
    fn purge_host_removes_even_last_replicas() {
        let mut r = Redirector::new(3, 2.0);
        r.install(ObjectId::new(0), NodeId::new(0)); // only replica
        r.install(ObjectId::new(1), NodeId::new(0));
        r.install(ObjectId::new(1), NodeId::new(1));
        r.install(ObjectId::new(2), NodeId::new(1));
        let affected = r.purge_host(NodeId::new(0));
        assert_eq!(affected, vec![ObjectId::new(0), ObjectId::new(1)]);
        assert_eq!(r.replica_count(ObjectId::new(0)), 0, "last replica purged");
        assert_eq!(r.replica_count(ObjectId::new(1)), 1);
        assert_eq!(r.replica_count(ObjectId::new(2)), 1);
        // Surviving sets had their counts reset.
        assert!(r.replicas(ObjectId::new(1)).iter().all(|e| e.rcnt == 1));
    }

    #[test]
    fn notifications_counted() {
        let (mut r, _) = setup();
        assert_eq!(r.notifications(), 0);
        r.notify_created(x(), NodeId::new(0));
        r.notify_affinity(x(), NodeId::new(0), 1);
        r.request_drop(x(), NodeId::new(0));
        assert_eq!(r.notifications(), 3);
    }

    #[test]
    fn version_visible_through_directory_accessor() {
        let (mut r, routes) = setup();
        let v = r.directory().version(x());
        // Decisions increment counts but never the version.
        r.choose_replica(x(), NodeId::new(0), &routes);
        assert_eq!(r.directory().version(x()), v);
        r.notify_created(x(), NodeId::new(0));
        assert!(r.directory().version(x()) > v);
    }

    #[test]
    fn batch_passthrough_defers_resets() {
        let (mut r, routes) = setup();
        for _ in 0..30 {
            r.choose_replica(x(), NodeId::new(0), &routes);
        }
        r.begin_batch();
        r.notify_created(x(), NodeId::new(0));
        assert!(
            r.replicas(x()).iter().any(|e| e.rcnt > 1),
            "reset deferred while batching"
        );
        assert_eq!(r.commit_batch(), 1);
        assert!(r.replicas(x()).iter().all(|e| e.rcnt == 1));
    }

    #[test]
    #[should_panic(expected = "distribution constant")]
    fn constant_of_one_rejected() {
        let _ = Redirector::new(1, 1.0);
    }

    #[test]
    fn sharded_decisions_match_unsharded() {
        // Split the redirector, replay the same decision stream through
        // the shards' choose_among_into, absorb, and require state
        // identical to the unsplit redirector that made the same
        // decisions — the contract the parallel event loop rests on.
        let topo = builders::star(6);
        let routes = topo.routes();
        let build = || {
            let mut r = Redirector::new(9, 2.0);
            for i in 0..9u32 {
                r.install(ObjectId::new(i), NodeId::new((i % 5 + 1) as u16));
                r.install(ObjectId::new(i), NodeId::new(((i + 2) % 5 + 1) as u16));
            }
            r
        };
        let mut serial = build();
        let mut parent = build();
        let mut shards = parent.split_shards(4);
        for step in 0..300u32 {
            let object = ObjectId::new(step % 9);
            let gw = NodeId::new((step % 5 + 1) as u16);
            let cands: Vec<(u32, u32)> = serial
                .replicas(object)
                .iter()
                .enumerate()
                .map(|(j, e)| (j as u32, routes.distance(e.host, gw)))
                .collect();
            let want = serial.choose_among_into(object, &cands, None, None);
            let shard = shards
                .iter_mut()
                .find(|s| s.contains(object))
                .expect("covered");
            let mut expl = ChoiceExplanation::default();
            let got = shard.choose_among_into(object, &cands, None, Some(&mut expl));
            assert_eq!(want, got);
            assert_eq!(expl.chosen, got.unwrap());
        }
        // Membership traffic through the shards, then reunite.
        let o = ObjectId::new(4);
        let shard = shards.iter_mut().find(|s| s.contains(o)).expect("covered");
        shard.notify_created(o, NodeId::new(0));
        serial.notify_created(o, NodeId::new(0));
        parent.absorb_shards(shards);
        assert_eq!(parent, serial);
    }
}
