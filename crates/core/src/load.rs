//! Host load tracking with relocation-aware upper/lower estimates.
//!
//! The paper's load metric (§2.1) is the rate of serviced requests
//! averaged over a *measurement interval* (20 s). A measurement taken
//! right after an object relocation does not yet reflect the relocation,
//! so the protocol switches to **estimates** around relocation events:
//!
//! * after *accepting* an object, a host adds the Theorem 2/4 upper bound
//!   (`4 × unit load`) to its load when deciding whether to accept more —
//!   so a burst of acquisitions cannot overshoot the watermarks;
//! * when *shedding* objects, a host subtracts the Theorem 1/3 maximal
//!   decrease to obtain a lower bound — so bulk offloading stops before
//!   the host could possibly have dropped below the low watermark.
//!
//! A host "returns to using actual load metrics only when its measurement
//! interval starts after the last object had been acquired": completing a
//! clean interval clears the deltas.

/// Relocation-aware load state of one host.
///
/// Driven by its owning [`crate::HostState`], which completes measurement
/// windows ([`complete_window`](Self::complete_window)) and reports
/// relocations ([`note_acquired`](Self::note_acquired) /
/// [`note_shed`](Self::note_shed)). Decision code reads
/// [`upper`](Self::upper) for admission checks and [`lower`](Self::lower)
/// for offloading checks.
///
/// # Examples
///
/// ```
/// use radar_core::LoadEstimator;
/// let mut le = LoadEstimator::new();
/// le.complete_window(50.0, 0.0);   // measured 50 req/s over [0, 20)
/// le.note_acquired(25.0, 10.0);    // accepted an object: +4×2.5 bound
/// assert_eq!(le.upper(), 60.0);
/// assert_eq!(le.lower(), 50.0);
/// le.complete_window(58.0, 20.0);  // window [20,40) started before 25 →
/// le.complete_window(59.0, 40.0);  // still dirty; [40,60) is clean
/// assert_eq!(le.upper(), 59.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadEstimator {
    measured: f64,
    upper_delta: f64,
    lower_delta: f64,
    /// Time of the most recent relocation (acquire or shed), if any
    /// estimate deltas are outstanding.
    last_relocation: Option<f64>,
}

impl LoadEstimator {
    /// A fresh estimator with zero measured load and no outstanding
    /// estimates.
    pub fn new() -> Self {
        Self {
            measured: 0.0,
            upper_delta: 0.0,
            lower_delta: 0.0,
            last_relocation: None,
        }
    }

    /// Installs the measurement of a just-completed interval that started
    /// at `window_start`. If the interval started at or after the last
    /// relocation, the measurement fully reflects the relocated state and
    /// the estimate deltas are cleared.
    pub fn complete_window(&mut self, rate: f64, window_start: f64) {
        self.measured = rate;
        if let Some(lr) = self.last_relocation {
            if window_start >= lr {
                self.upper_delta = 0.0;
                self.lower_delta = 0.0;
                self.last_relocation = None;
            }
        }
    }

    /// Records acceptance of an object at time `now`, raising the upper
    /// estimate by `bound` (the caller passes the Theorem 2/4 bound,
    /// `4 × unit load`).
    pub fn note_acquired(&mut self, now: f64, bound: f64) {
        debug_assert!(bound >= 0.0, "acquisition bound must be non-negative");
        self.upper_delta += bound;
        self.last_relocation = Some(now);
    }

    /// Records shedding of (part of) an object at time `now`, lowering
    /// the lower estimate by `bound` (the caller passes the Theorem 1/3
    /// maximal decrease).
    pub fn note_shed(&mut self, now: f64, bound: f64) {
        debug_assert!(bound >= 0.0, "shed bound must be non-negative");
        self.lower_delta += bound;
        self.last_relocation = Some(now);
    }

    /// The last completed interval's measured load (requests/second).
    pub fn measured(&self) -> f64 {
        self.measured
    }

    /// Upper-limit load estimate — what admission decisions use.
    pub fn upper(&self) -> f64 {
        self.measured + self.upper_delta
    }

    /// Lower-limit load estimate — what offloading decisions use. Never
    /// negative.
    pub fn lower(&self) -> f64 {
        (self.measured - self.lower_delta).max(0.0)
    }

    /// `true` while relocation deltas are outstanding (estimates differ
    /// from the plain measurement).
    pub fn in_estimate_mode(&self) -> bool {
        self.last_relocation.is_some()
    }
}

impl Default for LoadEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_estimator_is_zero() {
        let le = LoadEstimator::new();
        assert_eq!(le.measured(), 0.0);
        assert_eq!(le.upper(), 0.0);
        assert_eq!(le.lower(), 0.0);
        assert!(!le.in_estimate_mode());
    }

    #[test]
    fn acquisitions_raise_upper_only() {
        let mut le = LoadEstimator::new();
        le.complete_window(40.0, 0.0);
        le.note_acquired(25.0, 8.0);
        le.note_acquired(26.0, 4.0);
        assert_eq!(le.upper(), 52.0);
        assert_eq!(le.lower(), 40.0);
        assert!(le.in_estimate_mode());
    }

    #[test]
    fn sheds_lower_lower_only() {
        let mut le = LoadEstimator::new();
        le.complete_window(40.0, 0.0);
        le.note_shed(25.0, 15.0);
        assert_eq!(le.upper(), 40.0);
        assert_eq!(le.lower(), 25.0);
    }

    #[test]
    fn lower_never_negative() {
        let mut le = LoadEstimator::new();
        le.complete_window(5.0, 0.0);
        le.note_shed(1.0, 100.0);
        assert_eq!(le.lower(), 0.0);
    }

    #[test]
    fn dirty_window_keeps_estimates() {
        let mut le = LoadEstimator::new();
        le.complete_window(40.0, 0.0);
        le.note_acquired(25.0, 8.0);
        // Window [20, 40) started before the relocation at t=25: dirty.
        le.complete_window(45.0, 20.0);
        assert!(le.in_estimate_mode());
        assert_eq!(le.upper(), 53.0);
    }

    #[test]
    fn clean_window_clears_estimates() {
        let mut le = LoadEstimator::new();
        le.complete_window(40.0, 0.0);
        le.note_acquired(25.0, 8.0);
        le.note_shed(30.0, 3.0);
        le.complete_window(47.0, 40.0); // starts after t=30: clean
        assert!(!le.in_estimate_mode());
        assert_eq!(le.upper(), 47.0);
        assert_eq!(le.lower(), 47.0);
    }

    #[test]
    fn window_starting_exactly_at_relocation_is_clean() {
        // A relocation at the instant a window opens is fully visible to
        // that window.
        let mut le = LoadEstimator::new();
        le.note_acquired(20.0, 8.0);
        le.complete_window(44.0, 20.0);
        assert!(!le.in_estimate_mode());
    }

    #[test]
    fn later_relocation_extends_estimate_mode() {
        let mut le = LoadEstimator::new();
        le.note_acquired(5.0, 8.0);
        le.note_acquired(39.0, 8.0);
        le.complete_window(44.0, 20.0); // dirty: relocation at 39 inside
        assert!(le.in_estimate_mode());
        le.complete_window(44.0, 40.0); // clean
        assert!(!le.in_estimate_mode());
    }
}
