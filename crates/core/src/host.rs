//! Per-host protocol state: hosted objects, access counts, affinities,
//! and windowed load measurement.

use std::collections::BTreeMap;

use radar_simnet::NodeId;

use crate::{LoadEstimator, ObjectId, Params};

/// State a host keeps for one of its object replicas (paper §4.1):
/// the replica affinity `aff(x_s)`, the per-candidate access counts
/// `cnt(p, x_s)` accumulated since the last placement run, and the
/// replica's measured request rate `load(x_s)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectState {
    aff: u32,
    /// `cnt(p, x_s)`: how many requests for this object had node `p` on
    /// their preference path since the last placement run. The own node's
    /// entry is the total access count `cnt(x_s)`. A flat vector beats a
    /// tree map here: the set of path members seen in one window is
    /// small, increments are linear probes over contiguous memory, and
    /// the per-epoch reset keeps the capacity instead of freeing nodes.
    /// Entries are in first-seen order; no consumer depends on order.
    access_counts: Vec<(NodeId, u64)>,
    /// Requests for this object serviced in the current (incomplete)
    /// measurement window.
    window_serviced: u64,
    /// `load(x_s)`: this replica's serviced-request rate over the last
    /// completed measurement window (requests/second).
    rate: f64,
    /// When this replica was last acquired (created or affinity-bumped)
    /// via `CreateObj`. Zero for bootstrap installs.
    acquired_at: f64,
}

impl ObjectState {
    /// The replica's affinity.
    pub fn aff(&self) -> u32 {
        self.aff
    }

    /// The replica's measured request rate `load(x_s)` (requests/second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The replica's *unit load* `load(x_s)/aff(x_s)`.
    pub fn unit_load(&self) -> f64 {
        self.rate / self.aff as f64
    }

    /// Access count of candidate `p` since the last placement run.
    pub fn count(&self, p: NodeId) -> u64 {
        self.access_counts
            .iter()
            .find(|&&(q, _)| q == p)
            .map_or(0, |&(_, c)| c)
    }

    /// Iterates `(candidate, count)` pairs in first-seen order. Every
    /// consumer either folds over the counts or re-sorts by its own key,
    /// so the iteration order is not observable in protocol decisions.
    pub fn counts(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.access_counts.iter().copied()
    }

    /// When this replica was last acquired via `CreateObj` (0 for
    /// bootstrap installs).
    pub fn acquired_at(&self) -> f64 {
        self.acquired_at
    }
}

/// The protocol state of a single hosting server.
///
/// `HostState` is a pure state machine: the surrounding simulator (or
/// test) calls [`record_access`](Self::record_access) when a request
/// arrives, [`record_serviced`](Self::record_serviced) when its response
/// leaves, and [`advance`](Self::advance) to move the measurement clock.
/// The placement algorithms in [`crate::placement`] then read and mutate
/// this state through its public methods.
///
/// # Examples
///
/// ```
/// use radar_core::{HostState, ObjectId, Params};
/// use radar_simnet::NodeId;
///
/// let mut host = HostState::new(NodeId::new(0), Params::paper());
/// let x = ObjectId::new(7);
/// host.install_object(x);
/// host.record_access(x, &[NodeId::new(0), NodeId::new(3)]);
/// assert_eq!(host.object(x).unwrap().count(NodeId::new(3)), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HostState {
    node: NodeId,
    params: Params,
    offloading: bool,
    load: LoadEstimator,
    window_start: f64,
    window_total: u64,
    /// Time of the most recently completed placement run.
    last_placement_run: f64,
    /// Maximum number of distinct objects this host can store
    /// (`None` = unbounded). The paper's §2.1 storage-load component,
    /// reduced to its admission effect: a full host refuses new copies.
    storage_limit: Option<usize>,
    objects: BTreeMap<ObjectId, ObjectState>,
}

impl HostState {
    /// Creates an empty host.
    pub fn new(node: NodeId, params: Params) -> Self {
        Self {
            node,
            params,
            offloading: false,
            load: LoadEstimator::new(),
            window_start: 0.0,
            window_total: 0,
            last_placement_run: 0.0,
            storage_limit: None,
            objects: BTreeMap::new(),
        }
    }

    /// Limits this host to at most `max_objects` distinct objects;
    /// `CreateObj` requests needing a new physical copy are refused once
    /// the limit is reached (affinity increments still succeed).
    ///
    /// # Panics
    ///
    /// Panics if `max_objects` is zero.
    pub fn set_storage_limit(&mut self, max_objects: usize) {
        assert!(
            max_objects > 0,
            "a host must be able to store at least one object"
        );
        self.storage_limit = Some(max_objects);
    }

    /// The storage limit, if any.
    pub fn storage_limit(&self) -> Option<usize> {
        self.storage_limit
    }

    /// `true` if a new physical copy would exceed the storage limit.
    pub fn storage_full(&self) -> bool {
        self.storage_limit
            .is_some_and(|limit| self.objects.len() >= limit)
    }

    /// This host's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The protocol parameters this host runs with.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Whether the host is in offloading mode (§4.2.2).
    pub fn is_offloading(&self) -> bool {
        self.offloading
    }

    /// Sets offloading mode (used by the placement driver).
    pub fn set_offloading(&mut self, offloading: bool) {
        self.offloading = offloading;
    }

    /// Number of distinct objects hosted.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Sum of affinities over all hosted objects (logical replicas held).
    pub fn total_affinity(&self) -> u64 {
        self.objects.values().map(|o| o.aff as u64).sum()
    }

    /// `true` if this host has a replica of `object`.
    pub fn has_object(&self, object: ObjectId) -> bool {
        self.objects.contains_key(&object)
    }

    /// The state of `object` on this host, if present.
    pub fn object(&self, object: ObjectId) -> Option<&ObjectState> {
        self.objects.get(&object)
    }

    /// Ids of all hosted objects, ascending (deterministic placement
    /// iteration order).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// Snapshots the hosted object ids (ascending) into a caller-owned
    /// buffer, so hot placement paths reuse one allocation across runs.
    pub fn collect_object_ids(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        out.extend(self.objects.keys().copied());
    }

    // ---- measurement ----------------------------------------------------

    /// Rolls the measurement clock forward to `now`, completing any
    /// measurement intervals that have fully elapsed. Each completed
    /// interval installs per-object rates and the host-level measured
    /// load.
    pub fn advance(&mut self, now: f64) {
        let interval = self.params.measurement_interval;
        while now >= self.window_start + interval {
            let total_rate = self.window_total as f64 / interval;
            for obj in self.objects.values_mut() {
                obj.rate = obj.window_serviced as f64 / interval;
                obj.window_serviced = 0;
            }
            self.load.complete_window(total_rate, self.window_start);
            self.window_total = 0;
            self.window_start += interval;
        }
    }

    /// Records that a request for `object` passed through this host with
    /// the given preference path (host → gateway, inclusive). Increments
    /// `cnt(p, x_s)` for every node on the path (paper §4.1).
    ///
    /// Silently ignores objects this host does not hold — in the real
    /// system a request can race with a migration; the replica-set subset
    /// invariant makes this window tiny but not empty.
    pub fn record_access(&mut self, object: ObjectId, preference_path: &[NodeId]) {
        if let Some(obj) = self.objects.get_mut(&object) {
            for &p in preference_path {
                match obj.access_counts.iter_mut().find(|&&mut (q, _)| q == p) {
                    Some(&mut (_, ref mut c)) => *c += 1,
                    None => obj.access_counts.push((p, 1)),
                }
            }
        }
    }

    /// Records that a request for `object` finished service at time
    /// `now` (drives the load measurement).
    pub fn record_serviced(&mut self, now: f64, object: ObjectId) {
        self.advance(now);
        self.window_total += 1;
        if let Some(obj) = self.objects.get_mut(&object) {
            obj.window_serviced += 1;
        }
    }

    /// Clears all per-candidate access counts — done at the end of every
    /// placement run ("since the last execution of the replica placement
    /// algorithm").
    pub fn reset_access_counts(&mut self) {
        for obj in self.objects.values_mut() {
            // `Vec::clear` keeps the capacity: the next window's
            // `record_access` refills in place, so the per-epoch
            // reset/refill cycle performs no heap traffic.
            obj.access_counts.clear();
        }
    }

    // ---- load views ------------------------------------------------------

    /// Measured load of the last completed interval (requests/second).
    pub fn measured_load(&self) -> f64 {
        self.load.measured()
    }

    /// Upper-limit load estimate, used for admission (CreateObj) checks.
    pub fn load_upper(&self) -> f64 {
        self.load.upper()
    }

    /// Lower-limit load estimate, used for offloading decisions.
    pub fn load_lower(&self) -> f64 {
        self.load.lower()
    }

    /// `true` while relocation load-estimate deltas are outstanding.
    pub fn in_estimate_mode(&self) -> bool {
        self.load.in_estimate_mode()
    }

    /// Time of this host's most recently completed placement run.
    ///
    /// A replica acquired *after* this instant has not yet lived through
    /// a full decision period, so its access counts cover only a partial
    /// window; the placement algorithm defers judging it until the next
    /// run. Without this rule a replica created at epoch T would be
    /// dropped by its recipient at the same epoch (empty counts ⇒ below
    /// the deletion threshold) — exactly the replicate/delete vicious
    /// cycle the paper's Theorem 5 is designed to exclude.
    pub fn last_placement_run(&self) -> f64 {
        self.last_placement_run
    }

    /// Marks a completed placement run at time `now`.
    pub fn mark_placement_run(&mut self, now: f64) {
        self.last_placement_run = now;
    }

    /// Records shedding load (Theorem 1/3 bound) at `now` — called by the
    /// offloading algorithm after a successful migration/replication away.
    pub fn note_shed(&mut self, now: f64, bound: f64) {
        self.load.note_shed(now, bound);
    }

    // ---- replica set mutations -------------------------------------------

    /// Installs an initial replica with affinity 1 (bootstrap placement;
    /// no load-estimate effects). If the object is already present its
    /// affinity is incremented.
    pub fn install_object(&mut self, object: ObjectId) {
        let obj = self.objects.entry(object).or_default();
        obj.aff += 1;
    }

    /// Accepts an object via `CreateObj` at time `now`, applying the
    /// Theorem 2/4 upper-bound load delta (`4 × unit_load`). Returns
    /// `true` if a new physical copy was created (data transfer needed),
    /// `false` if this was an affinity increment.
    pub fn accept_object(&mut self, now: f64, object: ObjectId, unit_load: f64) -> bool {
        let new_copy = !self.objects.contains_key(&object);
        let obj = self.objects.entry(object).or_default();
        obj.aff += 1;
        obj.acquired_at = now;
        self.load.note_acquired(now, 4.0 * unit_load);
        new_copy
    }

    /// Decrements the affinity of `object`, which must be present with
    /// affinity ≥ 2 (a reduction to zero is a drop and goes through
    /// [`drop_object`](Self::drop_object) after redirector approval).
    /// Returns the new affinity.
    ///
    /// # Panics
    ///
    /// Panics if the object is missing or its affinity is 1.
    pub fn reduce_affinity(&mut self, object: ObjectId) -> u32 {
        let obj = self
            .objects
            .get_mut(&object)
            .unwrap_or_else(|| panic!("reduce_affinity: {object} not hosted"));
        assert!(
            obj.aff >= 2,
            "reduce_affinity would drop the replica; use drop_object"
        );
        obj.aff -= 1;
        obj.aff
    }

    /// Removes the replica of `object` entirely (after redirector
    /// approval).
    ///
    /// # Panics
    ///
    /// Panics if the object is not hosted.
    pub fn drop_object(&mut self, object: ObjectId) {
        let removed = self.objects.remove(&object);
        assert!(removed.is_some(), "drop_object: {object} not hosted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostState {
        HostState::new(NodeId::new(0), Params::paper())
    }

    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn install_and_query() {
        let mut h = host();
        h.install_object(x(1));
        h.install_object(x(1));
        h.install_object(x(2));
        assert!(h.has_object(x(1)));
        assert_eq!(h.object(x(1)).unwrap().aff(), 2);
        assert_eq!(h.object_count(), 2);
        assert_eq!(h.total_affinity(), 3);
        assert_eq!(h.object_ids(), vec![x(1), x(2)]);
        assert!(h.object(x(9)).is_none());
    }

    #[test]
    fn access_counts_accumulate_along_path() {
        let mut h = host();
        h.install_object(x(1));
        let path = [NodeId::new(0), NodeId::new(4), NodeId::new(7)];
        h.record_access(x(1), &path);
        h.record_access(x(1), &path[..2]);
        let obj = h.object(x(1)).unwrap();
        assert_eq!(obj.count(NodeId::new(0)), 2);
        assert_eq!(obj.count(NodeId::new(4)), 2);
        assert_eq!(obj.count(NodeId::new(7)), 1);
        assert_eq!(obj.count(NodeId::new(9)), 0);
        assert_eq!(obj.counts().count(), 3);
    }

    #[test]
    fn access_to_missing_object_ignored() {
        let mut h = host();
        h.record_access(x(5), &[NodeId::new(0)]);
        assert!(!h.has_object(x(5)));
    }

    #[test]
    fn reset_access_counts_clears_all() {
        let mut h = host();
        h.install_object(x(1));
        h.record_access(x(1), &[NodeId::new(0)]);
        h.reset_access_counts();
        assert_eq!(h.object(x(1)).unwrap().count(NodeId::new(0)), 0);
    }

    #[test]
    fn measurement_windows_produce_rates() {
        let mut h = host();
        h.install_object(x(1));
        h.install_object(x(2));
        // 40 services of x1 and 20 of x2 over [0, 20).
        for i in 0..40 {
            h.record_serviced(i as f64 * 0.5, x(1));
        }
        for i in 0..20 {
            h.record_serviced(i as f64 * 0.5, x(2));
        }
        h.advance(20.0);
        assert_eq!(h.measured_load(), 3.0);
        assert_eq!(h.object(x(1)).unwrap().rate(), 2.0);
        assert_eq!(h.object(x(2)).unwrap().rate(), 1.0);
        // Idle interval zeroes rates.
        h.advance(60.0);
        assert_eq!(h.measured_load(), 0.0);
        assert_eq!(h.object(x(1)).unwrap().rate(), 0.0);
    }

    #[test]
    fn unit_load_divides_by_affinity() {
        let mut h = host();
        h.install_object(x(1));
        h.install_object(x(1)); // aff = 2
        for i in 0..40 {
            h.record_serviced(i as f64 * 0.5, x(1));
        }
        h.advance(20.0);
        let obj = h.object(x(1)).unwrap();
        assert_eq!(obj.rate(), 2.0);
        assert_eq!(obj.unit_load(), 1.0);
    }

    #[test]
    fn accept_object_applies_upper_bound() {
        let mut h = host();
        let new_copy = h.accept_object(5.0, x(1), 2.5);
        assert!(new_copy);
        assert_eq!(h.object(x(1)).unwrap().aff(), 1);
        assert_eq!(h.load_upper(), 10.0);
        assert!(h.in_estimate_mode());
        // Accepting again increments affinity, no new copy.
        let new_copy = h.accept_object(6.0, x(1), 2.5);
        assert!(!new_copy);
        assert_eq!(h.object(x(1)).unwrap().aff(), 2);
        assert_eq!(h.load_upper(), 20.0);
    }

    #[test]
    fn estimate_mode_clears_after_clean_window() {
        let mut h = host();
        h.accept_object(5.0, x(1), 1.0);
        h.advance(20.0); // window [0,20) contains the relocation: dirty
        assert!(h.in_estimate_mode());
        h.advance(40.0); // window [20,40) is clean
        assert!(!h.in_estimate_mode());
    }

    #[test]
    fn shed_lowers_lower_estimate() {
        let mut h = host();
        for i in 0..100 {
            h.record_serviced(i as f64 * 0.2, x(1));
        }
        h.advance(20.0);
        assert_eq!(h.measured_load(), 5.0);
        h.note_shed(21.0, 2.0);
        assert_eq!(h.load_lower(), 3.0);
        assert_eq!(h.load_upper(), 5.0);
    }

    #[test]
    fn reduce_and_drop() {
        let mut h = host();
        h.install_object(x(1));
        h.install_object(x(1));
        assert_eq!(h.reduce_affinity(x(1)), 1);
        h.drop_object(x(1));
        assert!(!h.has_object(x(1)));
    }

    #[test]
    #[should_panic(expected = "use drop_object")]
    fn reduce_affinity_at_one_panics() {
        let mut h = host();
        h.install_object(x(1));
        h.reduce_affinity(x(1));
    }

    #[test]
    #[should_panic(expected = "not hosted")]
    fn drop_missing_panics() {
        let mut h = host();
        h.drop_object(x(1));
    }

    #[test]
    fn storage_limit_reported() {
        let mut h = host();
        assert!(h.storage_limit().is_none());
        assert!(!h.storage_full());
        h.set_storage_limit(2);
        h.install_object(x(1));
        assert!(!h.storage_full());
        h.install_object(x(2));
        assert!(h.storage_full());
        // Affinity on an existing object is not new storage.
        h.install_object(x(1));
        assert_eq!(h.object_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn zero_storage_limit_rejected() {
        let mut h = host();
        h.set_storage_limit(0);
    }

    #[test]
    fn offloading_flag() {
        let mut h = host();
        assert!(!h.is_offloading());
        h.set_offloading(true);
        assert!(h.is_offloading());
    }
}
