//! The replica directory: ownership of replica sets, affinities, and
//! request counts, with batched application of placement-epoch updates.
//!
//! The paper splits the platform into a redirector (the Fig. 2 decision
//! rule) and a *distributed directory* of replica locations the
//! redirector consults (§2, §5). [`Directory`] is that second half:
//! it owns the per-object [`ReplicaInfo`] sets and processes the
//! membership protocol — creation notifications *after* the copy
//! exists, drop arbitration *before* deletion, affinity updates, crash
//! purges — while [`crate::Redirector`] holds only the decision rule.
//!
//! # Batched updates
//!
//! Every replica-set change resets the object's request counts to 1
//! (Fig. 2's accompanying rule; the precondition of Theorem 5). Within
//! one placement epoch a host may touch the same object several times —
//! drop one replica, create another, adjust affinity — and resetting
//! after each mutation is wasted work: counts are only ever *read* by
//! redirect decisions, and no decision runs in the middle of a
//! placement epoch. [`begin_batch`](Directory::begin_batch) therefore
//! defers the resets: membership and affinity changes still apply
//! immediately (drop arbitration and replication caps must see live
//! membership), but each touched object is reset exactly once at
//! [`commit_batch`](Directory::commit_batch). Because a reset-to-1 is
//! idempotent and no reader runs between the mutations, the observable
//! state at the first post-commit read is identical to the unbatched
//! protocol — seeded simulations stay byte-identical.
//!
//! # Versions
//!
//! Each object carries a monotonic [`version`](Directory::version),
//! bumped on every membership or affinity change (not on count resets
//! or request-count increments). Downstream caches — the simulator's
//! redirect engine keys its per-(gateway, object) candidate cache on it
//! — stay valid exactly as long as the replica set is unchanged.

use radar_simnet::NodeId;

use crate::redirector::ReplicaInfo;
use crate::ObjectId;

/// Replica set of a single object. Entries are kept sorted by host id so
/// all scans are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct ReplicaSet {
    pub(crate) entries: Vec<ReplicaInfo>,
}

impl ReplicaSet {
    fn find(&self, host: NodeId) -> Option<usize> {
        self.entries.iter().position(|e| e.host == host)
    }

    /// Resets all request counts to 1 — the paper's rule on any replica
    /// set change, preventing a new replica from soaking up every request
    /// while its count catches up.
    fn reset_counts(&mut self) {
        for e in &mut self.entries {
            e.rcnt = 1;
        }
    }
}

/// The distributed directory of replica locations: per-object replica
/// sets with request counts and affinities, membership notifications,
/// batched placement-epoch updates, and per-object versions for
/// downstream caches.
///
/// See the module docs for the layering rationale; [`crate::Redirector`]
/// wraps a `Directory` and adds the Fig. 2 decision rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Directory {
    sets: Vec<ReplicaSet>,
    /// Per-object membership/affinity version (see module docs).
    versions: Vec<u64>,
    /// Count of replica-set change notifications processed, exposed for
    /// overhead accounting.
    notifications: u64,
    /// Objects touched by the active batch (unsorted, may repeat);
    /// `None` when updates apply immediately.
    batch: Option<Vec<ObjectId>>,
    /// Retired batch buffer, reused by the next `begin_batch` so
    /// steady-state epochs allocate nothing.
    batch_spare: Vec<ObjectId>,
    /// Total object-level count resets applied, for tests asserting the
    /// exactly-once batching contract.
    resets_applied: u64,
    /// Running count of physical replicas across all objects (one per
    /// `(object, host)` entry, regardless of affinity). Maintained
    /// incrementally so platform-wide censuses never rescan every
    /// object's set.
    total_replicas: u64,
    /// Per-object provider-update version (§5): bumped once per provider
    /// update issued against the object's primary copy, independent of
    /// the membership [`versions`](Self::version). Deliberately *not*
    /// moved into shards by [`split_shards`](Self::split_shards) —
    /// provider updates are barrier events in the sharded simulator, so
    /// they only ever issue and deliver against the reunited directory.
    update_versions: Vec<u64>,
}

impl Directory {
    /// Creates an empty directory for objects `0..num_objects`.
    pub fn new(num_objects: u32) -> Self {
        Self {
            sets: vec![ReplicaSet::default(); num_objects as usize],
            versions: vec![0; num_objects as usize],
            notifications: 0,
            batch: None,
            batch_spare: Vec::new(),
            resets_applied: 0,
            total_replicas: 0,
            update_versions: vec![0; num_objects as usize],
        }
    }

    /// Number of objects the directory tracks.
    pub fn num_objects(&self) -> usize {
        self.sets.len()
    }

    /// The current replicas of `object` (sorted by host id).
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn replicas(&self, object: ObjectId) -> &[ReplicaInfo] {
        &self.sets[object.index()].entries
    }

    /// Number of distinct hosts holding `object`.
    pub fn replica_count(&self, object: ObjectId) -> usize {
        self.sets[object.index()].entries.len()
    }

    /// Total physical replicas across every object — the platform-wide
    /// census `Σ replica_count(o)`, maintained incrementally on every
    /// create / drop / purge so callers never rescan all objects.
    pub fn total_replicas(&self) -> u64 {
        self.total_replicas
    }

    /// Sum of affinities across all replicas of `object` — the number of
    /// *logical* replicas.
    pub fn total_affinity(&self, object: ObjectId) -> u32 {
        self.sets[object.index()]
            .entries
            .iter()
            .map(|e| e.aff)
            .sum()
    }

    /// The object's membership/affinity version: bumped on every change
    /// to which hosts hold the object or with what affinity, never on
    /// request-count traffic. Caches keyed on it stay valid exactly as
    /// long as the candidate replica set is unchanged.
    pub fn version(&self, object: ObjectId) -> u64 {
        self.versions[object.index()]
    }

    /// Total number of replica-set change notifications processed.
    pub fn notifications(&self) -> u64 {
        self.notifications
    }

    /// The object's provider-update version (§5): how many provider
    /// updates have been issued against its primary copy. Independent of
    /// the membership [`version`](Self::version) — replica churn never
    /// bumps it, and it never invalidates candidate caches.
    pub fn update_version(&self, object: ObjectId) -> u64 {
        self.update_versions[object.index()]
    }

    /// Records one provider update against `object`'s primary copy and
    /// returns the new update version. The caller (the platform's §5
    /// propagation machinery) schedules per-replica delivery of this
    /// version asynchronously.
    pub fn bump_update_version(&mut self, object: ObjectId) -> u64 {
        self.update_versions[object.index()] += 1;
        self.update_versions[object.index()]
    }

    /// Total object-level count resets applied since construction. A
    /// batched epoch contributes exactly one per touched object.
    pub fn resets_applied(&self) -> u64 {
        self.resets_applied
    }

    /// Starts a placement-epoch batch: membership and affinity changes
    /// keep applying immediately, but count resets are deferred until
    /// [`commit_batch`](Self::commit_batch) and coalesced to one per
    /// touched object.
    ///
    /// # Panics
    ///
    /// Panics if a batch is already active (epochs never nest).
    pub fn begin_batch(&mut self) {
        assert!(self.batch.is_none(), "placement-epoch batches never nest");
        self.batch = Some(std::mem::take(&mut self.batch_spare));
    }

    /// `true` while a placement-epoch batch is active.
    pub fn batching(&self) -> bool {
        self.batch.is_some()
    }

    /// Commits the active batch: every object touched since
    /// [`begin_batch`](Self::begin_batch) has its request counts reset
    /// to 1 exactly once (ascending object order, for determinism).
    /// Returns the number of objects reset.
    ///
    /// # Panics
    ///
    /// Panics if no batch is active.
    pub fn commit_batch(&mut self) -> usize {
        let mut touched = self.batch.take().expect("no active batch to commit");
        touched.sort_unstable();
        touched.dedup();
        for &object in &touched {
            self.sets[object.index()].reset_counts();
            self.resets_applied += 1;
        }
        let n = touched.len();
        touched.clear();
        self.batch_spare = touched;
        n
    }

    /// Routes one object's count reset: immediate outside a batch,
    /// deferred (once per object) inside one.
    fn touch(&mut self, object: ObjectId) {
        match &mut self.batch {
            Some(touched) => touched.push(object),
            None => {
                self.sets[object.index()].reset_counts();
                self.resets_applied += 1;
            }
        }
    }

    /// Installs an initial replica (bootstrap placement). Equivalent to a
    /// creation notification but does not reset request counts, so it can
    /// seed many objects cheaply.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn install(&mut self, object: ObjectId, host: NodeId) {
        self.versions[object.index()] += 1;
        let set = &mut self.sets[object.index()];
        match set.find(host) {
            Some(i) => set.entries[i].aff += 1,
            None => {
                set.entries.push(ReplicaInfo {
                    host,
                    rcnt: 1,
                    aff: 1,
                });
                set.entries.sort_unstable_by_key(|e| e.host);
                self.total_replicas += 1;
            }
        }
    }

    /// Notification that `host` created a new copy of `object` (or
    /// incremented its affinity). Sent *after* the copy exists, so the
    /// redirector never directs requests at a replica that is not there.
    /// Resets all request counts of the object to 1 per Fig. 2's
    /// accompanying rule (deferred under an active batch).
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn notify_created(&mut self, object: ObjectId, host: NodeId) {
        self.notifications += 1;
        self.versions[object.index()] += 1;
        let set = &mut self.sets[object.index()];
        match set.find(host) {
            Some(i) => set.entries[i].aff += 1,
            None => {
                set.entries.push(ReplicaInfo {
                    host,
                    rcnt: 1,
                    aff: 1,
                });
                set.entries.sort_unstable_by_key(|e| e.host);
                self.total_replicas += 1;
            }
        }
        self.touch(object);
    }

    /// Notification that `host` reduced the affinity of its replica of
    /// `object` to `new_aff` (which must remain ≥ 1; a reduction to zero
    /// goes through [`request_drop`](Self::request_drop) instead).
    /// Resets request counts (deferred under an active batch).
    ///
    /// # Panics
    ///
    /// Panics if the replica is unknown or `new_aff` is zero.
    pub fn notify_affinity(&mut self, object: ObjectId, host: NodeId, new_aff: u32) {
        assert!(
            new_aff >= 1,
            "affinity reductions to zero must use request_drop"
        );
        self.notifications += 1;
        self.versions[object.index()] += 1;
        let set = &mut self.sets[object.index()];
        let i = set
            .find(host)
            .unwrap_or_else(|| panic!("affinity notification for unknown replica {object}@{host}"));
        set.entries[i].aff = new_aff;
        self.touch(object);
    }

    /// A host's *intention to drop* its replica of `object` (the
    /// `ReduceAffinity` handshake, Fig. 3). The directory arbitrates:
    /// the last remaining replica may never be dropped. On approval the
    /// replica is removed from the set *before* the host deletes it,
    /// preserving the subset invariant; request counts reset (deferred
    /// under an active batch).
    ///
    /// Returns `true` if the drop was approved.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
        let set = &mut self.sets[object.index()];
        let Some(i) = set.find(host) else {
            return false;
        };
        if set.entries.len() == 1 {
            return false; // never drop the last replica
        }
        self.notifications += 1;
        self.versions[object.index()] += 1;
        set.entries.remove(i);
        self.total_replicas -= 1;
        self.touch(object);
        true
    }

    /// Force-removes every replica hosted on `host` — crash recovery,
    /// *not* the drop handshake: a host declared dead cannot negotiate,
    /// and even a last replica is removed (the data is gone with the
    /// host). Returns the affected objects, for the caller's
    /// re-replication sweep. Request counts of affected sets reset, like
    /// any other replica-set change.
    pub fn purge_host(&mut self, host: NodeId) -> Vec<ObjectId> {
        let mut affected = Vec::new();
        for (i, set) in self.sets.iter_mut().enumerate() {
            if let Some(pos) = set.find(host) {
                set.entries.remove(pos);
                self.total_replicas -= 1;
                self.versions[i] += 1;
                self.notifications += 1;
                affected.push(ObjectId::new(i as u32));
            }
        }
        for &object in &affected {
            self.touch(object);
        }
        affected
    }

    /// Crate-internal mutable access for the decision rule (the winner's
    /// request count increments without a version bump).
    pub(crate) fn set_mut(&mut self, object: ObjectId) -> &mut ReplicaSet {
        &mut self.sets[object.index()]
    }

    /// Splits the directory into `num_shards` contiguous object-range
    /// shards (ranges from [`shard_ranges`]), *moving* each object's
    /// replica set and version into its shard. The parent keeps its
    /// aggregate counters (`notifications`, `resets_applied`,
    /// `total_replicas`) but owns no object state until
    /// [`absorb_shards`](Self::absorb_shards) reunites it — reading or
    /// mutating objects on the parent in between panics on the empty
    /// slice, which is exactly the bug it would be.
    ///
    /// Shards never batch: the placement epoch that needs batching runs
    /// only on the reunited parent, so each shard applies count resets
    /// immediately, exactly like an unbatched directory.
    ///
    /// # Panics
    ///
    /// Panics if a placement-epoch batch is active (a split mid-epoch
    /// would lose the deferred resets) or `num_shards` is zero.
    pub fn split_shards(&mut self, num_shards: usize) -> Vec<DirectoryShard> {
        assert!(
            self.batch.is_none(),
            "cannot split a directory while a placement-epoch batch is active"
        );
        let ranges = shard_ranges(self.sets.len() as u32, num_shards);
        let mut sets = std::mem::take(&mut self.sets);
        let mut versions = std::mem::take(&mut self.versions);
        let mut shards = Vec::with_capacity(num_shards);
        for &(start, _) in ranges.iter().rev() {
            shards.push(DirectoryShard {
                base: start,
                sets: sets.split_off(start as usize),
                versions: versions.split_off(start as usize),
                notifications: 0,
                resets: 0,
                created: 0,
                dropped: 0,
            });
        }
        shards.reverse();
        shards
    }

    /// Reunites shards produced by [`split_shards`](Self::split_shards):
    /// moves every object's state back and folds each shard's local
    /// counters into the parent's aggregates, so the reunited directory
    /// is indistinguishable from one that processed the same operations
    /// unsplit.
    ///
    /// # Panics
    ///
    /// Panics if the parent still owns object state (it was never split)
    /// or the shards are not presented in ascending, gap-free object
    /// order covering every object.
    pub fn absorb_shards(&mut self, shards: Vec<DirectoryShard>) {
        assert!(
            self.sets.is_empty(),
            "absorb_shards must reunite a split directory"
        );
        for shard in shards {
            assert_eq!(
                shard.base as usize,
                self.sets.len(),
                "shards must be absorbed in ascending object order without gaps"
            );
            self.sets.extend(shard.sets);
            self.versions.extend(shard.versions);
            self.notifications += shard.notifications;
            self.resets_applied += shard.resets;
            self.total_replicas += shard.created;
            self.total_replicas -= shard.dropped;
        }
    }
}

/// Contiguous object-id ranges partitioning `0..num_items` into
/// `num_shards` near-equal slices: shard `s` owns
/// `[s·n/k, (s+1)·n/k)`. This is the simulator's object→shard hash: ids
/// are already assigned round-robin across nodes, so contiguous ranges
/// are as balanced as a modulo hash while keeping every shard's state a
/// single `split_off`/`append` away from the parent vectors.
///
/// Every consumer of the partition (directory, redirect-engine cache,
/// the sharded event loop's dispatch table) derives it from this one
/// function, so the slices can never disagree.
///
/// # Panics
///
/// Panics if `num_shards` is zero.
pub fn shard_ranges(num_items: u32, num_shards: usize) -> Vec<(u32, u32)> {
    assert!(num_shards > 0, "need at least one shard");
    let (n, k) = (num_items as u64, num_shards as u64);
    (0..k)
        .map(|s| (((s * n) / k) as u32, (((s + 1) * n) / k) as u32))
        .collect()
}

/// One contiguous-range shard of a [`Directory`]: exclusive ownership of
/// the replica sets and versions of objects `base..base+len`, plus local
/// overhead counters that fold back into the parent at
/// [`Directory::absorb_shards`].
///
/// The sharded simulator moves these values onto worker threads between
/// epoch barriers. All membership semantics — notify-*after*-create,
/// drop arbitration *before* deletion, last-replica protection,
/// count-reset-on-change — are identical to the parent directory's;
/// the shard merely restricts them to its own object range (calls
/// outside the range panic rather than silently touching a neighbour's
/// state).
#[derive(Debug, Clone, PartialEq)]
pub struct DirectoryShard {
    base: u32,
    sets: Vec<ReplicaSet>,
    versions: Vec<u64>,
    notifications: u64,
    resets: u64,
    /// Physical replicas added since the split (folds into the parent's
    /// incremental census).
    created: u64,
    /// Physical replicas removed since the split.
    dropped: u64,
}

impl DirectoryShard {
    /// The first object id this shard owns.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of objects this shard owns.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` if the shard owns no objects (possible when there are more
    /// shards than objects).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// `true` if `object` belongs to this shard's range.
    pub fn contains(&self, object: ObjectId) -> bool {
        let i = object.index();
        i >= self.base as usize && i < self.base as usize + self.sets.len()
    }

    fn idx(&self, object: ObjectId) -> usize {
        assert!(
            self.contains(object),
            "object {object} outside shard range {}..{}",
            self.base,
            self.base as usize + self.sets.len()
        );
        object.index() - self.base as usize
    }

    /// The current replicas of `object` (sorted by host id).
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn replicas(&self, object: ObjectId) -> &[ReplicaInfo] {
        &self.sets[self.idx(object)].entries
    }

    /// Number of distinct hosts holding `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn replica_count(&self, object: ObjectId) -> usize {
        self.sets[self.idx(object)].entries.len()
    }

    /// The object's membership/affinity version; same contract as
    /// [`Directory::version`].
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn version(&self, object: ObjectId) -> u64 {
        self.versions[self.idx(object)]
    }

    /// Installs a replica without a count reset; same contract as
    /// [`Directory::install`].
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn install(&mut self, object: ObjectId, host: NodeId) {
        let i = self.idx(object);
        self.versions[i] += 1;
        let set = &mut self.sets[i];
        match set.find(host) {
            Some(j) => set.entries[j].aff += 1,
            None => {
                set.entries.push(ReplicaInfo {
                    host,
                    rcnt: 1,
                    aff: 1,
                });
                set.entries.sort_unstable_by_key(|e| e.host);
                self.created += 1;
            }
        }
    }

    /// Creation notification (sent *after* the copy exists); same
    /// contract as [`Directory::notify_created`]. Shards never batch, so
    /// the count reset applies immediately.
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn notify_created(&mut self, object: ObjectId, host: NodeId) {
        let i = self.idx(object);
        self.notifications += 1;
        self.versions[i] += 1;
        let set = &mut self.sets[i];
        match set.find(host) {
            Some(j) => set.entries[j].aff += 1,
            None => {
                set.entries.push(ReplicaInfo {
                    host,
                    rcnt: 1,
                    aff: 1,
                });
                set.entries.sort_unstable_by_key(|e| e.host);
                self.created += 1;
            }
        }
        set.reset_counts();
        self.resets += 1;
    }

    /// Drop arbitration: the replica is removed *before* the host deletes
    /// its copy, and the last remaining replica is never dropped; same
    /// contract as [`Directory::request_drop`]. Returns `true` if
    /// approved.
    ///
    /// # Panics
    ///
    /// Panics if `object` is outside the shard's range.
    pub fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
        let i = self.idx(object);
        let set = &mut self.sets[i];
        let Some(j) = set.find(host) else {
            return false;
        };
        if set.entries.len() == 1 {
            return false; // never drop the last replica
        }
        self.notifications += 1;
        self.versions[i] += 1;
        set.entries.remove(j);
        self.dropped += 1;
        set.reset_counts();
        self.resets += 1;
        true
    }

    /// Crate-internal mutable access for the decision rule, mirroring
    /// [`Directory::set_mut`].
    pub(crate) fn set_mut(&mut self, object: ObjectId) -> &mut ReplicaSet {
        let i = self.idx(object);
        &mut self.sets[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> ObjectId {
        ObjectId::new(0)
    }

    fn node(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn versions_track_membership_not_counts() {
        let mut d = Directory::new(2);
        assert_eq!(d.version(x()), 0);
        d.install(x(), node(0));
        assert_eq!(d.version(x()), 1);
        d.notify_created(x(), node(1));
        assert_eq!(d.version(x()), 2);
        d.notify_affinity(x(), node(0), 3);
        assert_eq!(d.version(x()), 3);
        assert!(d.request_drop(x(), node(1)));
        assert_eq!(d.version(x()), 4);
        // A rejected drop (last replica) is not a change.
        assert!(!d.request_drop(x(), node(0)));
        assert_eq!(d.version(x()), 4);
        // The sibling object is untouched throughout.
        assert_eq!(d.version(ObjectId::new(1)), 0);
    }

    #[test]
    fn batch_defers_resets_until_commit() {
        let mut d = Directory::new(1);
        d.install(x(), node(0));
        d.install(x(), node(1));
        d.set_mut(x()).entries[0].rcnt = 50;
        d.begin_batch();
        d.notify_created(x(), node(2));
        assert_eq!(d.replicas(x())[0].rcnt, 50, "reset deferred while batching");
        assert_eq!(d.resets_applied(), 0);
        assert_eq!(d.commit_batch(), 1);
        assert!(d.replicas(x()).iter().all(|e| e.rcnt == 1));
        assert_eq!(d.resets_applied(), 1);
    }

    #[test]
    fn unbatched_resets_apply_immediately() {
        let mut d = Directory::new(1);
        d.install(x(), node(0));
        d.install(x(), node(1));
        d.set_mut(x()).entries[0].rcnt = 50;
        d.notify_created(x(), node(2));
        assert!(d.replicas(x()).iter().all(|e| e.rcnt == 1));
        assert_eq!(d.resets_applied(), 1);
    }

    #[test]
    fn drop_and_create_same_epoch_reset_exactly_once() {
        // The Theorem 5 precondition: one placement epoch that both
        // drops and creates replicas of the same object applies the
        // membership atomically and resets counts to 1 exactly once.
        let mut d = Directory::new(1);
        d.install(x(), node(0));
        d.install(x(), node(1));
        d.set_mut(x()).entries[0].rcnt = 40;
        d.set_mut(x()).entries[1].rcnt = 7;

        d.begin_batch();
        assert!(d.request_drop(x(), node(0)));
        d.notify_created(x(), node(2));
        // Membership applied immediately — arbitration and replica caps
        // see live state mid-epoch.
        let hosts: Vec<NodeId> = d.replicas(x()).iter().map(|e| e.host).collect();
        assert_eq!(hosts, vec![node(1), node(2)]);
        assert_eq!(d.resets_applied(), 0, "no reset before commit");
        assert_eq!(d.commit_batch(), 1, "one object touched twice, reset once");
        assert_eq!(d.resets_applied(), 1);
        assert!(d.replicas(x()).iter().all(|e| e.rcnt == 1));
    }

    #[test]
    fn commit_resets_in_ascending_object_order() {
        let mut d = Directory::new(3);
        for i in 0..3 {
            d.install(ObjectId::new(i), node(0));
            d.install(ObjectId::new(i), node(1));
        }
        d.begin_batch();
        // Touch out of order, with a repeat.
        d.notify_created(ObjectId::new(2), node(2));
        d.notify_created(ObjectId::new(0), node(2));
        d.notify_created(ObjectId::new(2), node(3));
        assert_eq!(d.commit_batch(), 2);
        assert_eq!(d.resets_applied(), 2);
    }

    #[test]
    #[should_panic(expected = "never nest")]
    fn nested_batches_panic() {
        let mut d = Directory::new(1);
        d.begin_batch();
        d.begin_batch();
    }

    #[test]
    #[should_panic(expected = "no active batch")]
    fn commit_without_batch_panics() {
        let mut d = Directory::new(1);
        d.commit_batch();
    }

    #[test]
    fn purge_inside_and_outside_batches() {
        let mut d = Directory::new(2);
        d.install(x(), node(0));
        d.install(x(), node(1));
        d.install(ObjectId::new(1), node(0));
        d.set_mut(x()).entries[1].rcnt = 9;
        let affected = d.purge_host(node(0));
        assert_eq!(affected, vec![x(), ObjectId::new(1)]);
        assert_eq!(d.replicas(x())[0].rcnt, 1, "survivors reset immediately");
        assert_eq!(d.replica_count(ObjectId::new(1)), 0, "last replica purged");
    }

    #[test]
    fn total_replica_counter_matches_per_object_sum() {
        // Randomized create/drop/purge/batch sequences: after every
        // mutation the incremental census equals the per-object rescan
        // it replaces.
        use radar_simcore::SimRng;
        let num_objects = 12u32;
        let num_hosts = 6u16;
        let check = |d: &Directory| {
            let rescan: u64 = (0..num_objects)
                .map(|i| d.replica_count(ObjectId::new(i)) as u64)
                .sum();
            assert_eq!(d.total_replicas(), rescan);
        };
        for seed in 0..4u64 {
            let mut rng = SimRng::seed_from(0xD1CE_0000 + seed);
            let mut d = Directory::new(num_objects);
            for i in 0..num_objects {
                d.install(ObjectId::new(i), node(rng.index(num_hosts as usize) as u16));
            }
            check(&d);
            for step in 0..400 {
                let object = ObjectId::new(rng.index(num_objects as usize) as u32);
                let host = node(rng.index(num_hosts as usize) as u16);
                match rng.index(5) {
                    0 => d.install(object, host),
                    1 => d.notify_created(object, host),
                    2 => {
                        // Drops may be refused (unknown replica / last
                        // copy); the counter must be untouched then.
                        let _ = d.request_drop(object, host);
                    }
                    3 => {
                        let purged = d.purge_host(host);
                        // Re-seed purged-empty objects so the run keeps
                        // exercising drops.
                        for object in purged {
                            if d.replica_count(object) == 0 {
                                d.install(object, host);
                            }
                        }
                    }
                    _ => {
                        d.begin_batch();
                        d.notify_created(object, host);
                        let victim = node(rng.index(num_hosts as usize) as u16);
                        let _ = d.request_drop(object, victim);
                        check(&d);
                        d.commit_batch();
                    }
                }
                check(&d);
                let _ = step;
            }
        }
    }

    #[test]
    fn update_versions_independent_of_membership() {
        let mut d = Directory::new(2);
        d.install(x(), node(0));
        assert_eq!(d.update_version(x()), 0);
        assert_eq!(d.bump_update_version(x()), 1);
        assert_eq!(d.bump_update_version(x()), 2);
        assert_eq!(d.update_version(x()), 2);
        // Membership churn leaves the update version alone, and vice
        // versa: bumping never invalidates candidate caches.
        let membership = d.version(x());
        d.notify_created(x(), node(1));
        assert_eq!(d.update_version(x()), 2);
        assert_eq!(d.bump_update_version(ObjectId::new(1)), 1);
        assert_eq!(d.version(x()), membership + 1);
        assert_eq!(d.version(ObjectId::new(1)), 0);
        // Survives a split/absorb round-trip: provider updates are
        // barrier events, so the versions stay on the parent.
        let shards = d.split_shards(2);
        d.absorb_shards(shards);
        assert_eq!(d.update_version(x()), 2);
        assert_eq!(d.update_version(ObjectId::new(1)), 1);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for n in [0u32, 1, 5, 16, 53, 1000] {
            for k in [1usize, 2, 3, 7, 64] {
                let ranges = shard_ranges(n, k);
                assert_eq!(ranges.len(), k);
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges[k - 1].1, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
                }
                // Near-equal: sizes differ by at most one.
                let sizes: Vec<u32> = ranges.iter().map(|&(a, b)| b - a).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced ranges {sizes:?}");
            }
        }
    }

    #[test]
    fn split_absorb_roundtrip_is_identity() {
        let mut d = Directory::new(10);
        for i in 0..10 {
            d.install(ObjectId::new(i), node((i % 4) as u16));
            d.install(ObjectId::new(i), node(((i + 1) % 4) as u16));
        }
        d.set_mut(ObjectId::new(3)).entries[0].rcnt = 42;
        let reference = d.clone();
        for k in [1usize, 2, 3, 7, 16] {
            let mut split = d.clone();
            let shards = split.split_shards(k);
            assert_eq!(shards.iter().map(DirectoryShard::len).sum::<usize>(), 10);
            split.absorb_shards(shards);
            assert_eq!(split, reference, "{k}-way split/absorb must be identity");
        }
    }

    #[test]
    fn shard_operations_match_unsplit_directory() {
        // The same operation stream applied to shards and to an unsplit
        // directory converges to identical state and identical aggregate
        // counters after absorb — the sharded simulator's correctness
        // contract.
        let build = || {
            let mut d = Directory::new(8);
            for i in 0..8 {
                d.install(ObjectId::new(i), node((i % 3) as u16));
            }
            d
        };
        let mut serial = build();
        let mut sharded = build();
        let mut shards = sharded.split_shards(3);

        let shard_of = |shards: &mut Vec<DirectoryShard>, o: ObjectId| -> usize {
            shards.iter().position(|s| s.contains(o)).expect("in range")
        };
        let ops: Vec<(u32, u16)> = vec![(0, 4), (3, 5), (7, 1), (2, 2), (5, 0)];
        for &(obj, host) in &ops {
            let (o, h) = (ObjectId::new(obj), node(host));
            serial.notify_created(o, h);
            let s = shard_of(&mut shards, o);
            shards[s].notify_created(o, h);
        }
        // Drops, including a refused last-replica drop.
        for (obj, host) in [(3u32, 0u16), (1, 1)] {
            let (o, h) = (ObjectId::new(obj), node(host));
            let s = shard_of(&mut shards, o);
            assert_eq!(serial.request_drop(o, h), shards[s].request_drop(o, h));
        }
        // Plain installs (no reset).
        serial.install(ObjectId::new(6), node(5));
        let s = shard_of(&mut shards, ObjectId::new(6));
        shards[s].install(ObjectId::new(6), node(5));

        sharded.absorb_shards(shards);
        assert_eq!(serial, sharded);
        assert_eq!(serial.notifications(), sharded.notifications());
        assert_eq!(serial.resets_applied(), sharded.resets_applied());
        assert_eq!(serial.total_replicas(), sharded.total_replicas());
    }

    #[test]
    #[should_panic(expected = "outside shard range")]
    fn shard_rejects_foreign_object() {
        let mut d = Directory::new(4);
        for i in 0..4 {
            d.install(ObjectId::new(i), node(0));
        }
        let mut shards = d.split_shards(2);
        // Object 0 lives in shard 0; shard 1 must refuse it.
        shards[1].install(ObjectId::new(0), node(1));
    }

    #[test]
    #[should_panic(expected = "placement-epoch batch is active")]
    fn split_during_batch_panics() {
        let mut d = Directory::new(2);
        d.begin_batch();
        let _ = d.split_shards(2);
    }

    #[test]
    #[should_panic(expected = "ascending object order")]
    fn absorb_out_of_order_panics() {
        let mut d = Directory::new(4);
        let mut shards = d.split_shards(2);
        shards.swap(0, 1);
        d.absorb_shards(shards);
    }

    #[test]
    fn batched_state_equals_unbatched_state() {
        // The byte-identity argument in miniature: the same mutation
        // sequence applied batched and unbatched converges to identical
        // directory state at commit (nothing reads counts in between).
        let script = |d: &mut Directory| {
            assert!(d.request_drop(x(), node(0)));
            d.notify_created(x(), node(3));
            d.notify_affinity(x(), node(3), 2);
        };
        let setup = || {
            let mut d = Directory::new(1);
            for h in 0..3 {
                d.install(x(), node(h));
            }
            d.set_mut(x()).entries[1].rcnt = 17;
            d
        };
        let mut batched = setup();
        let mut unbatched = setup();
        batched.begin_batch();
        script(&mut batched);
        batched.commit_batch();
        script(&mut unbatched);
        assert_eq!(batched.replicas(x()), unbatched.replicas(x()));
        assert_eq!(batched.version(x()), unbatched.version(x()));
        assert_eq!(batched.notifications(), unbatched.notifications());
    }
}
