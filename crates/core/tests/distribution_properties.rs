//! Property tests of the request distribution algorithm's structural
//! invariants — stronger statements than the Theorem 1–5 bounds, checked
//! after *every single request* rather than at equilibrium.
//!
//! The key invariant: for every replica `r`, at all times,
//!
//! ```text
//! unit_rcnt(r) ≤ constant × min_unit_rcnt + 1/aff(r)
//! ```
//!
//! because a replica's count only grows when it is either the minimum
//! itself or the closest replica still within the constant's allowance.
//! This is what bounds how far the distribution can ever skew — the
//! mechanism behind the paper's load-shedding arithmetic.

use proptest::prelude::*;
use radar_core::{ObjectId, Redirector};
use radar_simnet::{builders, NodeId, Topology};

fn object() -> ObjectId {
    ObjectId::new(0)
}

#[derive(Debug, Clone)]
struct Setup {
    topology_id: u8,
    /// (node, affinity) replicas; at least one.
    replicas: Vec<(u16, u32)>,
    /// Request sequence as gateway indices.
    gateways: Vec<u16>,
    constant: f64,
}

impl Setup {
    fn topology(&self) -> Topology {
        match self.topology_id {
            0 => builders::line(7),
            1 => builders::ring(9),
            2 => builders::grid(3, 3),
            _ => builders::star(8),
        }
    }
}

fn node_count(topology_id: u8) -> u16 {
    match topology_id {
        0 => 7,
        1 => 9,
        2 => 9,
        _ => 8,
    }
}

fn setup() -> impl Strategy<Value = Setup> {
    (0u8..4, 2u8..5)
        .prop_flat_map(|(topology_id, constant)| {
            let n = node_count(topology_id);
            let replicas = proptest::collection::btree_map(0..n, 1u32..=4, 1..=5)
                .prop_map(|m| m.into_iter().collect::<Vec<_>>());
            let gateways = proptest::collection::vec(0..n, 50..600);
            (Just(topology_id), replicas, gateways, Just(constant as f64))
        })
        .prop_map(|(topology_id, replicas, gateways, constant)| Setup {
            topology_id,
            replicas,
            gateways,
            constant,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The bounded-imbalance invariant holds after every request, for
    /// any topology, replica/affinity layout, demand sequence, and
    /// distribution constant.
    #[test]
    fn unit_counts_never_skew_past_the_constant(s in setup()) {
        let topo = s.topology();
        let routes = topo.routes();
        let mut redirector = Redirector::new(1, s.constant);
        for &(node, aff) in &s.replicas {
            for _ in 0..aff {
                redirector.install(object(), NodeId::new(node));
            }
        }
        for &gw in &s.gateways {
            redirector
                .choose_replica(object(), NodeId::new(gw), &routes)
                .expect("replicas exist");
            let replicas = redirector.replicas(object());
            let min_unit = replicas
                .iter()
                .map(|r| r.unit_rcnt())
                .fold(f64::INFINITY, f64::min);
            for r in replicas {
                let bound = s.constant * min_unit + 1.0 / r.aff as f64;
                prop_assert!(
                    r.unit_rcnt() <= bound + 1e-9,
                    "replica {} unit count {} exceeds {} (min {}, c {})",
                    r.host,
                    r.unit_rcnt(),
                    bound,
                    min_unit,
                    s.constant
                );
            }
        }
    }

    /// No replica starves: whatever the demand pattern, every replica's
    /// count keeps growing (the q-rule guarantees the minimum is served).
    #[test]
    fn no_replica_starves(s in setup()) {
        prop_assume!(s.replicas.len() >= 2);
        prop_assume!(s.gateways.len() >= 200);
        let topo = s.topology();
        let routes = topo.routes();
        let mut redirector = Redirector::new(1, s.constant);
        for &(node, aff) in &s.replicas {
            for _ in 0..aff {
                redirector.install(object(), NodeId::new(node));
            }
        }
        for &gw in &s.gateways {
            redirector
                .choose_replica(object(), NodeId::new(gw), &routes)
                .expect("replicas exist");
        }
        // Initial rcnt is 1; anything above 1 was actually chosen.
        // After ≥200 requests over ≤5 replicas, the imbalance bound
        // forces every replica to have been chosen.
        for r in redirector.replicas(object()) {
            prop_assert!(
                r.rcnt > 1,
                "replica {} was never chosen in {} requests",
                r.host,
                s.gateways.len()
            );
        }
    }

    /// Determinism: the same demand sequence yields the same decisions.
    #[test]
    fn distribution_is_deterministic(s in setup()) {
        let topo = s.topology();
        let routes = topo.routes();
        let run = || {
            let mut redirector = Redirector::new(1, s.constant);
            for &(node, aff) in &s.replicas {
                for _ in 0..aff {
                    redirector.install(object(), NodeId::new(node));
                }
            }
            s.gateways
                .iter()
                .map(|&gw| {
                    redirector
                        .choose_replica(object(), NodeId::new(gw), &routes)
                        .expect("replicas exist")
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
