//! Property tests of the request distribution algorithm's structural
//! invariants — stronger statements than the Theorem 1–5 bounds, checked
//! after *every single request* rather than at equilibrium.
//!
//! The key invariant: for every replica `r`, at all times,
//!
//! ```text
//! unit_rcnt(r) ≤ constant × min_unit_rcnt + 1/aff(r)
//! ```
//!
//! because a replica's count only grows when it is either the minimum
//! itself or the closest replica still within the constant's allowance.
//! This is what bounds how far the distribution can ever skew — the
//! mechanism behind the paper's load-shedding arithmetic.
//!
//! Setups are drawn from a seeded [`SimRng`] stream so every case is
//! deterministic and reproducible.

use radar_core::{ObjectId, Redirector};
use radar_simcore::SimRng;
use radar_simnet::{builders, NodeId, Topology};
use std::collections::BTreeMap;

fn object() -> ObjectId {
    ObjectId::new(0)
}

#[derive(Debug, Clone)]
struct Setup {
    topology_id: u8,
    /// (node, affinity) replicas; at least one.
    replicas: Vec<(u16, u32)>,
    /// Request sequence as gateway indices.
    gateways: Vec<u16>,
    constant: f64,
}

impl Setup {
    /// Draws a random topology/replica-layout/demand-sequence triple.
    fn generate(rng: &mut SimRng) -> Self {
        let topology_id = rng.index(4) as u8;
        let n = node_count(topology_id);
        let mut replicas: BTreeMap<u16, u32> = BTreeMap::new();
        for _ in 0..1 + rng.index(5) {
            replicas.insert(rng.index(n as usize) as u16, 1 + rng.index(4) as u32);
        }
        let gateways = (0..50 + rng.index(550))
            .map(|_| rng.index(n as usize) as u16)
            .collect();
        Setup {
            topology_id,
            replicas: replicas.into_iter().collect(),
            gateways,
            constant: (2 + rng.index(3)) as f64,
        }
    }

    fn topology(&self) -> Topology {
        match self.topology_id {
            0 => builders::line(7),
            1 => builders::ring(9),
            2 => builders::grid(3, 3),
            _ => builders::star(8),
        }
    }

    fn install_all(&self, redirector: &mut Redirector) {
        for &(node, aff) in &self.replicas {
            for _ in 0..aff {
                redirector.install(object(), NodeId::new(node));
            }
        }
    }
}

fn node_count(topology_id: u8) -> u16 {
    match topology_id {
        0 => 7,
        1 => 9,
        2 => 9,
        _ => 8,
    }
}

/// The bounded-imbalance invariant holds after every request, for
/// any topology, replica/affinity layout, demand sequence, and
/// distribution constant.
#[test]
fn unit_counts_never_skew_past_the_constant() {
    let mut rng = SimRng::seed_from(0xD157_0001);
    for _ in 0..96 {
        let s = Setup::generate(&mut rng);
        let topo = s.topology();
        let routes = topo.routes();
        let mut redirector = Redirector::new(1, s.constant);
        s.install_all(&mut redirector);
        for &gw in &s.gateways {
            redirector
                .choose_replica(object(), NodeId::new(gw), &routes)
                .expect("replicas exist");
            let replicas = redirector.replicas(object());
            let min_unit = replicas
                .iter()
                .map(|r| r.unit_rcnt())
                .fold(f64::INFINITY, f64::min);
            for r in replicas {
                let bound = s.constant * min_unit + 1.0 / r.aff as f64;
                assert!(
                    r.unit_rcnt() <= bound + 1e-9,
                    "replica {} unit count {} exceeds {} (min {}, c {})",
                    r.host,
                    r.unit_rcnt(),
                    bound,
                    min_unit,
                    s.constant
                );
            }
        }
    }
}

/// No replica starves: whatever the demand pattern, every replica's
/// count keeps growing (the q-rule guarantees the minimum is served).
#[test]
fn no_replica_starves() {
    let mut rng = SimRng::seed_from(0xD157_0002);
    let mut exercised = 0;
    while exercised < 48 {
        let s = Setup::generate(&mut rng);
        if s.replicas.len() < 2 || s.gateways.len() < 200 {
            continue;
        }
        exercised += 1;
        let topo = s.topology();
        let routes = topo.routes();
        let mut redirector = Redirector::new(1, s.constant);
        s.install_all(&mut redirector);
        for &gw in &s.gateways {
            redirector
                .choose_replica(object(), NodeId::new(gw), &routes)
                .expect("replicas exist");
        }
        // Initial rcnt is 1; anything above 1 was actually chosen.
        // After ≥200 requests over ≤5 replicas, the imbalance bound
        // forces every replica to have been chosen.
        for r in redirector.replicas(object()) {
            assert!(
                r.rcnt > 1,
                "replica {} was never chosen in {} requests",
                r.host,
                s.gateways.len()
            );
        }
    }
}

/// Determinism: the same demand sequence yields the same decisions.
#[test]
fn distribution_is_deterministic() {
    let mut rng = SimRng::seed_from(0xD157_0003);
    for _ in 0..48 {
        let s = Setup::generate(&mut rng);
        let topo = s.topology();
        let routes = topo.routes();
        let run = || {
            let mut redirector = Redirector::new(1, s.constant);
            s.install_all(&mut redirector);
            s.gateways
                .iter()
                .map(|&gw| {
                    redirector
                        .choose_replica(object(), NodeId::new(gw), &routes)
                        .expect("replicas exist")
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
