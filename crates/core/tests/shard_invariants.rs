//! Property test: cross-shard migrations under delayed notifications.
//!
//! The paper's directory invariant — "the redirector is notified of copy
//! creation *after* the fact and of deletion *before* the fact" — is
//! what keeps every object continuously servable while replicas move.
//! The sharded event loop splits the directory into per-thread shards
//! ([`Directory::split_shards`]), so the invariant must survive
//! migrations whose create lands on one shard epoch and whose drop lands
//! on another, with notification delays in between (a slow or faulted
//! link delivering the `notify_created` long after the copy exists).
//!
//! The harness replays a random migration script three ways — directly
//! against one [`Directory`], and against 2-way and 3-way shard splits
//! with barrier cadences drawn from the same seeded [`SimRng`] stream —
//! and checks after every step and at every absorb:
//!
//! * every object keeps at least one replica (drop-of-last refused);
//! * a drop is only ever granted for a host the directory listed
//!   (deletion arbitration precedes the physical delete);
//! * after absorbing, the sharded directory equals the serially-built
//!   one, counters included.

use radar_core::{shard_ranges, Directory, ObjectId};
use radar_simcore::SimRng;
use radar_simnet::NodeId;

const OBJECTS: u32 = 24;
const HOSTS: u16 = 8;
const STEPS: usize = 400;

/// One directory operation of a migration script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// The copy exists; the notification arrives now (possibly long
    /// after a link fault delayed it).
    NotifyCreated(ObjectId, NodeId),
    /// The host asks to delete its copy; refusal means it must keep it.
    RequestDrop(ObjectId, NodeId),
}

/// Generates a migration-heavy script: each "migration" is a create on
/// a (usually different) host followed — after a random delay measured
/// in interleaved steps — by a drop request on the source host. Delays
/// model notification latency under link faults: the drop of one
/// migration can arrive before the create notification of the next.
fn script(rng: &mut SimRng) -> Vec<Op> {
    let mut ops = Vec::with_capacity(STEPS * 2);
    // Pending delayed ops: (remaining steps, op).
    let mut delayed: Vec<(usize, Op)> = Vec::new();
    for _ in 0..STEPS {
        // Deliver any delayed notifications that are due.
        let mut i = 0;
        while i < delayed.len() {
            if delayed[i].0 == 0 {
                ops.push(delayed.swap_remove(i).1);
            } else {
                delayed[i].0 -= 1;
                i += 1;
            }
        }
        let object = ObjectId::new(rng.index(OBJECTS as usize) as u32);
        let target = NodeId::new(rng.index(HOSTS as usize) as u16);
        let source = NodeId::new(rng.index(HOSTS as usize) as u16);
        // A migration: create at the target now; the create notification
        // and the source's drop request each suffer independent delays.
        let create_delay = rng.index(4);
        let drop_delay = create_delay + rng.index(6);
        delayed.push((create_delay, Op::NotifyCreated(object, target)));
        delayed.push((drop_delay, Op::RequestDrop(object, source)));
    }
    // Flush the tail in delay order so every create eventually lands.
    delayed.sort_by_key(|&(d, _)| d);
    ops.extend(delayed.into_iter().map(|(_, op)| op));
    ops
}

fn seeded_directory() -> Directory {
    let mut dir = Directory::new(OBJECTS);
    for i in 0..OBJECTS {
        dir.install(ObjectId::new(i), NodeId::new((i % u32::from(HOSTS)) as u16));
    }
    dir
}

/// Applies one op to a plain directory, asserting the invariants.
fn apply_serial(dir: &mut Directory, op: Op) {
    match op {
        Op::NotifyCreated(object, host) => dir.notify_created(object, host),
        Op::RequestDrop(object, host) => {
            let listed = dir.replicas(object).iter().any(|r| r.host == host);
            let granted = dir.request_drop(object, host);
            assert!(
                !granted || listed,
                "drop granted for a replica the directory never listed"
            );
            assert!(
                dir.replica_count(object) >= 1,
                "object {object} lost its last replica"
            );
        }
    }
}

/// Replays the script through `num_shards` shards with random barrier
/// cadence, returning the reunited directory. Every op lands on the
/// shard owning its object — a migration's create and drop may land on
/// different shards and in different split epochs.
fn apply_sharded(script: &[Op], num_shards: usize, rng: &mut SimRng) -> Directory {
    let mut dir = seeded_directory();
    let ranges = shard_ranges(OBJECTS, num_shards);
    let shard_of = |object: ObjectId| -> usize {
        ranges
            .iter()
            .position(|&(start, end)| {
                (object.index() as u32) >= start && (object.index() as u32) < end
            })
            .expect("object within range")
    };
    let mut shards = dir.split_shards(num_shards);
    for &op in script {
        match op {
            Op::NotifyCreated(object, host) => {
                shards[shard_of(object)].notify_created(object, host);
            }
            Op::RequestDrop(object, host) => {
                let s = &mut shards[shard_of(object)];
                let listed = s.replicas(object).iter().any(|r| r.host == host);
                let granted = s.request_drop(object, host);
                assert!(!granted || listed, "shard granted an unlisted drop");
                assert!(
                    s.replica_count(object) >= 1,
                    "shard let {object} lose its last replica"
                );
            }
        }
        // Random epoch barrier: reunite and re-split.
        if rng.chance(0.05) {
            dir.absorb_shards(shards);
            for i in 0..OBJECTS {
                assert!(
                    dir.replica_count(ObjectId::new(i)) >= 1,
                    "absorb lost the last replica of object {i}"
                );
            }
            shards = dir.split_shards(num_shards);
        }
    }
    dir.absorb_shards(shards);
    dir
}

#[test]
fn cross_shard_migrations_preserve_the_notification_invariant() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from(0xD1CE ^ seed);
        let ops = script(&mut rng);

        let mut serial = seeded_directory();
        for &op in &ops {
            apply_serial(&mut serial, op);
        }

        for num_shards in [2usize, 3] {
            let mut barrier_rng = rng.fork(num_shards as u64);
            let sharded = apply_sharded(&ops, num_shards, &mut barrier_rng);
            assert_eq!(
                sharded, serial,
                "seed {seed}: {num_shards}-shard replay diverged from serial"
            );
        }
    }
}

#[test]
fn drop_of_last_replica_is_refused_on_shards() {
    let mut dir = Directory::new(1);
    let x = ObjectId::new(0);
    dir.install(x, NodeId::new(0));
    let mut shards = dir.split_shards(2);
    let owner = shards
        .iter_mut()
        .find(|s| s.contains(x))
        .expect("one shard owns the object");
    assert!(
        !owner.request_drop(x, NodeId::new(0)),
        "a shard must refuse to drop the last replica"
    );
    assert_eq!(owner.replica_count(x), 1);
    dir.absorb_shards(shards);
    assert_eq!(dir.replica_count(x), 1);
}
