//! Protocol fuzzing: a miniature multi-host platform built directly on
//! `radar-core` (no simulator), driven by random demand for many
//! placement epochs. After every epoch the protocol's structural
//! invariants must hold:
//!
//! * the redirector's replica set of every object is exactly the set of
//!   hosts physically holding it (the subset invariant, strengthened to
//!   equality because this harness applies actions synchronously);
//! * every object retains at least one replica;
//! * affinities recorded by hosts and the redirector agree;
//! * every surviving replica has affinity ≥ 1.
//!
//! Demand scripts are drawn from a seeded [`SimRng`] stream so every
//! fuzz case is deterministic and reproducible.

use radar_core::placement::{handle_create_obj, run_placement, PlacementEnv};
use radar_core::{CreateObjRequest, CreateObjResponse, HostState, ObjectId, Params, Redirector};
use radar_simcore::SimRng;
use radar_simnet::{builders, NodeId, RoutingTable, Topology};

struct MiniPlatform {
    routes: RoutingTable,
    hosts: Vec<HostState>,
    redirector: Redirector,
    params: Params,
    now: f64,
    refusal_mask: u64,
}

impl MiniPlatform {
    fn new(topology: Topology, num_objects: u32, params: Params) -> Self {
        let routes = topology.routes();
        let hosts = topology
            .nodes()
            .map(|n| HostState::new(n, params))
            .collect::<Vec<_>>();
        let mut platform = Self {
            routes,
            hosts,
            redirector: Redirector::new(num_objects, params.distribution_constant),
            params,
            now: 0.0,
            refusal_mask: 0,
        };
        let n = platform.hosts.len() as u32;
        for i in 0..num_objects {
            let node = NodeId::new((i % n) as u16);
            platform.redirector.install(ObjectId::new(i), node);
            platform.hosts[node.index()].install_object(ObjectId::new(i));
        }
        platform
    }

    /// Routes `count` requests for `object` entering at `gateway`
    /// through the distribution algorithm, spread over the current
    /// placement period.
    fn drive_requests(&mut self, object: ObjectId, gateway: NodeId, count: u32) {
        for k in 0..count {
            let t = self.now + self.params.placement_period * (k as f64 + 0.5) / count as f64;
            let Some(host) = self
                .redirector
                .choose_replica(object, gateway, &self.routes)
            else {
                panic!("{object} lost all replicas");
            };
            let path = self.routes.path(host, gateway);
            let h = &mut self.hosts[host.index()];
            h.record_access(object, &path);
            h.record_serviced(t, object);
        }
    }

    /// Runs one placement epoch (each host once, in node order).
    fn placement_epoch(&mut self) {
        self.now += self.params.placement_period;
        for i in 0..self.hosts.len() {
            let node = NodeId::new(i as u16);
            let mut host = std::mem::replace(&mut self.hosts[i], HostState::new(node, self.params));
            {
                let mut env = FuzzEnv {
                    self_index: i,
                    hosts: &mut self.hosts,
                    redirector: &mut self.redirector,
                    routes: &self.routes,
                    now: self.now,
                    refusal_mask: self.refusal_mask,
                    calls: 0,
                };
                run_placement(&mut host, self.now, &mut env);
            }
            self.hosts[i] = host;
        }
    }

    /// The structural invariants that must hold between epochs.
    fn check_invariants(&self) {
        for i in 0..self.redirector.num_objects() {
            let object = ObjectId::new(i as u32);
            let replicas = self.redirector.replicas(object);
            assert!(!replicas.is_empty(), "{object} lost its last replica");
            // Redirector set == hosts actually holding the object, with
            // matching affinities.
            for info in replicas {
                let host = &self.hosts[info.host.index()];
                let state = host.object(object);
                assert!(
                    state.is_some(),
                    "redirector lists {object}@{} but the host lacks it",
                    info.host
                );
                let state = state.expect("checked above");
                assert!(state.aff() >= 1);
                assert_eq!(
                    state.aff(),
                    info.aff,
                    "affinity mismatch for {object}@{}",
                    info.host
                );
            }
            for host in &self.hosts {
                if host.has_object(object) {
                    assert!(
                        replicas.iter().any(|r| r.host == host.node()),
                        "{} holds {} unknown to the redirector",
                        host.node(),
                        object
                    );
                }
            }
        }
    }
}

struct FuzzEnv<'a> {
    self_index: usize,
    hosts: &'a mut [HostState],
    redirector: &'a mut Redirector,
    routes: &'a RoutingTable,
    now: f64,
    /// Failure injection: refuse every CreateObj whose sequence number
    /// hits this mask (0 = never), and hide offload recipients when odd.
    refusal_mask: u64,
    calls: u64,
}

impl PlacementEnv for FuzzEnv<'_> {
    fn create_obj(&mut self, target: NodeId, req: CreateObjRequest) -> CreateObjResponse {
        assert_ne!(target.index(), self.self_index);
        self.calls += 1;
        // Injected failure: the candidate refuses (network partition,
        // overload race, …) — always legal per the protocol.
        if self.refusal_mask != 0 && self.calls.is_multiple_of(self.refusal_mask) {
            return CreateObjResponse::Refused;
        }
        let resp = handle_create_obj(&mut self.hosts[target.index()], self.now, &req);
        if resp.is_accepted() {
            self.redirector.notify_created(req.object, target);
        }
        resp
    }

    fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
        self.redirector.request_drop(object, host)
    }

    fn notify_affinity(&mut self, object: ObjectId, host: NodeId, aff: u32) {
        self.redirector.notify_affinity(object, host, aff);
    }

    fn find_offload_recipient(&mut self, requester: NodeId) -> Option<(NodeId, f64)> {
        self.calls += 1;
        if self.refusal_mask != 0 && self.calls % self.refusal_mask == 1 {
            return None; // injected failure: no load reports available
        }
        let lw = self.hosts[0].params().low_watermark;
        self.hosts
            .iter_mut()
            .enumerate()
            .filter(|(j, _)| *j != self.self_index && *j != requester.index())
            .map(|(_, h)| {
                h.advance(self.now);
                (h.node(), h.load_upper())
            })
            .filter(|&(_, load)| load < lw)
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite loads"))
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.routes.distance(a, b)
    }

    fn may_replicate(&self, _object: ObjectId) -> bool {
        true
    }

    fn replica_count(&self, object: ObjectId) -> usize {
        self.redirector.replica_count(object)
    }
}

/// One epoch's demand script: `(object, gateway, count)` triples.
fn demand(rng: &mut SimRng, objects: u32, nodes: u16) -> Vec<(u32, u16, u32)> {
    (0..rng.index(40))
        .map(|_| {
            (
                rng.index(objects as usize) as u32,
                rng.index(nodes as usize) as u16,
                rng.index(60) as u32,
            )
        })
        .collect()
}

/// Between 1 and `max_epochs - 1` epochs of random demand.
fn epochs(
    rng: &mut SimRng,
    objects: u32,
    nodes: u16,
    max_epochs: usize,
) -> Vec<Vec<(u32, u16, u32)>> {
    (0..1 + rng.index(max_epochs - 1))
        .map(|_| demand(rng, objects, nodes))
        .collect()
}

#[test]
fn random_demand_preserves_invariants() {
    let mut rng = SimRng::seed_from(0xF022_0001);
    for _ in 0..32 {
        let mut platform = MiniPlatform::new(builders::grid(3, 3), 12, Params::paper());
        for script in &epochs(&mut rng, 12, 9, 8) {
            for &(obj, gw, count) in script {
                platform.drive_requests(ObjectId::new(obj), NodeId::new(gw), count);
            }
            platform.placement_epoch();
            platform.check_invariants();
        }
    }
}

#[test]
fn hostile_demand_with_tight_watermarks() {
    // Tighter watermarks make admission scarce and offloading
    // frequent; the invariants must still hold.
    let mut rng = SimRng::seed_from(0xF022_0002);
    for _ in 0..32 {
        let params = Params::builder()
            .watermarks(0.2, 0.5)
            .build()
            .expect("valid params");
        let mut platform = MiniPlatform::new(builders::ring(6), 8, params);
        for script in &epochs(&mut rng, 8, 6, 6) {
            for &(obj, gw, count) in script {
                platform.drive_requests(ObjectId::new(obj), NodeId::new(gw), count);
            }
            platform.placement_epoch();
            platform.check_invariants();
        }
    }
}

#[test]
fn injected_refusals_preserve_invariants() {
    // Candidates refuse unpredictably and load reports vanish; the
    // protocol may make less progress but must never corrupt state.
    let mut rng = SimRng::seed_from(0xF022_0003);
    for _ in 0..32 {
        let mask = 1 + rng.index(4) as u64;
        let mut platform = MiniPlatform::new(builders::ring(8), 10, Params::paper());
        platform.refusal_mask = mask;
        for script in &epochs(&mut rng, 10, 8, 6) {
            for &(obj, gw, count) in script {
                platform.drive_requests(ObjectId::new(obj), NodeId::new(gw), count);
            }
            platform.placement_epoch();
            platform.check_invariants();
        }
    }
}

#[test]
fn idle_epochs_converge_to_single_replicas() {
    // Demand, then silence: the deletion threshold must strip every
    // redundant replica but the last.
    for warm_epochs in 1usize..4 {
        let mut platform = MiniPlatform::new(builders::line(5), 6, Params::paper());
        for _ in 0..warm_epochs {
            for obj in 0..6u32 {
                for gw in 0..5u16 {
                    platform.drive_requests(ObjectId::new(obj), NodeId::new(gw), 20);
                }
            }
            platform.placement_epoch();
            platform.check_invariants();
        }
        for _ in 0..4 {
            platform.placement_epoch();
            platform.check_invariants();
        }
        for i in 0..6u32 {
            let object = ObjectId::new(i);
            assert_eq!(
                platform.redirector.replica_count(object),
                1,
                "{object} kept redundant cold replicas"
            );
            assert_eq!(platform.redirector.total_affinity(object), 1);
        }
    }
}
