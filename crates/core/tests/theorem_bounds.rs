//! Empirical validation of the paper's Theorems 1–5 against the actual
//! request distribution algorithm.
//!
//! The theorems bound how much load can shift when a replica set changes
//! *under steady demand* — the paper defines steady demand as a fixed
//! request pattern with requests from each source evenly spaced in time.
//! We reproduce that setting exactly: a deterministic smooth weighted
//! round-robin interleaves gateway requests, the redirector distributes
//! them, and per-host service shares are measured over a long horizon
//! before and after a single replication or migration.
//!
//! Loads are expressed as request-rate shares (total demand normalized to
//! 1), which is what the theorems' `load(x_i)` means for a single object.
//!
//! Scenarios are drawn from a seeded [`SimRng`] stream so every case is
//! deterministic and reproducible.

use radar_core::{bounds, ObjectId, Redirector};
use radar_simcore::SimRng;
use radar_simnet::{builders, NodeId, RoutingTable, Topology};
use std::collections::BTreeMap;

const HORIZON: u64 = 40_000;
/// Relative tolerance on the theorem bounds, covering the warm-up
/// transient after the redirector resets request counts and the
/// discreteness of the round-robin schedule.
const TOL: f64 = 0.02;

fn object() -> ObjectId {
    ObjectId::new(0)
}

/// Deterministic smooth weighted round-robin over gateways: source `g`
/// receives a share `w_g / Σw` of the slots, maximally evenly spaced —
/// the paper's "requests from any given client are evenly spaced in
/// time".
struct SteadyDemand {
    weights: Vec<(NodeId, i64)>,
    credits: Vec<i64>,
    total: i64,
}

impl SteadyDemand {
    fn new(weights: &[(NodeId, u32)]) -> Self {
        let weights: Vec<(NodeId, i64)> = weights
            .iter()
            .filter(|&&(_, w)| w > 0)
            .map(|&(g, w)| (g, w as i64))
            .collect();
        assert!(!weights.is_empty(), "steady demand needs a positive weight");
        let total = weights.iter().map(|&(_, w)| w).sum();
        let credits = vec![0; weights.len()];
        Self {
            weights,
            credits,
            total,
        }
    }

    fn next_gateway(&mut self) -> NodeId {
        let mut best = 0;
        for (i, &(_, w)) in self.weights.iter().enumerate() {
            self.credits[i] += w;
            if self.credits[i] > self.credits[best] {
                best = i;
            }
        }
        self.credits[best] -= self.total;
        self.weights[best].0
    }
}

/// Runs `horizon` requests through the redirector and returns each
/// host's share of serviced requests.
fn measure_shares(
    redirector: &mut Redirector,
    demand: &[(NodeId, u32)],
    routes: &RoutingTable,
    horizon: u64,
) -> BTreeMap<NodeId, f64> {
    let mut schedule = SteadyDemand::new(demand);
    let mut counts: BTreeMap<NodeId, u64> = BTreeMap::new();
    for _ in 0..horizon {
        let gw = schedule.next_gateway();
        let host = redirector
            .choose_replica(object(), gw, routes)
            .expect("object has replicas");
        *counts.entry(host).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(h, c)| (h, c as f64 / horizon as f64))
        .collect()
}

/// A randomized steady-demand scenario: topology, replica placement with
/// affinities, demand weights, and a source/target pair for relocation.
#[derive(Debug, Clone)]
struct Scenario {
    topology_id: u8,
    replicas: Vec<(u16, u32)>, // (node index, affinity)
    demand: Vec<u32>,
    source_idx: usize,
    target: u16,
}

impl Scenario {
    fn generate(rng: &mut SimRng) -> Self {
        let topology_id = rng.index(4) as u8;
        let n = match topology_id {
            0 => 6u16,
            1 => 8,
            2 => 9,
            _ => 7,
        };
        let mut replicas: BTreeMap<u16, u32> = BTreeMap::new();
        for _ in 0..1 + rng.index(4) {
            replicas.insert(rng.index(n as usize) as u16, 1 + rng.index(3) as u32);
        }
        let replicas: Vec<(u16, u32)> = replicas.into_iter().collect();
        let mut demand: Vec<u32> = (0..n).map(|_| rng.index(6) as u32).collect();
        if demand.iter().all(|&w| w == 0) {
            demand[0] = 1;
        }
        Scenario {
            topology_id,
            source_idx: rng.index(replicas.len()),
            replicas,
            demand,
            target: rng.index(n as usize) as u16,
        }
    }

    fn topology(&self) -> Topology {
        match self.topology_id {
            0 => builders::line(6),
            1 => builders::ring(8),
            2 => builders::grid(3, 3),
            _ => builders::star(7),
        }
    }
}

struct Prepared {
    routes: RoutingTable,
    redirector: Redirector,
    demand: Vec<(NodeId, u32)>,
    source: NodeId,
    source_aff: u32,
    target: NodeId,
}

fn prepare(s: &Scenario) -> Prepared {
    let topo = s.topology();
    let routes = topo.routes();
    let mut redirector = Redirector::new(1, 2.0);
    for &(node, aff) in &s.replicas {
        for _ in 0..aff {
            redirector.install(object(), NodeId::new(node));
        }
    }
    let demand: Vec<(NodeId, u32)> = s
        .demand
        .iter()
        .enumerate()
        .map(|(i, &w)| (NodeId::new(i as u16), w))
        .collect();
    let (source_node, source_aff) = s.replicas[s.source_idx];
    Prepared {
        routes,
        redirector,
        demand,
        source: NodeId::new(source_node),
        source_aff,
        target: NodeId::new(s.target),
    }
}

fn share(shares: &BTreeMap<NodeId, f64>, node: NodeId) -> f64 {
    shares.get(&node).copied().unwrap_or(0.0)
}

/// Draws scenarios from the seeded stream, skipping those `keep`
/// rejects, until `cases` have been run through `check`.
fn for_each_scenario(
    stream: u64,
    cases: usize,
    keep: impl Fn(&Prepared) -> bool,
    check: impl Fn(Prepared),
) {
    let mut rng = SimRng::seed_from(stream);
    let mut exercised = 0;
    while exercised < cases {
        let p = prepare(&Scenario::generate(&mut rng));
        if !keep(&p) {
            continue;
        }
        exercised += 1;
        check(p);
    }
}

/// Theorems 1 & 2: replication sheds at most ¾·ℓ from the source and
/// adds at most 4·ℓ/aff to the target.
#[test]
fn replication_respects_source_and_target_bounds() {
    for_each_scenario(
        0x7B_0001,
        48,
        |p| p.target != p.source,
        |mut p| {
            let before = measure_shares(&mut p.redirector, &p.demand, &p.routes, HORIZON);
            let ell = share(&before, p.source);
            let target_before = share(&before, p.target);

            // Replicate: new replica (or affinity bump) on the target; the
            // redirector resets request counts, as in the protocol.
            p.redirector.notify_created(object(), p.target);
            let after = measure_shares(&mut p.redirector, &p.demand, &p.routes, HORIZON);

            let decrease = ell - share(&after, p.source);
            assert!(
                decrease <= bounds::replication_source_decrease(ell) + TOL,
                "T1 violated: decrease {decrease} > 3/4·{ell}"
            );
            let increase = share(&after, p.target) - target_before;
            assert!(
                increase <= bounds::target_increase(ell, p.source_aff) + TOL,
                "T2 violated: increase {increase} > 4·{ell}/{}",
                p.source_aff
            );
        },
    );
}

/// Theorems 3 & 4: migration sheds at most ℓ/aff + ¾·ℓ·(aff−1)/aff
/// from the source and adds at most 4·ℓ/aff to the target.
#[test]
fn migration_respects_source_and_target_bounds() {
    for_each_scenario(
        0x7B_0002,
        48,
        |p| p.target != p.source,
        |mut p| {
            // Migration needs the source to survive as a replica set: if the
            // source is the only replica and the target equals it we'd have
            // nothing to measure; the target replica always exists after the
            // move, so the set stays non-empty.
            let before = measure_shares(&mut p.redirector, &p.demand, &p.routes, HORIZON);
            let ell = share(&before, p.source);
            let target_before = share(&before, p.target);

            // Migrate one affinity unit: create at target, reduce at source.
            p.redirector.notify_created(object(), p.target);
            if p.source_aff > 1 {
                p.redirector
                    .notify_affinity(object(), p.source, p.source_aff - 1);
            } else {
                assert!(p.redirector.request_drop(object(), p.source));
            }
            let after = measure_shares(&mut p.redirector, &p.demand, &p.routes, HORIZON);

            let decrease = ell - share(&after, p.source);
            assert!(
                decrease <= bounds::migration_source_decrease(ell, p.source_aff) + TOL,
                "T3 violated: decrease {decrease} > bound for ell={ell}, aff={}",
                p.source_aff
            );
            let increase = share(&after, p.target) - target_before;
            assert!(
                increase <= bounds::target_increase(ell, p.source_aff) + TOL,
                "T4 violated: increase {increase} > 4·{ell}/{}",
                p.source_aff
            );
        },
    );
}

/// Theorem 5: if a host replicates only when its unit access share
/// exceeds m, every replica's unit share after the replication is at
/// least m/4.
#[test]
fn replication_threshold_floor_holds() {
    for_each_scenario(
        0x7B_0003,
        48,
        |p| p.target != p.source,
        |mut p| {
            let before = measure_shares(&mut p.redirector, &p.demand, &p.routes, HORIZON);
            let source_unit = share(&before, p.source) / p.source_aff as f64;
            // Interpret the source's unit share as exceeding threshold m;
            // i.e. m is anything below source_unit. Take m = source_unit.
            let m = source_unit;
            if m <= 0.05 {
                return; // only meaningful when the source is warm
            }

            p.redirector.notify_created(object(), p.target);
            let after = measure_shares(&mut p.redirector, &p.demand, &p.routes, HORIZON);

            for info in p.redirector.replicas(object()) {
                let unit = share(&after, info.host) / info.aff as f64;
                assert!(
                    unit >= bounds::post_replication_unit_count_floor(m) - TOL,
                    "T5 violated: replica {} unit share {unit} < {m}/4",
                    info.host
                );
            }
        },
    );
}

/// The theorems hold on the full UUNET evaluation topology too, not just
/// the small property graphs — one deterministic spot check.
#[test]
fn replication_bound_on_uunet() {
    let topo = builders::uunet();
    let routes = topo.routes();
    let mut redirector = Redirector::new(1, 2.0);
    let source = NodeId::new(0);
    redirector.install(object(), source);
    // Demand concentrated around the source's region.
    let demand: Vec<(NodeId, u32)> = topo
        .nodes()
        .map(|g| {
            (
                g,
                if routes.distance(g, source) <= 2 {
                    5
                } else {
                    1
                },
            )
        })
        .collect();
    let before = measure_shares(&mut redirector, &demand, &routes, HORIZON);
    let ell = before[&source];
    assert!((ell - 1.0).abs() < 1e-9, "sole replica serves everything");

    let target = NodeId::new(30);
    redirector.notify_created(object(), target);
    let after = measure_shares(&mut redirector, &demand, &routes, HORIZON);
    let decrease = ell - after[&source];
    assert!(decrease <= bounds::replication_source_decrease(ell) + TOL);
    let increase = after.get(&target).copied().unwrap_or(0.0);
    assert!(increase <= bounds::target_increase(ell, 1) + TOL);
}
