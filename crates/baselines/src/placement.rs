//! Baseline *placement* policies for head-to-head comparison with the
//! paper's distribution algorithm ([`radar_sim::RadarPlacement`]).
//!
//! Both implement [`radar_sim::PlacementPolicy`] over the identical
//! [`PlacementEnv`] surface the paper's algorithm uses, so a comparison
//! run differs only in the decision rule:
//!
//! * [`AvailabilityPlacement`] — availability-aware continuous
//!   placement (after arXiv 1605.04069): steer every object toward a
//!   fixed replica-count target, replicating under-replicated objects
//!   toward their demand and shedding excess copies, with no load
//!   awareness at all;
//! * [`ClusterPlacement`] — cluster-based load-balancing replication
//!   (after arXiv 1009.4563): replicate hot objects to the candidate
//!   carrying the *largest* demand share (the cluster head of its
//!   access cluster, vs. the paper's farthest-qualified rule) and shed
//!   load watermark-to-watermark like a classic load balancer.

use radar_core::placement::{
    PlacementAction, PlacementDecision, PlacementEnv, PlacementOutcome, PlacementScratch,
};
use radar_core::{bounds, CreateObjRequest, HostState, ObjectId, RelocationKind};
use radar_sim::PlacementPolicy;
use radar_simnet::NodeId;

/// Pushes one decision record with no share/ratio context (the baseline
/// rules are threshold tests, not path-share tests).
#[allow(clippy::too_many_arguments)]
fn record(
    out: &mut PlacementOutcome,
    object: ObjectId,
    action: PlacementAction,
    target: Option<NodeId>,
    unit_rate: f64,
    share: Option<f64>,
    u: f64,
    m: f64,
) {
    out.decisions.push(PlacementDecision {
        object,
        action,
        target,
        unit_rate,
        share,
        ratio: None,
        deletion_threshold: u,
        replication_threshold: m,
    });
}

/// Availability-aware continuous replica placement: every object is
/// driven toward `target` replicas, continuously.
///
/// Each epoch, for every hosted object, the policy reads the live
/// replica count from the directory ([`PlacementEnv::replica_count`]):
/// an under-replicated object is copied to the demand candidate
/// farthest along its preference paths (falling back to an under-loaded
/// host when demand is purely local), an over-replicated one sheds this
/// host's copy (the redirector still protects the last replica). Load
/// plays no part — that is the point of the comparison: availability
/// stays flat while max load and update traffic drift wherever the
/// replica floor pushes them.
#[derive(Debug, Clone, Copy)]
pub struct AvailabilityPlacement {
    target: usize,
}

impl AvailabilityPlacement {
    /// Default replica-count target (2 copies: survives one host loss).
    pub const DEFAULT_TARGET: usize = 2;

    /// Creates the policy with the default target of
    /// [`Self::DEFAULT_TARGET`] replicas per object.
    pub fn new() -> Self {
        Self::with_target(Self::DEFAULT_TARGET)
    }

    /// Creates the policy with an explicit replica-count target (≥ 1).
    pub fn with_target(target: usize) -> Self {
        assert!(target >= 1, "replica target must be at least 1");
        Self { target }
    }
}

impl Default for AvailabilityPlacement {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementPolicy for AvailabilityPlacement {
    fn run_epoch(
        &mut self,
        host: &mut HostState,
        now: f64,
        env: &mut dyn PlacementEnv,
        scratch: &mut PlacementScratch,
        out: &mut PlacementOutcome,
    ) {
        out.clear();
        host.advance(now);
        let params = *host.params();
        let s = host.node();
        let mut object_ids = std::mem::take(scratch.object_ids_mut());
        host.collect_object_ids(&mut object_ids);
        for &x in &object_ids {
            let o = host.object(x).expect("object_ids() returns hosted objects");
            let (aff, cnt_s, unit_load, acquired_at) =
                (o.aff(), o.count(s), o.unit_load(), o.acquired_at());
            // Same partial-window rule as the paper's algorithm: never
            // judge a replica acquired since the last run.
            if acquired_at > host.last_placement_run() {
                continue;
            }
            let unit_rate = cnt_s as f64 / aff as f64 / params.placement_period;
            let n = env.replica_count(x);
            if n > self.target {
                // Excess copy: offer this host's replica back. The
                // redirector refuses the last copy, and because each
                // host's epoch re-reads the live count, a wave of epochs
                // converges on the target without undershooting.
                if env.request_drop(x, s) {
                    host.drop_object(x);
                    out.drops.push(x);
                    record(
                        out,
                        x,
                        PlacementAction::Drop,
                        None,
                        unit_rate,
                        None,
                        params.deletion_threshold,
                        params.replication_threshold,
                    );
                }
                continue;
            }
            if n >= self.target || !env.may_replicate(x) {
                continue;
            }
            // Under-replicated: place the missing copy where the demand
            // is, farthest demand candidate first (availability against
            // regional failures improves with spread), falling back to
            // any under-loaded host when all demand is local.
            let o = host.object(x).expect("still hosted");
            let mut best: Option<(u32, NodeId, f64)> = None;
            for (p, c) in o.counts() {
                if p == s || c == 0 {
                    continue;
                }
                let share = if cnt_s == 0 {
                    0.0
                } else {
                    c as f64 / cnt_s as f64
                };
                let key = (env.distance(s, p), p, share);
                best = match best {
                    None => Some(key),
                    Some(b)
                        if (key.0, std::cmp::Reverse(key.1)) > (b.0, std::cmp::Reverse(b.1)) =>
                    {
                        Some(key)
                    }
                    b => b,
                };
            }
            let candidate = best
                .map(|(_, p, share)| (p, Some(share)))
                .or_else(|| env.find_offload_recipient(s).map(|(p, _)| (p, None)));
            let Some((p, share)) = candidate else {
                continue;
            };
            let req = CreateObjRequest {
                kind: RelocationKind::Replicate,
                object: x,
                source: s,
                unit_load,
            };
            if env.create_obj(p, req).is_accepted() {
                out.geo_replications.push((x, p));
                record(
                    out,
                    x,
                    PlacementAction::GeoReplicate,
                    Some(p),
                    unit_rate,
                    share,
                    params.deletion_threshold,
                    params.replication_threshold,
                );
            }
        }
        *scratch.object_ids_mut() = object_ids;
        host.reset_access_counts();
        host.mark_placement_run(now);
    }

    fn name(&self) -> &str {
        "availability"
    }
}

/// Cluster-based load-balancing replication: hot objects are copied to
/// the head of their access cluster, overload is shed to under-loaded
/// hosts, cold copies are dropped.
///
/// The contrast with the paper's rule is the candidate choice: where
/// RaDaR places on the *farthest* qualified candidate (responsiveness),
/// the cluster balancer places on the candidate with the *largest*
/// demand share — the cluster head — concentrating replicas inside hot
/// clusters and leaving the periphery to eat the latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterPlacement;

impl ClusterPlacement {
    /// Creates the cluster-based load-balancing policy.
    pub fn new() -> Self {
        ClusterPlacement
    }
}

impl PlacementPolicy for ClusterPlacement {
    fn run_epoch(
        &mut self,
        host: &mut HostState,
        now: f64,
        env: &mut dyn PlacementEnv,
        scratch: &mut PlacementScratch,
        out: &mut PlacementOutcome,
    ) {
        out.clear();
        host.advance(now);
        let params = *host.params();
        let s = host.node();

        // Watermark hysteresis identical to the paper's (the comparison
        // should isolate the replication rule, not the overload sensor).
        let load = host.load_lower();
        if load > params.high_watermark {
            host.set_offloading(true);
        }
        if load < params.low_watermark {
            host.set_offloading(false);
        }
        out.offloading_mode = host.is_offloading();

        let mut object_ids = std::mem::take(scratch.object_ids_mut());
        host.collect_object_ids(&mut object_ids);
        for &x in &object_ids {
            let o = host.object(x).expect("object_ids() returns hosted objects");
            let (aff, cnt_s, unit_load, acquired_at) =
                (o.aff(), o.count(s), o.unit_load(), o.acquired_at());
            if acquired_at > host.last_placement_run() {
                continue;
            }
            let unit_rate = cnt_s as f64 / aff as f64 / params.placement_period;

            // Cold copies leave (same deletion test as the paper, so
            // replicas do not accumulate without bound).
            if unit_rate < params.deletion_threshold {
                if aff > 1 {
                    let new_aff = host.reduce_affinity(x);
                    env.notify_affinity(x, s, new_aff);
                    out.affinity_reductions.push(x);
                    record(
                        out,
                        x,
                        PlacementAction::AffinityReduce,
                        None,
                        unit_rate,
                        None,
                        params.deletion_threshold,
                        params.replication_threshold,
                    );
                } else if env.request_drop(x, s) {
                    host.drop_object(x);
                    out.drops.push(x);
                    record(
                        out,
                        x,
                        PlacementAction::Drop,
                        None,
                        unit_rate,
                        None,
                        params.deletion_threshold,
                        params.replication_threshold,
                    );
                }
                continue;
            }

            // Hot objects replicate to their cluster head: the foreign
            // candidate carrying the largest demand share (lowest id on
            // ties — total, deterministic order).
            if unit_rate > params.replication_threshold && env.may_replicate(x) {
                // Fresh borrow: the cold branch above may mutate `host`.
                let o = host.object(x).expect("hot object is still hosted");
                let head = o
                    .counts()
                    .filter(|&(p, c)| p != s && c > 0)
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
                if let Some((p, c)) = head {
                    let share = c as f64 / cnt_s as f64;
                    let req = CreateObjRequest {
                        kind: RelocationKind::Replicate,
                        object: x,
                        source: s,
                        unit_load,
                    };
                    if env.create_obj(p, req).is_accepted() {
                        out.geo_replications.push((x, p));
                        record(
                            out,
                            x,
                            PlacementAction::GeoReplicate,
                            Some(p),
                            unit_rate,
                            Some(share),
                            params.deletion_threshold,
                            params.replication_threshold,
                        );
                    }
                }
            }
        }

        // Load balancing: shed watermark-to-watermark to one
        // under-loaded recipient, coldest objects first (a classic LB
        // moves the cheapest load units; hot objects were already
        // replicated above and stay for their cluster).
        if host.is_offloading() {
            if let Some((recipient, mut recipient_load)) = env.find_offload_recipient(s) {
                let shed = scratch.keyed_objects_mut();
                shed.clear();
                host.collect_object_ids(&mut object_ids);
                for &x in &object_ids {
                    let o = host.object(x).expect("hosted");
                    if o.acquired_at() > host.last_placement_run() {
                        continue;
                    }
                    let ur = o.count(s) as f64 / o.aff() as f64 / params.placement_period;
                    shed.push((x, ur));
                }
                shed.sort_unstable_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("unit rates are finite")
                        .then(a.0.cmp(&b.0))
                });
                let shed = std::mem::take(scratch.keyed_objects_mut());
                for &(x, unit_rate) in &shed {
                    if host.load_lower() <= params.low_watermark
                        || recipient_load >= params.low_watermark
                    {
                        break;
                    }
                    let (aff, rate, unit_load) = {
                        let o = host.object(x).expect("hosted");
                        (o.aff(), o.rate(), o.unit_load())
                    };
                    let req = CreateObjRequest {
                        kind: RelocationKind::Migrate,
                        object: x,
                        source: s,
                        unit_load,
                    };
                    if !env.create_obj(recipient, req).is_accepted() {
                        break;
                    }
                    host.note_shed(now, bounds::migration_source_decrease(rate, aff));
                    recipient_load += bounds::target_increase(rate, aff);
                    if aff > 1 {
                        let new_aff = host.reduce_affinity(x);
                        env.notify_affinity(x, s, new_aff);
                    } else if env.request_drop(x, s) {
                        host.drop_object(x);
                    }
                    out.offload_migrations.push((x, recipient));
                    record(
                        out,
                        x,
                        PlacementAction::LoadMigrate,
                        Some(recipient),
                        unit_rate,
                        None,
                        params.deletion_threshold,
                        params.replication_threshold,
                    );
                }
                *scratch.keyed_objects_mut() = shed;
            }
        }

        *scratch.object_ids_mut() = object_ids;
        host.reset_access_counts();
        host.mark_placement_run(now);
    }

    fn name(&self) -> &str {
        "cluster"
    }
}
