//! Baseline policies the paper argues against (§1, §3), implemented so
//! the evaluation harness can reproduce the motivating comparisons:
//!
//! * [`RoundRobinSelection`] — "a simple round-robin request distribution
//!   … would distribute the load among all replicas but would be
//!   oblivious to the proximity of requesters to servers" (the DNS
//!   rotation of Katz et al., paper reference 23);
//! * [`ClosestSelection`] — "always directing requests to the closest
//!   replica … would create problems when a server is swamped with
//!   requests originating from its vicinity: no matter how many
//!   additional replicas the server creates, all requests will be sent
//!   to it anyway" (the proximity-only mode of CISCO DistributedDirector
//!   and of ADR/WebWave's placement assumption);
//! * [`RandomSelection`] — uniformly random over current replicas, a
//!   proximity- and load-oblivious control.
//!
//! Placement baselines mirror the selection seam on the other half of
//! the protocol ([`radar_sim::PlacementPolicy`]): see
//! [`AvailabilityPlacement`] (availability-aware continuous placement)
//! and [`ClusterPlacement`] (cluster-based load-balancing replication)
//! in [`placement`]. The degenerate baselines still need no code: static
//! placement is [`radar_sim::PlacementMode::Static`] with the paper's
//! round-robin initial placement, and replicate-everywhere is
//! [`radar_sim::InitialPlacement::Everywhere`].
//!
//! # Examples
//!
//! Running the paper's protocol against a baseline on the same scenario:
//!
//! ```
//! use radar_baselines::ClosestSelection;
//! use radar_sim::{Scenario, Simulation};
//! use radar_workload::ZipfReeds;
//!
//! let scenario = Scenario::builder()
//!     .num_objects(100)
//!     .duration(60.0)
//!     .node_request_rate(1.0)
//!     .build()?;
//! let report = Simulation::with_selection(
//!     scenario,
//!     Box::new(ZipfReeds::new(100)),
//!     Box::new(ClosestSelection::new()),
//! )
//! .run();
//! assert_eq!(report.policy, "closest");
//! # Ok::<(), radar_sim::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod placement;

pub use placement::{AvailabilityPlacement, ClusterPlacement};

use std::collections::HashMap;

use radar_core::{ObjectId, Redirector};
use radar_sim::SelectionPolicy;
use radar_simcore::SimRng;
use radar_simnet::{NodeId, RoutingTable};

/// Round-robin over an object's replicas, in host-id order. Distributes
/// load evenly and ignores proximity entirely.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinSelection {
    cursors: HashMap<ObjectId, usize>,
}

impl RoundRobinSelection {
    /// Creates a round-robin policy with per-object cursors.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SelectionPolicy for RoundRobinSelection {
    fn choose(
        &mut self,
        object: ObjectId,
        _gateway: NodeId,
        redirector: &mut Redirector,
        _routes: &RoutingTable,
    ) -> Option<NodeId> {
        let replicas = redirector.replicas(object);
        if replicas.is_empty() {
            return None;
        }
        let cursor = self.cursors.entry(object).or_insert(0);
        let host = replicas[*cursor % replicas.len()].host;
        *cursor = (*cursor + 1) % replicas.len();
        Some(host)
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// Always the replica closest to the requesting gateway (hop count,
/// lowest id on ties). Optimal proximity, no load sharing at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosestSelection;

impl ClosestSelection {
    /// Creates a closest-replica policy.
    pub fn new() -> Self {
        ClosestSelection
    }
}

impl SelectionPolicy for ClosestSelection {
    fn choose(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        redirector: &mut Redirector,
        routes: &RoutingTable,
    ) -> Option<NodeId> {
        routes.closest_to(gateway, redirector.replicas(object).iter().map(|r| r.host))
    }

    fn name(&self) -> &str {
        "closest"
    }
}

/// Uniformly random replica choice, seeded for reproducibility.
#[derive(Debug, Clone)]
pub struct RandomSelection {
    rng: SimRng,
}

impl RandomSelection {
    /// Creates a random policy from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SimRng::seed_from(seed),
        }
    }
}

impl SelectionPolicy for RandomSelection {
    fn choose(
        &mut self,
        object: ObjectId,
        _gateway: NodeId,
        redirector: &mut Redirector,
        _routes: &RoutingTable,
    ) -> Option<NodeId> {
        let replicas = redirector.replicas(object);
        if replicas.is_empty() {
            return None;
        }
        let idx = self.rng.index(replicas.len());
        Some(replicas[idx].host)
    }

    fn name(&self) -> &str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_simnet::builders;

    fn x() -> ObjectId {
        ObjectId::new(0)
    }

    fn setup() -> (Redirector, RoutingTable) {
        let topo = builders::line(4);
        let routes = topo.routes();
        let mut r = Redirector::new(1, 2.0);
        r.install(x(), NodeId::new(0));
        r.install(x(), NodeId::new(3));
        (r, routes)
    }

    #[test]
    fn round_robin_alternates() {
        let (mut r, routes) = setup();
        let mut p = RoundRobinSelection::new();
        let picks: Vec<_> = (0..4)
            .map(|_| p.choose(x(), NodeId::new(0), &mut r, &routes).unwrap())
            .collect();
        assert_eq!(
            picks,
            vec![
                NodeId::new(0),
                NodeId::new(3),
                NodeId::new(0),
                NodeId::new(3)
            ]
        );
        assert_eq!(p.name(), "round-robin");
    }

    #[test]
    fn round_robin_ignores_proximity() {
        let (mut r, routes) = setup();
        let mut p = RoundRobinSelection::new();
        // Gateway 3 is co-located with a replica, yet half the requests
        // go to the far one.
        let far = (0..100)
            .filter(|_| p.choose(x(), NodeId::new(3), &mut r, &routes) == Some(NodeId::new(0)))
            .count();
        assert_eq!(far, 50);
    }

    #[test]
    fn closest_always_local() {
        let (mut r, routes) = setup();
        let mut p = ClosestSelection::new();
        for _ in 0..100 {
            assert_eq!(
                p.choose(x(), NodeId::new(3), &mut r, &routes),
                Some(NodeId::new(3))
            );
            assert_eq!(
                p.choose(x(), NodeId::new(1), &mut r, &routes),
                Some(NodeId::new(0))
            );
        }
        assert_eq!(p.name(), "closest");
    }

    #[test]
    fn closest_never_sheds_local_load() {
        // The paper's §3 criticism: adding replicas does not relieve a
        // host swamped by local requests under closest-replica routing.
        let (mut r, routes) = setup();
        r.install(x(), NodeId::new(1));
        r.install(x(), NodeId::new(2));
        let mut p = ClosestSelection::new();
        for _ in 0..100 {
            assert_eq!(
                p.choose(x(), NodeId::new(0), &mut r, &routes),
                Some(NodeId::new(0))
            );
        }
    }

    #[test]
    fn random_covers_all_replicas_reproducibly() {
        let (mut r, routes) = setup();
        let mut p = RandomSelection::new(7);
        let picks: Vec<_> = (0..100)
            .map(|_| p.choose(x(), NodeId::new(0), &mut r, &routes).unwrap())
            .collect();
        assert!(picks.contains(&NodeId::new(0)));
        assert!(picks.contains(&NodeId::new(3)));
        let mut p2 = RandomSelection::new(7);
        let picks2: Vec<_> = (0..100)
            .map(|_| p2.choose(x(), NodeId::new(0), &mut r, &routes).unwrap())
            .collect();
        assert_eq!(picks, picks2);
        assert_eq!(p.name(), "random");
    }

    #[test]
    fn empty_replica_set_yields_none() {
        let topo = builders::line(2);
        let routes = topo.routes();
        let mut r = Redirector::new(1, 2.0);
        assert_eq!(
            RoundRobinSelection::new().choose(x(), NodeId::new(0), &mut r, &routes),
            None
        );
        assert_eq!(
            ClosestSelection::new().choose(x(), NodeId::new(0), &mut r, &routes),
            None
        );
        assert_eq!(
            RandomSelection::new(1).choose(x(), NodeId::new(0), &mut r, &routes),
            None
        );
    }
}
