//! Event-loop profiling counters: per-event-type wall time and queue
//! depth.
//!
//! The simulator's event loop wraps each handler call in an
//! [`std::time::Instant`] pair and feeds the elapsed nanoseconds plus
//! the queue depth at dispatch into a [`LoopProfile`]. The counters
//! are deliberately tiny (a `BTreeMap` of fixed-size rows keyed by
//! static label) so enabling profiling perturbs the loop as little as
//! possible; wall-clock numbers never enter the event log or report
//! JSON, keeping seeded runs byte-identical.

use std::collections::BTreeMap;
use std::fmt;

/// Accumulated statistics for one event-loop handler label.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HandlerStats {
    /// Number of events dispatched with this label.
    pub count: u64,
    /// Total wall time spent in the handler (nanoseconds).
    pub total_ns: u64,
    /// Slowest single dispatch (nanoseconds).
    pub max_ns: u64,
    /// Sum of queue depths observed at dispatch (for the mean).
    pub depth_sum: u64,
    /// Deepest queue observed at dispatch.
    pub depth_max: u32,
}

impl HandlerStats {
    /// Mean wall time per dispatch, in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Mean queue depth at dispatch.
    pub fn mean_depth(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.count as f64
        }
    }
}

/// Per-event-type wall-time and queue-depth profile of one run's event
/// loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoopProfile {
    rows: BTreeMap<&'static str, HandlerStats>,
}

impl LoopProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handler dispatch: its label, elapsed wall time in
    /// nanoseconds, and the queue depth when it was popped.
    ///
    /// All accumulation is saturating: a clock step backwards (seen
    /// under VM suspend/resume) surfaces as a pinned counter, never a
    /// panic in the recorder.
    pub fn record(&mut self, label: &'static str, nanos: u64, depth: u32) {
        let row = self.rows.entry(label).or_default();
        row.count = row.count.saturating_add(1);
        row.total_ns = row.total_ns.saturating_add(nanos);
        row.max_ns = row.max_ns.max(nanos);
        row.depth_sum = row.depth_sum.saturating_add(u64::from(depth));
        row.depth_max = row.depth_max.max(depth);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates `(label, stats)` rows in label order.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, &HandlerStats)> {
        self.rows.iter().map(|(label, stats)| (*label, stats))
    }

    /// Looks up the stats for one label.
    pub fn get(&self, label: &str) -> Option<&HandlerStats> {
        self.rows.get(label)
    }

    /// Total dispatches across all labels.
    pub fn total_events(&self) -> u64 {
        self.rows
            .values()
            .fold(0u64, |acc, s| acc.saturating_add(s.count))
    }

    /// Total wall time across all labels, in nanoseconds (saturating,
    /// like [`record`](Self::record)).
    pub fn total_ns(&self) -> u64 {
        self.rows
            .values()
            .fold(0u64, |acc, s| acc.saturating_add(s.total_ns))
    }

    /// Renders the profile as an aligned text table (used by
    /// `radar simulate` text output and `radar events summary`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self));
        out
    }
}

/// Human-readable duration formatting shared by the loop and shard
/// profile renderers.
pub(crate) fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl fmt::Display for LoopProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "event-loop profile")?;
        writeln!(
            f,
            "  {:<18} {:>9} {:>11} {:>11} {:>9} {:>7}",
            "handler", "count", "mean", "max", "mean qd", "max qd"
        )?;
        if self.rows.is_empty() {
            writeln!(f, "  (no events dispatched)")?;
            return Ok(());
        }
        for (label, s) in &self.rows {
            writeln!(
                f,
                "  {:<18} {:>9} {:>11} {:>11} {:>9.1} {:>7}",
                label,
                s.count,
                fmt_ns(s.mean_ns()),
                fmt_ns(s.max_ns as f64),
                s.mean_depth(),
                s.depth_max
            )?;
        }
        write!(
            f,
            "  total: {} events, {} wall time in handlers",
            self.total_events(),
            fmt_ns(self.total_ns() as f64)
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_label() {
        let mut p = LoopProfile::new();
        p.record("redirect", 100, 2);
        p.record("redirect", 300, 4);
        p.record("placement", 5_000, 1);
        let r = p.get("redirect").unwrap();
        assert_eq!(r.count, 2);
        assert_eq!(r.total_ns, 400);
        assert_eq!(r.max_ns, 300);
        assert!((r.mean_ns() - 200.0).abs() < 1e-9);
        assert!((r.mean_depth() - 3.0).abs() < 1e-9);
        assert_eq!(r.depth_max, 4);
        assert_eq!(p.total_events(), 3);
        assert_eq!(p.total_ns(), 5_400);
    }

    #[test]
    fn record_saturates_instead_of_panicking() {
        // A clock step backwards can hand the profiler a nonsense
        // elapsed value near u64::MAX; accumulation must pin, not
        // overflow.
        let mut p = LoopProfile::new();
        p.record("redirect", u64::MAX, u32::MAX);
        p.record("redirect", u64::MAX, u32::MAX);
        let r = p.get("redirect").unwrap();
        assert_eq!(r.count, 2);
        assert_eq!(r.total_ns, u64::MAX);
        assert_eq!(r.max_ns, u64::MAX);
        assert_eq!(r.depth_sum, u64::from(u32::MAX) * 2);
        assert_eq!(r.depth_max, u32::MAX);
        // total_ns() sums across labels; it must saturate too.
        p.record("placement", u64::MAX, 0);
        assert_eq!(p.total_ns(), u64::MAX);
    }

    #[test]
    fn rows_iterate_in_label_order() {
        let mut p = LoopProfile::new();
        p.record("zeta", 1, 0);
        p.record("alpha", 1, 0);
        let labels: Vec<&str> = p.rows().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["alpha", "zeta"]);
    }

    #[test]
    fn render_is_aligned_and_handles_empty() {
        let empty = LoopProfile::new();
        assert!(empty.render().contains("no events dispatched"));
        let mut p = LoopProfile::new();
        p.record("arrival", 1_500, 3);
        p.record("service-complete", 2_000_000, 10);
        let table = p.render();
        assert!(table.contains("arrival"), "{table}");
        assert!(table.contains("1.50 us"), "{table}");
        assert!(table.contains("2.00 ms"), "{table}");
        assert!(table.contains("total: 2 events"), "{table}");
    }
}
