//! Per-shard telemetry for the parallel event loop: stall attribution,
//! hand-off latency histograms, and barrier accounting.
//!
//! The sharded loop (`radar-sim`'s `simulate --shards N`) splits work
//! between a sequencer thread and `N` decision workers. When profiling
//! is enabled, every thread keeps a [`LaneProfile`]: monotonic-clock
//! span accounting partitioned into the five [`SpanKind`] categories
//! (busy / channel-wait / barrier-drain / reunite-resplit / idle), plus
//! candidate-cache hit/miss tallies. The sequencer additionally keeps
//! log2-bucketed [`Log2Histogram`]s of per-decision hand-off latency
//! and per-message batch size, and counts epoch barriers by
//! [`BarrierCause`]. Everything is fixed-size — no allocation on the
//! hot path — and none of it enters the deterministic event stream:
//! wall-clock numbers live only in the profile section of the report.
//!
//! Span accounting uses a *cursor* discipline: each thread remembers
//! the instant its current span started, and every state transition
//! charges `now - cursor` to exactly one category before advancing the
//! cursor. One `Instant::now()` per transition, no gaps — which is why
//! a healthy profile attributes ≥ 95 % of each lane's wall-clock to
//! named categories (the `radar perf --check-coverage` contract).

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::profile::fmt_ns;

/// What a sharded-loop thread was doing during a span of wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Doing simulation work: dispatching events, computing decisions.
    Busy = 0,
    /// Blocked on a channel: the sequencer waiting for a worker's
    /// answer to the front-of-queue decision.
    ChannelWait = 1,
    /// Flushing in-flight decisions at an epoch barrier.
    BarrierDrain = 2,
    /// Reuniting shard state into the master copy, or re-splitting it
    /// back out after a barrier.
    Reunite = 3,
    /// A worker parked with nothing to decide.
    Idle = 4,
}

impl SpanKind {
    /// Number of span categories (size of [`LaneProfile::spans_ns`]).
    pub const COUNT: usize = 5;

    /// Every category, in `spans_ns` index order.
    pub const ALL: [SpanKind; Self::COUNT] = [
        SpanKind::Busy,
        SpanKind::ChannelWait,
        SpanKind::BarrierDrain,
        SpanKind::Reunite,
        SpanKind::Idle,
    ];

    /// Stable kebab-case name used in JSON and rendered tables.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Busy => "busy",
            SpanKind::ChannelWait => "channel-wait",
            SpanKind::BarrierDrain => "barrier-drain",
            SpanKind::Reunite => "reunite",
            SpanKind::Idle => "idle",
        }
    }

    /// Parses the `as_str` form back (for `radar perf` reading JSON).
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

/// Why the sharded loop forced an epoch barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierCause {
    /// A placement round (replication policy runs on reunited state).
    Placement = 0,
    /// A provider DNS/update step.
    ProviderUpdate = 1,
    /// A declare-dead sweep.
    DeclareDead = 2,
    /// A fault transition (host/link down or up).
    Fault = 3,
}

impl BarrierCause {
    /// Number of barrier causes (size of [`ShardProfile::barriers`]).
    pub const COUNT: usize = 4;

    /// Every cause, in `barriers` index order.
    pub const ALL: [BarrierCause; Self::COUNT] = [
        BarrierCause::Placement,
        BarrierCause::ProviderUpdate,
        BarrierCause::DeclareDead,
        BarrierCause::Fault,
    ];

    /// Stable kebab-case name used in JSON and rendered tables.
    pub fn as_str(self) -> &'static str {
        match self {
            BarrierCause::Placement => "placement",
            BarrierCause::ProviderUpdate => "provider-update",
            BarrierCause::DeclareDead => "declare-dead",
            BarrierCause::Fault => "fault",
        }
    }
}

/// Number of buckets in a [`Log2Histogram`] — bucket `i` holds values
/// whose bit length is `i`, so 40 buckets cover `0` through
/// `2^39 - 1` ns ≈ 9 minutes, ample for per-decision latencies.
pub const LOG2_BUCKETS: usize = 40;

/// Fixed-size log2-bucketed histogram: value `v` lands in bucket
/// `bit_length(v)` (0 for `v == 0`), clamped to the last bucket.
///
/// Recording is allocation-free and saturating. Percentiles are
/// approximate — the reported value is the inclusive upper bound of
/// the bucket containing the rank, capped at the exact observed max.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(LOG2_BUCKETS - 1)
    }

    /// Records one value (saturating, allocation-free).
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        self.buckets[b] = self.buckets[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts, in bit-length order.
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.buckets
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Approximate percentile (`p` in `0.0..=1.0`): the upper bound of
    /// the bucket holding the rank, capped at the observed max.
    /// `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                // Bucket i holds values of bit length i: upper bound
                // 2^i - 1 (bucket 0 holds only zero).
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Rebuilds a histogram from parsed JSON parts (used by
    /// `radar perf`). Buckets beyond the provided slice stay zero.
    pub fn from_parts(count: u64, sum: u64, max: u64, buckets: &[u64]) -> Self {
        let mut h = Self {
            count,
            sum,
            max,
            ..Self::default()
        };
        for (dst, src) in h.buckets.iter_mut().zip(buckets.iter()) {
            *dst = *src;
        }
        h
    }
}

/// Span accounting plus cache tallies for one sharded-loop thread
/// (the sequencer or one worker).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneProfile {
    /// Nanoseconds attributed to each [`SpanKind`], indexed by the
    /// enum's discriminant order ([`SpanKind::ALL`]).
    pub spans_ns: [u64; SpanKind::COUNT],
    /// Work items processed by this lane (decisions for workers,
    /// dispatched events for the sequencer).
    pub items: u64,
    /// Candidate-cache hits observed by this lane.
    pub cache_hits: u64,
    /// Candidate-cache misses observed by this lane.
    pub cache_misses: u64,
}

impl LaneProfile {
    /// Charges `nanos` to one span category (saturating).
    pub fn add_span(&mut self, kind: SpanKind, nanos: u64) {
        let slot = &mut self.spans_ns[kind as usize];
        *slot = slot.saturating_add(nanos);
    }

    /// Nanoseconds attributed to one category.
    pub fn span_ns(&self, kind: SpanKind) -> u64 {
        self.spans_ns[kind as usize]
    }

    /// Total attributed nanoseconds across all categories.
    pub fn total_ns(&self) -> u64 {
        self.spans_ns
            .iter()
            .fold(0u64, |acc, ns| acc.saturating_add(*ns))
    }

    /// Candidate-cache hit rate in `0.0..=1.0` (0 when unused).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Folds another lane into this one (used when a worker restarts
    /// across barriers and for whole-run aggregation).
    pub fn merge(&mut self, other: &LaneProfile) {
        for (dst, src) in self.spans_ns.iter_mut().zip(other.spans_ns.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.items = self.items.saturating_add(other.items);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
    }
}

/// Whole-run telemetry of one sharded simulation: one [`LaneProfile`]
/// per thread, sequencer-side histograms, and barrier counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardProfile {
    /// Worker shard count the run was launched with.
    pub shards: usize,
    /// Wall-clock duration of the run, sequencer-side, in nanoseconds.
    pub wall_ns: u64,
    /// The sequencer thread's lane (its cache tallies are the
    /// unsharded `RedirectEngine`'s, exercised during serial stretches).
    pub sequencer: LaneProfile,
    /// One lane per worker shard, in shard order.
    pub workers: Vec<LaneProfile>,
    /// Per-decision hand-off latency: defer on the sequencer to
    /// committed answer, in nanoseconds.
    pub handoff_ns: Log2Histogram,
    /// Work items per batched reply message: each worker answers a
    /// whole `Batch` with a single `Outcomes` message, so this is the
    /// hand-off amortization factor (a p50 of 1 means the transport
    /// degenerated to one message per decision).
    pub batch_items: Log2Histogram,
    /// Epoch barriers by [`BarrierCause`], indexed by discriminant
    /// order ([`BarrierCause::ALL`]).
    pub barriers: [u64; BarrierCause::COUNT],
}

impl ShardProfile {
    /// Iterates `(label, lane)` pairs: the sequencer first, then each
    /// worker. Labels are stable (`sequencer`, `worker-0`, …) and also
    /// used in the JSON section.
    pub fn lanes(&self) -> impl Iterator<Item = (String, &LaneProfile)> {
        std::iter::once(("sequencer".to_string(), &self.sequencer)).chain(
            self.workers
                .iter()
                .enumerate()
                .map(|(i, lane)| (format!("worker-{i}"), lane)),
        )
    }

    /// Fraction of the run's wall-clock this lane attributed to named
    /// categories, in `0.0..=1.0`. The `radar perf --check-coverage`
    /// gate asserts this stays ≥ 0.95 for every lane.
    pub fn coverage(&self, lane: &LaneProfile) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            lane.total_ns() as f64 / self.wall_ns as f64
        }
    }

    /// The worst lane coverage across sequencer and workers.
    pub fn min_coverage(&self) -> f64 {
        self.lanes()
            .map(|(_, lane)| self.coverage(lane))
            .fold(f64::INFINITY, f64::min)
    }

    /// Total barriers across all causes.
    pub fn total_barriers(&self) -> u64 {
        self.barriers
            .iter()
            .fold(0u64, |acc, n| acc.saturating_add(*n))
    }

    /// Renders the utilization table plus a top-stalls breakdown —
    /// shared by `radar perf` and `radar simulate --profile` text
    /// output. `top` caps the number of stall rows.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "shard profile — {} worker shard(s), wall {}\n",
            self.shards,
            fmt_ns(self.wall_ns as f64)
        ));
        out.push_str(&format!(
            "  {:<10} {:>7} {:>12} {:>13} {:>9} {:>9} {:>9} {:>9} {:>7}\n",
            "lane",
            "busy",
            "chan-wait",
            "barrier-drain",
            "reunite",
            "idle",
            "coverage",
            "items",
            "cache%"
        ));
        for (label, lane) in self.lanes() {
            let pct = |k: SpanKind| {
                if self.wall_ns == 0 {
                    0.0
                } else {
                    100.0 * lane.span_ns(k) as f64 / self.wall_ns as f64
                }
            };
            let cache = if lane.cache_hits + lane.cache_misses == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", 100.0 * lane.cache_hit_rate())
            };
            out.push_str(&format!(
                "  {:<10} {:>6.1}% {:>11.1}% {:>12.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>9} {:>7}\n",
                label,
                pct(SpanKind::Busy),
                pct(SpanKind::ChannelWait),
                pct(SpanKind::BarrierDrain),
                pct(SpanKind::Reunite),
                pct(SpanKind::Idle),
                100.0 * self.coverage(lane),
                lane.items,
                cache
            ));
        }
        // Top stalls: every non-busy span on every lane, largest first.
        let mut stalls: Vec<(String, SpanKind, u64)> = Vec::new();
        for (label, lane) in self.lanes() {
            for kind in SpanKind::ALL {
                if kind == SpanKind::Busy {
                    continue;
                }
                let ns = lane.span_ns(kind);
                if ns > 0 {
                    stalls.push((label.clone(), kind, ns));
                }
            }
        }
        stalls.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        out.push_str("top stalls:\n");
        if stalls.is_empty() {
            out.push_str("  (none recorded)\n");
        }
        for (i, (label, kind, ns)) in stalls.iter().take(top.max(1)).enumerate() {
            let share = if self.wall_ns == 0 {
                0.0
            } else {
                100.0 * *ns as f64 / self.wall_ns as f64
            };
            out.push_str(&format!(
                "  {:>2}. {:<10} {:<14} {:>10}  ({share:.1}% of wall)\n",
                i + 1,
                label,
                kind.as_str(),
                fmt_ns(*ns as f64)
            ));
        }
        let hist = |h: &Log2Histogram| {
            if h.count() == 0 {
                "(empty)".to_string()
            } else {
                format!(
                    "count {} · mean {} · p50 ≤{} · p99 ≤{} · max {}",
                    h.count(),
                    fmt_ns(h.mean()),
                    fmt_ns(h.percentile(0.50).unwrap_or(0) as f64),
                    fmt_ns(h.percentile(0.99).unwrap_or(0) as f64),
                    fmt_ns(h.max() as f64)
                )
            }
        };
        out.push_str(&format!("hand-off latency: {}\n", hist(&self.handoff_ns)));
        if self.batch_items.count() == 0 {
            out.push_str("batch size: (empty)\n");
        } else {
            out.push_str(&format!(
                "batch size: count {} · mean {:.2} items/message · p50 ≤{} · p99 ≤{} · max {}\n",
                self.batch_items.count(),
                self.batch_items.mean(),
                self.batch_items.percentile(0.50).unwrap_or(0),
                self.batch_items.percentile(0.99).unwrap_or(0),
                self.batch_items.max()
            ));
        }
        let barrier_parts: Vec<String> = BarrierCause::ALL
            .iter()
            .map(|c| format!("{} {}", c.as_str(), self.barriers[*c as usize]))
            .collect();
        out.push_str(&format!(
            "barriers: {} ({} total)\n",
            barrier_parts.join(" · "),
            self.total_barriers()
        ));
        out
    }
}

impl fmt::Display for ShardProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render(8).trim_end())
    }
}

/// Handle for publishing in-progress [`ShardProfile`] snapshots to a
/// live consumer (the `--dashboard` renderer). The sequencer publishes
/// at each epoch barrier; readers take cheap clones.
#[derive(Debug, Clone, Default)]
pub struct SharedShardProfile {
    inner: Arc<Mutex<Option<ShardProfile>>>,
}

impl SharedShardProfile {
    /// Creates an empty handle (no snapshot published yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the published snapshot.
    pub fn publish(&self, profile: ShardProfile) {
        *self.inner.lock().expect("shard profile poisoned") = Some(profile);
    }

    /// Clones the latest snapshot, if any was published.
    pub fn snapshot(&self) -> Option<ShardProfile> {
        self.inner.lock().expect("shard profile poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_histogram_buckets_by_bit_length() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 1); // 4
        assert_eq!(h.buckets()[10], 1); // 1000
        assert_eq!(h.buckets()[LOG2_BUCKETS - 1], 1); // clamped
    }

    #[test]
    fn log2_histogram_percentiles_are_bucket_upper_bounds() {
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7, upper bound 127
        }
        h.record(1 << 20);
        assert_eq!(h.percentile(0.50), Some(127));
        assert_eq!(h.percentile(0.99), Some(127));
        assert_eq!(h.percentile(1.0), Some(1 << 20));
        assert!(Log2Histogram::new().percentile(0.5).is_none());
    }

    #[test]
    fn log2_histogram_merge_and_saturation() {
        let mut a = Log2Histogram::new();
        a.record(u64::MAX);
        let mut b = Log2Histogram::new();
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), u64::MAX, "sum saturates");
        assert_eq!(a.buckets()[LOG2_BUCKETS - 1], 2);
    }

    #[test]
    fn lane_profile_spans_and_merge() {
        let mut lane = LaneProfile::default();
        lane.add_span(SpanKind::Busy, 100);
        lane.add_span(SpanKind::ChannelWait, 900);
        lane.items = 5;
        lane.cache_hits = 3;
        lane.cache_misses = 1;
        assert_eq!(lane.total_ns(), 1000);
        assert!((lane.cache_hit_rate() - 0.75).abs() < 1e-9);
        let mut sum = LaneProfile::default();
        sum.merge(&lane);
        sum.merge(&lane);
        assert_eq!(sum.span_ns(SpanKind::ChannelWait), 1800);
        assert_eq!(sum.items, 10);
    }

    #[test]
    fn coverage_and_render() {
        let mut p = ShardProfile {
            shards: 2,
            wall_ns: 1_000_000,
            ..Default::default()
        };
        p.sequencer.add_span(SpanKind::Busy, 200_000);
        p.sequencer.add_span(SpanKind::ChannelWait, 780_000);
        let mut w = LaneProfile::default();
        w.add_span(SpanKind::Idle, 900_000);
        w.add_span(SpanKind::Busy, 80_000);
        p.workers = vec![w, w];
        p.handoff_ns.record(58_000);
        p.batch_items.record(1);
        p.barriers[BarrierCause::Placement as usize] = 6;
        assert!((p.coverage(&p.sequencer) - 0.98).abs() < 1e-9);
        assert!((p.min_coverage() - 0.98).abs() < 1e-9);
        let text = p.render(3);
        assert!(text.contains("sequencer"), "{text}");
        assert!(text.contains("worker-1"), "{text}");
        assert!(text.contains("channel-wait"), "{text}");
        assert!(text.contains("placement 6"), "{text}");
        assert!(text.contains("hand-off latency"), "{text}");
        assert!(
            text.contains("items/message · p50 ≤1"),
            "batch line should carry percentiles: {text}"
        );
        // Stalls rank by attributed time: the workers' 900 µs idle
        // outranks the sequencer's 780 µs channel-wait.
        let stall_pos = text.find("top stalls").unwrap();
        let stalls: Vec<&str> = text[stall_pos..].lines().skip(1).take(3).collect();
        assert!(
            stalls[0].contains("worker-0") && stalls[0].contains("idle"),
            "{text}"
        );
        assert!(
            stalls[2].contains("sequencer") && stalls[2].contains("channel-wait"),
            "{text}"
        );
    }

    #[test]
    fn span_kind_round_trips_through_names() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_str_opt(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::from_str_opt("nope"), None);
    }

    #[test]
    fn shared_snapshot_publishes_latest() {
        let shared = SharedShardProfile::new();
        assert!(shared.snapshot().is_none());
        let p = ShardProfile {
            shards: 4,
            ..Default::default()
        };
        shared.publish(p.clone());
        assert_eq!(shared.snapshot().unwrap().shards, 4);
    }
}
