//! Per-object replica lifecycle reconstruction, churn classification,
//! and relocation-cost attribution over the event stream.
//!
//! [`ObjectLedger`] is a streaming fold in the same idiom as
//! [`crate::MetricsObserver`]: feed it the flight-recorder event feed
//! in sequence order (attach it to a simulation as an observer, or
//! replay a JSONL log) and it maintains, per object, a lifecycle
//! timeline of replica-set changes, oscillation counters, and the
//! relocation bytes spent versus the requests usefully served. An
//! embedded [`InvariantAuditor`] performs the replica-set-invariant
//! checks on the same pass, so the ledger's replica accounting and the
//! audit verdicts can never disagree.
//!
//! Churn classification follows the paper's hysteresis rationale: the
//! watermark gap and the deletion/replication threshold gap exist
//! precisely to prevent an object bouncing between hosts
//! (migrate A→B then B→A) or being replicated and immediately dropped.
//! The ledger counts both patterns inside a configurable window
//! ([`LedgerConfig::churn_window`], defaulting to two placement
//! periods) and prices every physical copy moved at
//! [`LedgerConfig::object_size`] bytes.

use crate::audit::InvariantAuditor;
use crate::event::{Event, EventKind, PlacementActionKind, ResetCause};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Violation sequence numbers retained in a [`ProtocolHealth`]
/// snapshot (the full list stays on the auditor).
const VIOLATION_SEQS_CAP: usize = 16;
/// Objects listed in a [`ProtocolHealth`] snapshot, ranked by bytes
/// moved.
const TOP_OBJECTS_CAP: usize = 8;

/// Tuning knobs for an [`ObjectLedger`].
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerConfig {
    /// Bytes per physical copy moved (the scenario's object size).
    pub object_size: u64,
    /// Oscillation window, seconds: a migrate-back or a drop after a
    /// create within this window counts as churn. The protocol's
    /// hysteresis (watermark gap, `u`/`m` threshold gap) should make
    /// this rare; two placement periods is a natural default.
    pub churn_window: f64,
    /// Per-object cap on retained timeline steps; the oldest steps are
    /// discarded past it (the drop count is reported per object).
    pub timeline_capacity: usize,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        Self {
            object_size: 12 * 1024,
            churn_window: 120.0,
            timeline_capacity: 256,
        }
    }
}

/// One replica-set change in an object's lifecycle timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicaChange {
    /// A copy was created on `host` (replication); `new_copy` is false
    /// when the host already held one and only its affinity grew.
    Created {
        /// The replication target.
        host: u16,
        /// Whether data actually moved.
        new_copy: bool,
    },
    /// `host`'s copy was dropped by the deletion test.
    Dropped {
        /// The host that shed its copy.
        host: u16,
    },
    /// The object migrated `from` → `to`; `source_dropped` is false
    /// when the source kept its copy and only reduced affinity.
    Migrated {
        /// Migration source.
        from: u16,
        /// Migration target.
        to: u16,
        /// Whether the source's physical copy went away.
        source_dropped: bool,
    },
    /// `host` shed one affinity unit but kept its copy.
    AffinityReduced {
        /// The host involved.
        host: u16,
    },
    /// The replica floor refused to drop `host`'s last live copy.
    DropRefused {
        /// The host whose drop was vetoed.
        host: u16,
    },
    /// The re-replication sweep restored a copy on `host`.
    ReReplicated {
        /// The install target.
        host: u16,
    },
    /// A declared-dead host's replicas were purged.
    Purged,
}

impl ReplicaChange {
    /// Short human-readable description of the change.
    pub fn describe(&self) -> String {
        match self {
            ReplicaChange::Created {
                host,
                new_copy: true,
            } => {
                format!("replica created on host {host}")
            }
            ReplicaChange::Created {
                host,
                new_copy: false,
            } => {
                format!("affinity added to existing replica on host {host}")
            }
            ReplicaChange::Dropped { host } => format!("replica dropped from host {host}"),
            ReplicaChange::Migrated {
                from,
                to,
                source_dropped,
            } => {
                if *source_dropped {
                    format!("migrated host {from} -> host {to}")
                } else {
                    format!("migrated host {from} -> host {to} (source kept reduced copy)")
                }
            }
            ReplicaChange::AffinityReduced { host } => {
                format!("affinity reduced on host {host}")
            }
            ReplicaChange::DropRefused { host } => {
                format!("drop refused on host {host} (last live copy)")
            }
            ReplicaChange::ReReplicated { host } => {
                format!("re-replicated onto host {host}")
            }
            ReplicaChange::Purged => "replicas purged from a declared-dead host".to_string(),
        }
    }
}

/// One timeline entry: when a replica-set change happened and which
/// flight-recorder event carried it (so causal chains can be followed
/// back through the log).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineStep {
    /// Sequence number of the event behind the change.
    pub seq: u64,
    /// Simulated time, seconds.
    pub t: f64,
    /// What changed.
    pub change: ReplicaChange,
}

/// Per-object churn and cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectChurn {
    /// Requests that entered a gateway for this object.
    pub requests: u64,
    /// Responses delivered.
    pub served: u64,
    /// Relocation actions (replications, migrations, re-replications).
    pub relocations: u64,
    /// Bytes of object data physically moved by relocations.
    pub bytes_moved: u64,
    /// A→B→A migrations completed within the churn window.
    pub ping_pong: u64,
    /// Copies dropped within the churn window of their creation.
    pub replicate_drop: u64,
}

impl ObjectChurn {
    /// Relocation bytes per request usefully served (the churn price).
    /// Objects that moved but never served report the full byte count.
    pub fn bytes_per_served(&self) -> f64 {
        self.bytes_moved as f64 / (self.served.max(1)) as f64
    }

    /// Oscillation events (ping-pong + replicate-then-drop).
    pub fn churn_events(&self) -> u64 {
        self.ping_pong + self.replicate_drop
    }
}

/// Per-node relocation traffic and service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeChurn {
    /// Responses this node served.
    pub served: u64,
    /// Bytes of object data installed onto this node by relocations.
    pub bytes_in: u64,
    /// Bytes of object data this node shipped out as a relocation
    /// source.
    pub bytes_out: u64,
}

impl NodeChurn {
    /// Relocation bytes (in + out) per request this node served.
    pub fn bytes_per_served(&self) -> f64 {
        (self.bytes_in + self.bytes_out) as f64 / (self.served.max(1)) as f64
    }
}

/// Internal per-object state: public counters plus the oscillation
/// detectors' working memory.
#[derive(Debug, Clone, Default)]
struct ObjectState {
    churn: ObjectChurn,
    timeline: Vec<TimelineStep>,
    timeline_dropped: u64,
    /// Last migration seen: `(from, to, t)` — a later `to → from`
    /// within the window is a ping-pong.
    last_migration: Option<(u16, u16, f64)>,
    /// When each host's current physical copy was created in-stream —
    /// a drop within the window of this time is a replicate-then-drop
    /// cycle.
    created_at: BTreeMap<u16, f64>,
}

/// A point-in-time summary of protocol health: the section surfaced in
/// the run report JSON and the live dashboard panel.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolHealth {
    /// Events folded.
    pub events_seen: u64,
    /// Replicas currently reconstructed as present across all objects.
    pub active_replicas: u64,
    /// Requests that entered gateways.
    pub requests: u64,
    /// Responses delivered.
    pub served: u64,
    /// Relocation actions (replications, migrations, re-replications).
    pub relocations: u64,
    /// Bytes of object data physically moved.
    pub bytes_moved: u64,
    /// A→B→A migrations within the churn window.
    pub ping_pong: u64,
    /// Copies dropped within the churn window of their creation.
    pub replicate_drop: u64,
    /// Replica-set invariant violations detected.
    pub violations: u64,
    /// Sequence numbers of the first violations (capped; the full list
    /// stays on the [`InvariantAuditor`]).
    pub violation_seqs: Vec<u64>,
    /// The churn window in force, seconds.
    pub churn_window: f64,
    /// The most relocation-expensive objects, `(object, counters)`
    /// ranked by bytes moved then churn events (capped).
    pub top_objects: Vec<(u32, ObjectChurn)>,
}

impl ProtocolHealth {
    /// Relocation bytes per request usefully served across the run.
    pub fn bytes_per_served(&self) -> f64 {
        self.bytes_moved as f64 / (self.served.max(1)) as f64
    }

    /// Oscillation events (ping-pong + replicate-then-drop).
    pub fn churn_events(&self) -> u64 {
        self.ping_pong + self.replicate_drop
    }

    /// Multi-line text summary (the `radar simulate --ledger` footer).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("protocol health\n");
        out.push_str(&format!(
            "  active replicas      {:>10}\n",
            self.active_replicas
        ));
        out.push_str(&format!(
            "  relocations          {:>10}   bytes moved {} ({:.1} B/request served)\n",
            self.relocations,
            self.bytes_moved,
            self.bytes_per_served()
        ));
        out.push_str(&format!(
            "  churn (window {:.0}s)   {:>10}   ping-pong {} · replicate-then-drop {}\n",
            self.churn_window,
            self.churn_events(),
            self.ping_pong,
            self.replicate_drop
        ));
        if self.violations == 0 {
            out.push_str("  invariant violations          0   [ok]\n");
        } else {
            let seqs: Vec<String> = self.violation_seqs.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!(
                "  invariant violations {:>10}   [VIOLATED] first seqs: {}\n",
                self.violations,
                seqs.join(", ")
            ));
        }
        out
    }
}

/// Streaming per-object protocol-health fold.
///
/// ```
/// use radar_obs::{Event, EventKind, LedgerConfig, ObjectLedger};
///
/// let mut ledger = ObjectLedger::new(LedgerConfig::default());
/// ledger.fold(&Event {
///     seq: 1,
///     parent: None,
///     t: 0.5,
///     queue_depth: 0,
///     kind: EventKind::RequestServed {
///         gateway: 0,
///         object: 7,
///         host: 3,
///         latency: 0.08,
///         hops: 2,
///     },
/// });
/// ledger.finalize(20.0);
/// let health = ledger.health();
/// assert_eq!(health.served, 1);
/// assert_eq!(health.violations, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectLedger {
    cfg: LedgerConfig,
    auditor: InvariantAuditor,
    objects: BTreeMap<u32, ObjectState>,
    nodes: BTreeMap<u16, NodeChurn>,
    requests_total: u64,
    served_total: u64,
    relocations_total: u64,
    bytes_moved_total: u64,
    ping_pong_total: u64,
    replicate_drop_total: u64,
    t_end: f64,
}

impl ObjectLedger {
    /// Creates an empty ledger with the given configuration.
    pub fn new(cfg: LedgerConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &LedgerConfig {
        &self.cfg
    }

    /// The embedded invariant auditor (violations live here).
    pub fn auditor(&self) -> &InvariantAuditor {
        &self.auditor
    }

    /// One object's lifecycle timeline, oldest step first (empty for
    /// objects the stream never relocated).
    pub fn timeline(&self, object: u32) -> &[TimelineStep] {
        self.objects
            .get(&object)
            .map(|s| s.timeline.as_slice())
            .unwrap_or(&[])
    }

    /// Timeline steps discarded for `object` past the capacity cap.
    pub fn timeline_dropped(&self, object: u32) -> u64 {
        self.objects
            .get(&object)
            .map(|s| s.timeline_dropped)
            .unwrap_or(0)
    }

    /// One object's churn counters, if any event mentioned it.
    pub fn object(&self, object: u32) -> Option<ObjectChurn> {
        self.objects.get(&object).map(|s| s.churn)
    }

    /// Hosts `object` is currently reconstructed to have replicas on.
    pub fn replicas_of(&self, object: u32) -> Vec<u16> {
        let mut hosts: Vec<u16> = self
            .nodes
            .keys()
            .copied()
            .filter(|&h| self.auditor.is_present(object, h))
            .collect();
        // Nodes only enter `self.nodes` once they serve or move bytes;
        // fall back to the auditor for hosts that merely hold copies.
        for step in self.timeline(object) {
            let candidates: [Option<u16>; 2] = match step.change {
                ReplicaChange::Created { host, .. }
                | ReplicaChange::ReReplicated { host }
                | ReplicaChange::AffinityReduced { host }
                | ReplicaChange::DropRefused { host }
                | ReplicaChange::Dropped { host } => [Some(host), None],
                ReplicaChange::Migrated { from, to, .. } => [Some(from), Some(to)],
                ReplicaChange::Purged => [None, None],
            };
            for host in candidates.into_iter().flatten() {
                if self.auditor.is_present(object, host) && !hosts.contains(&host) {
                    hosts.push(host);
                }
            }
        }
        hosts.sort_unstable();
        hosts
    }

    /// All per-object churn rows, sorted by bytes moved descending,
    /// then churn events, then object id; truncated to `top` rows
    /// (`usize::MAX` for all).
    pub fn churn_table(&self, top: usize) -> Vec<(u32, ObjectChurn)> {
        let mut rows: Vec<(u32, ObjectChurn)> =
            self.objects.iter().map(|(&o, s)| (o, s.churn)).collect();
        rows.sort_by(|a, b| {
            b.1.bytes_moved
                .cmp(&a.1.bytes_moved)
                .then(b.1.churn_events().cmp(&a.1.churn_events()))
                .then(a.0.cmp(&b.0))
        });
        rows.truncate(top);
        rows
    }

    /// Per-node relocation/service rows, ascending by node id.
    pub fn node_table(&self) -> Vec<(u16, NodeChurn)> {
        self.nodes.iter().map(|(&n, &c)| (n, c)).collect()
    }

    /// Folds one event (must arrive in sequence order, as every
    /// observer and every written JSONL log already guarantees).
    pub fn fold(&mut self, event: &Event) {
        let delta = self.auditor.fold(event);
        if event.t > self.t_end {
            self.t_end = event.t;
        }
        match &event.kind {
            EventKind::RequestArrived { object, .. } => {
                self.requests_total += 1;
                self.objects.entry(*object).or_default().churn.requests += 1;
            }
            EventKind::RequestServed { object, host, .. } => {
                self.served_total += 1;
                self.objects.entry(*object).or_default().churn.served += 1;
                self.nodes.entry(*host).or_default().served += 1;
            }
            _ => {}
        }
        let Some(object) = event.object() else {
            return;
        };
        let object_size = self.cfg.object_size;
        let churn_window = self.cfg.churn_window;

        // Relocation accounting from the auditor's delta.
        if let Some((target, new_copy)) = delta.created {
            let state = self.objects.entry(object).or_default();
            state.churn.relocations += 1;
            self.relocations_total += 1;
            if new_copy {
                state.churn.bytes_moved += object_size;
                state.created_at.insert(target, event.t);
                self.bytes_moved_total += object_size;
                self.nodes.entry(target).or_default().bytes_in += object_size;
                if let EventKind::PlacementAction(p) = &event.kind {
                    self.nodes.entry(p.host).or_default().bytes_out += object_size;
                }
            }
        }
        if let Some((from, to)) = delta.migration {
            let state = self.objects.entry(object).or_default();
            if let Some((prev_from, prev_to, prev_t)) = state.last_migration {
                if prev_from == to && prev_to == from && event.t - prev_t <= churn_window {
                    state.churn.ping_pong += 1;
                    self.ping_pong_total += 1;
                }
            }
            state.last_migration = Some((from, to, event.t));
        }
        if let Some(host) = delta.removed {
            let state = self.objects.entry(object).or_default();
            if let Some(created) = state.created_at.remove(&host) {
                if event.t - created <= churn_window {
                    state.churn.replicate_drop += 1;
                    self.replicate_drop_total += 1;
                }
            }
        }

        // Timeline step, when the event changed the replica set.
        let change = match &event.kind {
            EventKind::PlacementAction(p) => match p.action {
                PlacementActionKind::Drop => Some(ReplicaChange::Dropped { host: p.host }),
                PlacementActionKind::AffinityReduce => {
                    Some(ReplicaChange::AffinityReduced { host: p.host })
                }
                PlacementActionKind::DropRefused => {
                    Some(ReplicaChange::DropRefused { host: p.host })
                }
                PlacementActionKind::GeoMigrate | PlacementActionKind::LoadMigrate => {
                    p.target.map(|to| ReplicaChange::Migrated {
                        from: p.host,
                        to,
                        source_dropped: delta.removed.is_some(),
                    })
                }
                PlacementActionKind::GeoReplicate | PlacementActionKind::LoadReplicate => delta
                    .created
                    .map(|(host, new_copy)| ReplicaChange::Created { host, new_copy }),
            },
            EventKind::ReReplication { target, .. } => {
                Some(ReplicaChange::ReReplicated { host: *target })
            }
            EventKind::CountsReset {
                cause: ResetCause::Purge,
                ..
            } => Some(ReplicaChange::Purged),
            _ => None,
        };
        if let Some(change) = change {
            let cap = self.cfg.timeline_capacity.max(1);
            let state = self.objects.entry(object).or_default();
            if state.timeline.len() >= cap {
                state.timeline.remove(0);
                state.timeline_dropped += 1;
            }
            state.timeline.push(TimelineStep {
                seq: event.seq,
                t: event.t,
                change,
            });
        }
    }

    /// Marks the end of the observed interval (the run duration). The
    /// ledger has no windowed gauges to roll forward; this only pins
    /// the horizon reported by [`last_t`](Self::last_t).
    pub fn finalize(&mut self, t_end: f64) {
        if t_end > self.t_end {
            self.t_end = t_end;
        }
    }

    /// Latest time observed (event time or `finalize` horizon).
    pub fn last_t(&self) -> f64 {
        self.t_end
    }

    /// Snapshots the current protocol-health summary. Callable mid-run
    /// (the live dashboard does) or after [`finalize`](Self::finalize).
    pub fn health(&self) -> ProtocolHealth {
        let violations = self.auditor.violations();
        ProtocolHealth {
            events_seen: self.auditor.events_seen(),
            active_replicas: self.auditor.active_replicas(),
            requests: self.requests_total,
            served: self.served_total,
            relocations: self.relocations_total,
            bytes_moved: self.bytes_moved_total,
            ping_pong: self.ping_pong_total,
            replicate_drop: self.replicate_drop_total,
            violations: violations.len() as u64,
            violation_seqs: violations
                .iter()
                .take(VIOLATION_SEQS_CAP)
                .map(|v| v.seq)
                .collect(),
            churn_window: self.cfg.churn_window,
            top_objects: self
                .churn_table(TOP_OBJECTS_CAP)
                .into_iter()
                .filter(|(_, c)| c.bytes_moved > 0 || c.churn_events() > 0)
                .collect(),
        }
    }
}

/// A cloneable, thread-safe handle around an [`ObjectLedger`]: attach
/// one clone to the simulation as an observer and read timelines or
/// health snapshots from another (the live dashboard does exactly
/// this).
#[derive(Clone, Debug, Default)]
pub struct SharedObjectLedger(Arc<Mutex<ObjectLedger>>);

impl SharedObjectLedger {
    /// Creates a shared ledger with the given configuration.
    pub fn new(cfg: LedgerConfig) -> Self {
        Self(Arc::new(Mutex::new(ObjectLedger::new(cfg))))
    }

    /// Folds one event.
    pub fn fold(&self, event: &Event) {
        self.0.lock().expect("ledger lock").fold(event);
    }

    /// Pins the end of the observed interval.
    pub fn finalize(&self, t_end: f64) {
        self.0.lock().expect("ledger lock").finalize(t_end);
    }

    /// Snapshots the current protocol-health summary.
    pub fn health(&self) -> ProtocolHealth {
        self.0.lock().expect("ledger lock").health()
    }

    /// Runs `f` with shared access to the inner ledger.
    pub fn with<R>(&self, f: impl FnOnce(&ObjectLedger) -> R) -> R {
        f(&self.0.lock().expect("ledger lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PlacementActionEvent;

    fn ev(seq: u64, t: f64, kind: EventKind) -> Event {
        Event {
            seq,
            parent: None,
            t,
            queue_depth: 0,
            kind,
        }
    }

    fn reset(seq: u64, t: f64, object: u32, cause: ResetCause) -> Event {
        ev(seq, t, EventKind::CountsReset { object, cause })
    }

    fn action(
        seq: u64,
        t: f64,
        host: u16,
        object: u32,
        kind: PlacementActionKind,
        target: Option<u16>,
    ) -> Event {
        ev(
            seq,
            t,
            EventKind::PlacementAction(PlacementActionEvent {
                host,
                object,
                action: kind,
                target,
                unit_rate: 0.1,
                share: None,
                ratio: None,
                deletion_threshold: 0.01,
                replication_threshold: 0.18,
            }),
        )
    }

    fn served(seq: u64, t: f64, object: u32, host: u16) -> Event {
        ev(
            seq,
            t,
            EventKind::RequestServed {
                gateway: 0,
                object,
                host,
                latency: 0.05,
                hops: 2,
            },
        )
    }

    fn migrate(ledger: &mut ObjectLedger, seq: u64, t: f64, object: u32, from: u16, to: u16) {
        ledger.fold(&reset(seq, t, object, ResetCause::Created));
        ledger.fold(&reset(seq + 1, t, object, ResetCause::Dropped));
        ledger.fold(&action(
            seq + 2,
            t,
            from,
            object,
            PlacementActionKind::GeoMigrate,
            Some(to),
        ));
    }

    #[test]
    fn ping_pong_within_window_is_counted() {
        let mut l = ObjectLedger::new(LedgerConfig {
            churn_window: 100.0,
            ..LedgerConfig::default()
        });
        migrate(&mut l, 1, 60.0, 7, 1, 2);
        migrate(&mut l, 10, 120.0, 7, 2, 1);
        let c = l.object(7).unwrap();
        assert_eq!(c.ping_pong, 1);
        // A third bounce back is another ping-pong.
        migrate(&mut l, 20, 180.0, 7, 1, 2);
        assert_eq!(l.object(7).unwrap().ping_pong, 2);
        assert_eq!(l.health().ping_pong, 2);
    }

    #[test]
    fn slow_migrate_back_outside_window_is_not_churn() {
        let mut l = ObjectLedger::new(LedgerConfig {
            churn_window: 100.0,
            ..LedgerConfig::default()
        });
        migrate(&mut l, 1, 60.0, 7, 1, 2);
        migrate(&mut l, 10, 600.0, 7, 2, 1);
        assert_eq!(l.object(7).unwrap().ping_pong, 0);
    }

    #[test]
    fn replicate_then_drop_within_window_is_a_cycle() {
        let mut l = ObjectLedger::new(LedgerConfig {
            object_size: 1000,
            churn_window: 100.0,
            ..LedgerConfig::default()
        });
        l.fold(&reset(1, 60.0, 7, ResetCause::Created));
        l.fold(&action(
            2,
            60.0,
            1,
            7,
            PlacementActionKind::GeoReplicate,
            Some(2),
        ));
        l.fold(&reset(3, 120.0, 7, ResetCause::Dropped));
        l.fold(&action(4, 120.0, 2, 7, PlacementActionKind::Drop, None));
        let c = l.object(7).unwrap();
        assert_eq!(c.replicate_drop, 1);
        assert_eq!(c.bytes_moved, 1000);
        assert_eq!(c.relocations, 1);
        assert!(l.auditor().violations().is_empty());
    }

    #[test]
    fn affinity_transfer_moves_no_bytes() {
        let mut l = ObjectLedger::new(LedgerConfig {
            object_size: 1000,
            ..LedgerConfig::default()
        });
        // Host 2 already holds a copy (inferred from serving).
        l.fold(&served(1, 10.0, 7, 2));
        l.fold(&reset(2, 60.0, 7, ResetCause::Created));
        l.fold(&action(
            3,
            60.0,
            1,
            7,
            PlacementActionKind::GeoReplicate,
            Some(2),
        ));
        let c = l.object(7).unwrap();
        assert_eq!(c.relocations, 1);
        assert_eq!(c.bytes_moved, 0, "affinity transfer ships no data");
    }

    #[test]
    fn node_attribution_tracks_bytes_in_and_out() {
        let mut l = ObjectLedger::new(LedgerConfig {
            object_size: 500,
            ..LedgerConfig::default()
        });
        l.fold(&reset(1, 60.0, 7, ResetCause::Created));
        l.fold(&action(
            2,
            60.0,
            1,
            7,
            PlacementActionKind::GeoReplicate,
            Some(2),
        ));
        l.fold(&served(3, 61.0, 7, 2));
        let nodes = l.node_table();
        let n1 = nodes.iter().find(|(n, _)| *n == 1).unwrap().1;
        let n2 = nodes.iter().find(|(n, _)| *n == 2).unwrap().1;
        assert_eq!(n1.bytes_out, 500);
        assert_eq!(n2.bytes_in, 500);
        assert_eq!(n2.served, 1);
        assert_eq!(n2.bytes_per_served(), 500.0);
    }

    #[test]
    fn timeline_records_lifecycle_with_seqs() {
        let mut l = ObjectLedger::new(LedgerConfig::default());
        l.fold(&reset(1, 60.0, 7, ResetCause::Created));
        l.fold(&action(
            2,
            60.0,
            1,
            7,
            PlacementActionKind::GeoReplicate,
            Some(2),
        ));
        migrate(&mut l, 3, 120.0, 7, 2, 3);
        l.fold(&ev(
            8,
            200.0,
            EventKind::ReReplication {
                object: 7,
                target: 4,
                elapsed: 12.0,
            },
        ));
        let steps = l.timeline(7);
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].seq, 2);
        assert!(matches!(
            steps[0].change,
            ReplicaChange::Created {
                host: 2,
                new_copy: true
            }
        ));
        assert!(matches!(
            steps[1].change,
            ReplicaChange::Migrated {
                from: 2,
                to: 3,
                source_dropped: true
            }
        ));
        assert!(matches!(
            steps[2].change,
            ReplicaChange::ReReplicated { host: 4 }
        ));
        assert!(l.timeline(99).is_empty());
    }

    #[test]
    fn timeline_capacity_caps_and_counts_drops() {
        let mut l = ObjectLedger::new(LedgerConfig {
            timeline_capacity: 2,
            ..LedgerConfig::default()
        });
        for i in 0..4u64 {
            let t = 60.0 * (i + 1) as f64;
            l.fold(&reset(i * 10 + 1, t, 7, ResetCause::Created));
            l.fold(&action(
                i * 10 + 2,
                t,
                1,
                7,
                PlacementActionKind::GeoReplicate,
                Some(2 + i as u16),
            ));
        }
        assert_eq!(l.timeline(7).len(), 2);
        assert_eq!(l.timeline_dropped(7), 2);
        assert_eq!(l.timeline(7)[0].seq, 22, "oldest steps evicted first");
    }

    #[test]
    fn health_snapshot_summarizes_and_ranks() {
        let mut l = ObjectLedger::new(LedgerConfig {
            object_size: 1000,
            churn_window: 100.0,
            ..LedgerConfig::default()
        });
        l.fold(&served(1, 1.0, 7, 1));
        l.fold(&served(2, 2.0, 8, 1));
        l.fold(&reset(3, 60.0, 7, ResetCause::Created));
        l.fold(&action(
            4,
            60.0,
            1,
            7,
            PlacementActionKind::GeoReplicate,
            Some(2),
        ));
        l.finalize(150.0);
        let h = l.health();
        assert_eq!(h.served, 2);
        assert_eq!(h.relocations, 1);
        assert_eq!(h.bytes_moved, 1000);
        assert_eq!(h.violations, 0);
        assert_eq!(h.bytes_per_served(), 500.0);
        assert_eq!(h.top_objects.len(), 1, "unmoved object 8 not listed");
        assert_eq!(h.top_objects[0].0, 7);
        assert_eq!(l.last_t(), 150.0);
        let text = h.render();
        assert!(text.contains("[ok]"), "{text}");
    }

    #[test]
    fn health_render_flags_violations_with_seqs() {
        let mut l = ObjectLedger::new(LedgerConfig::default());
        l.fold(&action(41, 60.0, 3, 9, PlacementActionKind::Drop, None));
        let h = l.health();
        assert_eq!(h.violations, 1);
        assert_eq!(h.violation_seqs, vec![41]);
        let text = h.render();
        assert!(text.contains("VIOLATED"), "{text}");
        assert!(text.contains("41"), "{text}");
    }

    #[test]
    fn replicas_of_reflects_reconstruction() {
        let mut l = ObjectLedger::new(LedgerConfig::default());
        l.fold(&served(1, 1.0, 7, 1));
        l.fold(&reset(2, 60.0, 7, ResetCause::Created));
        l.fold(&action(
            3,
            60.0,
            1,
            7,
            PlacementActionKind::GeoReplicate,
            Some(2),
        ));
        assert_eq!(l.replicas_of(7), vec![1, 2]);
        l.fold(&reset(4, 120.0, 7, ResetCause::Dropped));
        l.fold(&action(5, 120.0, 2, 7, PlacementActionKind::Drop, None));
        assert_eq!(l.replicas_of(7), vec![1]);
    }

    #[test]
    fn shared_ledger_round_trip() {
        let shared = SharedObjectLedger::new(LedgerConfig::default());
        let clone = shared.clone();
        clone.fold(&served(1, 1.0, 3, 2));
        clone.finalize(20.0);
        assert_eq!(shared.health().served, 1);
        assert_eq!(shared.with(|l| l.last_t()), 20.0);
    }
}
