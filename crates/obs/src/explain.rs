//! Long-form, human-readable explanations of recorded events, used by
//! `radar events explain <seq>`.

use crate::event::{DecisionBranch, Event, EventKind, PlacementActionKind};

fn opt_host(h: Option<u16>) -> String {
    match h {
        Some(h) => format!("host {h}"),
        None => "(none)".to_string(),
    }
}

fn opt_unit(u: Option<f64>) -> String {
    match u {
        Some(u) => format!("{u:.3}"),
        None => "n/a".to_string(),
    }
}

impl Event {
    /// Renders a multi-line explanation of the event: for decisions,
    /// the full Fig. 2 input (candidate table, unit request counts,
    /// distances) and why the winning branch won; for placement
    /// actions, the threshold test that triggered them with the `u`/`m`
    /// values in force.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "event #{} at t={:.3}s (queue depth {})\n",
            self.seq, self.t, self.queue_depth
        ));
        match &self.kind {
            EventKind::RequestArrived { gateway, object } => {
                out.push_str(&format!(
                    "request for object {object} arrived at gateway {gateway}.\n"
                ));
            }
            EventKind::Decision(d) => {
                out.push_str(&format!(
                    "redirector decision (Fig. 2) for object {} at gateway {}:\n",
                    d.object, d.gateway
                ));
                if d.candidates.is_empty() {
                    out.push_str(&format!(
                        "  degraded mode: {}\n",
                        crate::event::degradation_reason(d.branch)
                    ));
                } else {
                    out.push_str(&format!(
                        "  {:<6} {:>8} {:>5} {:>10} {:>9}\n",
                        "host", "rcnt", "aff", "unit", "distance"
                    ));
                    for c in &d.candidates {
                        let mut marks = String::new();
                        if Some(c.host) == d.closest {
                            marks.push_str("  <- closest (p)");
                        }
                        if Some(c.host) == d.least {
                            marks.push_str("  <- least unit count (q)");
                        }
                        out.push_str(&format!(
                            "  {:<6} {:>8} {:>5} {:>10.3} {:>9}{}\n",
                            c.host, c.rcnt, c.aff, c.unit, c.distance, marks
                        ));
                    }
                    out.push_str(&format!(
                        "  closest replica p = {}, unit_rcnt(p) = {}\n",
                        opt_host(d.closest),
                        opt_unit(d.unit_closest)
                    ));
                    out.push_str(&format!(
                        "  least-requested q = {}, unit_rcnt(q) = {}\n",
                        opt_host(d.least),
                        opt_unit(d.unit_least)
                    ));
                    match (d.unit_closest, d.unit_least) {
                        (Some(up), Some(uq)) => {
                            let lhs = up / d.constant;
                            let cmp = if lhs > uq { ">" } else { "<=" };
                            out.push_str(&format!(
                                "  test: unit_rcnt(p)/constant = {:.3}/{:.1} = {:.3} {} {:.3} = unit_rcnt(q)\n",
                                up, d.constant, lhs, cmp, uq
                            ));
                        }
                        _ => out.push_str("  test: not evaluated\n"),
                    }
                }
                let why = match d.branch {
                    DecisionBranch::Closest => {
                        "p is not sufficiently more loaded than q, so the closest replica serves"
                    }
                    DecisionBranch::LeastRequested => {
                        "p's unit request count exceeds q's by more than the constant factor, \
                         so load wins over proximity"
                    }
                    DecisionBranch::PrimaryFallback => {
                        "no usable replica answered; the request fell back to the primary copy"
                    }
                    DecisionBranch::Policy => "a non-RaDaR selection policy chose the host",
                };
                out.push_str(&format!(
                    "  => host {} serves ({} branch): {}.\n",
                    d.chosen, d.branch, why
                ));
            }
            EventKind::RequestServed {
                gateway,
                object,
                host,
                latency,
                hops,
            } => {
                out.push_str(&format!(
                    "object {object} served by host {host}, delivered to gateway \
                     {gateway} after {:.3} ms over {hops} hops.\n",
                    latency * 1e3
                ));
            }
            EventKind::RequestFailed {
                gateway,
                object,
                reason,
            } => {
                out.push_str(&format!(
                    "request for object {object} at gateway {gateway} failed: {reason}.\n"
                ));
            }
            EventKind::PlacementAction(p) => {
                out.push_str(&format!(
                    "placement action on host {}: {} object {}{}\n",
                    p.host,
                    p.action,
                    p.object,
                    p.target
                        .map(|h| format!(" -> host {h}"))
                        .unwrap_or_default()
                ));
                out.push_str(&format!(
                    "  thresholds in force: deletion u = {}, replication m = {}\n",
                    p.deletion_threshold, p.replication_threshold
                ));
                out.push_str(&format!(
                    "  unit access rate (cnt_s/aff/period) = {:.4}\n",
                    p.unit_rate
                ));
                use PlacementActionKind as Action;
                match p.action {
                    Action::Drop | Action::AffinityReduce | Action::DropRefused => {
                        out.push_str(&format!(
                            "  deletion test (Fig. 3): unit rate {:.4} < u = {} => replica is \
                             underused",
                            p.unit_rate, p.deletion_threshold
                        ));
                        match p.action {
                            Action::Drop => out.push_str("; the copy was deleted.\n"),
                            Action::AffinityReduce => {
                                out.push_str("; its affinity was reduced instead of deleting.\n")
                            }
                            _ => out.push_str(
                                "; but the replica floor refused the drop (last live copy).\n",
                            ),
                        }
                    }
                    Action::GeoMigrate | Action::GeoReplicate => {
                        if let (Some(share), Some(ratio)) = (p.share, p.ratio) {
                            out.push_str(&format!(
                                "  qualifying test (Figs. 4-5): share of accesses whose \
                                 preference path passes the target = {share:.3} > required \
                                 ratio {ratio:.3}\n"
                            ));
                        }
                        if p.action == Action::GeoReplicate {
                            out.push_str(&format!(
                                "  replication test: unit rate {:.4} > m = {} => object is hot \
                                 enough to copy rather than move.\n",
                                p.unit_rate, p.replication_threshold
                            ));
                        } else {
                            out.push_str(&format!(
                                "  migration chosen: unit rate {:.4} <= m = {} => object moves \
                                 toward its demand instead of replicating.\n",
                                p.unit_rate, p.replication_threshold
                            ));
                        }
                    }
                    Action::LoadMigrate | Action::LoadReplicate => {
                        if let Some(foreign) = p.share {
                            out.push_str(&format!(
                                "  offload ordering: foreign-request share = {foreign:.3} \
                                 (most-foreign objects leave first)\n"
                            ));
                        }
                        if p.action == Action::LoadReplicate {
                            out.push_str(&format!(
                                "  host over high watermark and unit rate {:.4} > m = {} => hot \
                                 object is replicated to the target rather than migrated.\n",
                                p.unit_rate, p.replication_threshold
                            ));
                        } else {
                            out.push_str(
                                "  host over high watermark => object migrated to a host under \
                                 the low watermark.\n",
                            );
                        }
                    }
                }
            }
            EventKind::CountsReset { object, cause } => {
                out.push_str(&format!(
                    "object {object}'s replica set changed ({cause}); all replica request \
                     counts were reset to 1 so the Fig. 2 unit counts restart fairly.\n"
                ));
            }
            EventKind::Fault { desc } => {
                out.push_str(&format!("fault transition applied: {desc}.\n"));
            }
            EventKind::ReReplication {
                object,
                target,
                elapsed,
            } => {
                out.push_str(&format!(
                    "re-replication sweep restored object {object} on host {target} after \
                     {elapsed:.1}s below its replica floor.\n"
                ));
            }
            EventKind::ProviderUpdate(u) => {
                out.push_str(&format!(
                    "provider update v{} for {} object {} issued at primary host {}.\n",
                    u.version, u.class, u.object, u.primary
                ));
                out.push_str(&format!(
                    "  propagation: {} replica target(s), {} bytes x hops charged to the \
                     backbone.\n",
                    u.targets, u.bytes_hops
                ));
                if u.reassigned {
                    out.push_str(
                        "  the previous primary was unreachable, so the primary copy was \
                         reassigned before issuing (§5).\n",
                    );
                }
                match u.class {
                    crate::event::ConsistencyClass::Type1 => out.push_str(
                        "  type-1 semantics: replicas receive the new version \
                         asynchronously; reads may be stale until delivery.\n",
                    ),
                    crate::event::ConsistencyClass::Type2 => out.push_str(
                        "  type-2 semantics: the update commutes, so replicas merge it \
                         asynchronously in any order.\n",
                    ),
                    crate::event::ConsistencyClass::Type3 => out.push_str(
                        "  type-3 semantics: non-commuting update applied synchronously at \
                         every replica; no staleness window exists.\n",
                    ),
                }
            }
            EventKind::UpdateDelivered(u) => {
                if u.wasted {
                    out.push_str(&format!(
                        "update v{} for {} object {} reached host {} after the replica was \
                         dropped; the delivery was wasted ({:.3}s in flight).\n",
                        u.version, u.class, u.object, u.host, u.lag
                    ));
                } else {
                    out.push_str(&format!(
                        "update v{} for {} object {} applied at replica host {} after \
                         {:.3}s of staleness (update lag).\n",
                        u.version, u.class, u.object, u.host, u.lag
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{
        CandidateSnapshot, DecisionEvent, FailReason, PlacementActionEvent, ResetCause,
    };

    #[test]
    fn decision_explanation_names_branch_and_candidates() {
        let e = Event {
            seq: 11,
            parent: Some(10),
            t: 4.5,
            queue_depth: 2,
            kind: EventKind::Decision(DecisionEvent {
                object: 42,
                gateway: 1,
                chosen: 3,
                branch: DecisionBranch::LeastRequested,
                constant: 2.0,
                closest: Some(5),
                least: Some(3),
                unit_closest: Some(9.0),
                unit_least: Some(2.0),
                candidates: vec![
                    CandidateSnapshot {
                        host: 3,
                        rcnt: 4,
                        aff: 2,
                        unit: 2.0,
                        distance: 7,
                    },
                    CandidateSnapshot {
                        host: 5,
                        rcnt: 9,
                        aff: 1,
                        unit: 9.0,
                        distance: 1,
                    },
                ],
            }),
        };
        let text = e.explain();
        assert!(text.contains("Fig. 2"), "{text}");
        assert!(text.contains("closest (p)"), "{text}");
        assert!(text.contains("least unit count (q)"), "{text}");
        assert!(text.contains("9.000/2.0 = 4.500"), "{text}");
        assert!(text.contains("least-requested branch"), "{text}");
    }

    #[test]
    fn placement_explanation_shows_thresholds() {
        let e = Event {
            seq: 90,
            parent: None,
            t: 100.0,
            queue_depth: 0,
            kind: EventKind::PlacementAction(PlacementActionEvent {
                host: 2,
                object: 42,
                action: PlacementActionKind::GeoReplicate,
                target: Some(8),
                unit_rate: 0.31,
                share: Some(0.45),
                ratio: Some(0.3),
                deletion_threshold: 0.01,
                replication_threshold: 0.18,
            }),
        };
        let text = e.explain();
        assert!(text.contains("u = 0.01"), "{text}");
        assert!(text.contains("m = 0.18"), "{text}");
        assert!(text.contains("0.450"), "{text}");
        assert!(text.contains("replication test"), "{text}");
    }

    #[test]
    fn degraded_decision_explains_instead_of_empty_table() {
        let e = Event {
            seq: 5,
            parent: None,
            t: 44.0,
            queue_depth: 0,
            kind: EventKind::Decision(DecisionEvent {
                object: 9,
                gateway: 3,
                chosen: 1,
                branch: DecisionBranch::PrimaryFallback,
                constant: 2.0,
                closest: None,
                least: None,
                unit_closest: None,
                unit_least: None,
                candidates: Vec::new(),
            }),
        };
        let text = e.explain();
        assert!(text.contains("degraded mode"), "{text}");
        assert!(text.contains("no usable replica"), "{text}");
        assert!(text.ends_with('\n'), "explanation must end with newline");
    }

    #[test]
    fn every_variant_explains_without_panicking() {
        let kinds = vec![
            EventKind::RequestArrived {
                gateway: 0,
                object: 1,
            },
            EventKind::RequestServed {
                gateway: 0,
                object: 1,
                host: 2,
                latency: 0.01,
                hops: 2,
            },
            EventKind::RequestFailed {
                gateway: 0,
                object: 1,
                reason: FailReason::Unreachable,
            },
            EventKind::CountsReset {
                object: 1,
                cause: ResetCause::Created,
            },
            EventKind::Fault {
                desc: "host-crash 7".into(),
            },
            EventKind::ReReplication {
                object: 1,
                target: 3,
                elapsed: 12.0,
            },
            EventKind::ProviderUpdate(crate::event::ProviderUpdateEvent {
                object: 1,
                class: crate::event::ConsistencyClass::Type1,
                version: 2,
                primary: 0,
                targets: 3,
                bytes_hops: 1024,
                reassigned: true,
            }),
            EventKind::UpdateDelivered(crate::event::UpdateDeliveredEvent {
                object: 1,
                host: 4,
                class: crate::event::ConsistencyClass::Type2,
                version: 2,
                lag: 0.25,
                wasted: false,
            }),
        ];
        for kind in kinds {
            let e = Event {
                seq: 1,
                parent: None,
                t: 0.0,
                queue_depth: 0,
                kind,
            };
            assert!(e.explain().starts_with("event #1"));
        }
    }
}
