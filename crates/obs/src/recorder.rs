//! The bounded, severity-aware ring-buffer recorder and its shared
//! (post-run inspectable) wrapper.

use crate::event::{CandidateSnapshot, DecisionEvent, Event, EventKind, Severity};
use crate::jsonl::{EvictionSummary, ReorderStats};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Default ring capacity used by the CLI and examples.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// How many evicted candidate buffers the recorder keeps for reuse.
const SPARE_CANDIDATE_BUFFERS: usize = 8;

/// A bounded in-memory flight recorder.
///
/// Events are kept in a ring of fixed total capacity, segregated by
/// [`Severity`]: once full, the oldest event of the *lowest occupied
/// severity* is evicted per new event, so memory stays bounded no
/// matter how long the run while faults, placement actions, and
/// re-replications outlive the routine request traffic around them.
/// An optional *sink* additionally streams every event as a JSONL line
/// the moment it is recorded — the sink sees the full stream even
/// after the ring has started evicting.
///
/// ```
/// use radar_obs::{Event, EventKind, Recorder};
///
/// let mut rec = Recorder::new(2);
/// for seq in 1..=3 {
///     rec.record(&Event {
///         seq,
///         parent: None,
///         t: seq as f64,
///         queue_depth: 0,
///         kind: EventKind::Fault { desc: format!("f{seq}") },
///     });
/// }
/// assert_eq!(rec.len(), 2); // ring holds the newest two
/// assert_eq!(rec.evicted(), 1); // ...and remembers it dropped one
/// assert_eq!(rec.events().next().unwrap().seq, 2);
/// ```
pub struct Recorder {
    capacity: usize,
    /// One FIFO per severity, each internally seq-ascending.
    rings: [VecDeque<Event>; 3],
    /// Events evicted so far, per severity.
    evicted: [u64; 3],
    sink: Option<Box<dyn Write + Send>>,
    sink_error: Option<String>,
    /// Reused serialization buffer for the streaming sink, so a traced
    /// run serializes events without per-event allocations.
    line_buf: String,
    /// Candidate buffers harvested from evicted decision events
    /// (stored cleared), reused when the next decision is ring-cloned.
    spare_candidates: Vec<Vec<CandidateSnapshot>>,
    /// Reorder-buffer statistics delivered at the end of a sharded run.
    reorder: Option<ReorderStats>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("evicted", &self.evicted)
            .field("has_sink", &self.sink.is_some())
            .field("sink_error", &self.sink_error)
            .finish()
    }
}

impl Recorder {
    /// Creates a recorder holding at most `capacity` events (min 1)
    /// across all severities.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            rings: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            evicted: [0; 3],
            sink: None,
            sink_error: None,
            line_buf: String::new(),
            spare_candidates: Vec::new(),
            reorder: None,
        }
    }

    /// Attaches a streaming sink: every subsequently recorded event is
    /// also written to `sink` as one JSONL line. Use this to capture
    /// the *complete* stream of a long run to a file while the
    /// in-memory ring stays bounded.
    pub fn with_sink(mut self, sink: Box<dyn Write + Send>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Records one event. At capacity, the oldest event of the lowest
    /// occupied severity is evicted — served requests go first, faults
    /// and placement actions last.
    ///
    /// Steady-state recording is allocation-free: the sink line buffer
    /// is reused, and decision candidate buffers are recycled from
    /// evicted events instead of freshly cloned.
    pub fn record(&mut self, event: &Event) {
        if let Some(sink) = &mut self.sink {
            self.line_buf.clear();
            event.write_json_line(&mut self.line_buf);
            self.line_buf.push('\n');
            if let Err(e) = sink.write_all(self.line_buf.as_bytes()) {
                if self.sink_error.is_none() {
                    self.sink_error = Some(e.to_string());
                }
                self.sink = None;
            }
        }
        let stored = match &event.kind {
            EventKind::Decision(d) => {
                let mut candidates = self.spare_candidates.pop().unwrap_or_default();
                candidates.extend_from_slice(&d.candidates);
                Event {
                    kind: EventKind::Decision(DecisionEvent {
                        object: d.object,
                        gateway: d.gateway,
                        chosen: d.chosen,
                        branch: d.branch,
                        constant: d.constant,
                        closest: d.closest,
                        least: d.least,
                        unit_closest: d.unit_closest,
                        unit_least: d.unit_least,
                        candidates,
                    }),
                    ..*event
                }
            }
            _ => event.clone(),
        };
        self.rings[event.severity() as usize].push_back(stored);
        if self.len() > self.capacity {
            for sev in 0..3 {
                if let Some(victim) = self.rings[sev].pop_front() {
                    self.evicted[sev] += 1;
                    if let EventKind::Decision(mut d) = victim.kind {
                        if self.spare_candidates.len() < SPARE_CANDIDATE_BUFFERS {
                            d.candidates.clear();
                            self.spare_candidates.push(d.candidates);
                        }
                    }
                    break;
                }
            }
        }
    }

    /// Stores the reorder-buffer statistics of a sharded run, called
    /// once at the end of the run (see `Observer::on_reorder_stats`).
    /// A streaming sink gets the `{"type":"reorder",…}` trailer line
    /// immediately, so `--events` files carry it; [`Self::to_jsonl`]
    /// appends the same trailer.
    pub fn set_reorder_stats(&mut self, stats: ReorderStats) {
        self.reorder = Some(stats);
        if let Some(sink) = &mut self.sink {
            self.line_buf.clear();
            self.line_buf.push_str(&stats.to_json_line());
            self.line_buf.push('\n');
            if let Err(e) = sink.write_all(self.line_buf.as_bytes()) {
                if self.sink_error.is_none() {
                    self.sink_error = Some(e.to_string());
                }
                self.sink = None;
            }
        }
    }

    /// The reorder-buffer statistics, when a sharded run reported any.
    pub fn reorder_stats(&self) -> Option<ReorderStats> {
        self.reorder
    }

    /// Flushes the sink, if any. Returns the first write error the
    /// sink ever produced (also set if flushing fails now).
    pub fn finish(&mut self) -> Option<String> {
        if let Some(sink) = &mut self.sink {
            if let Err(e) = sink.flush() {
                if self.sink_error.is_none() {
                    self.sink_error = Some(e.to_string());
                }
            }
        }
        self.sink_error.clone()
    }

    /// Number of events currently held in the ring.
    pub fn len(&self) -> usize {
        self.rings.iter().map(VecDeque::len).sum()
    }

    /// True when no events have been recorded (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(VecDeque::is_empty)
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events were evicted from the ring so far, all
    /// severities combined.
    pub fn evicted(&self) -> u64 {
        self.evicted.iter().sum()
    }

    /// Events evicted so far for one severity class.
    pub fn evicted_of(&self, severity: Severity) -> u64 {
        self.evicted[severity as usize]
    }

    /// The per-severity eviction tally as a serializable summary, or
    /// `None` when nothing was evicted.
    pub fn eviction_summary(&self) -> Option<EvictionSummary> {
        if self.evicted() == 0 {
            return None;
        }
        Some(EvictionSummary {
            routine: self.evicted[Severity::Routine as usize],
            notable: self.evicted[Severity::Notable as usize],
            critical: self.evicted[Severity::Critical as usize],
        })
    }

    /// Iterates the retained events in sequence order (each severity
    /// ring is internally ordered; this merges the three).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        let mut refs: Vec<&Event> = self.rings.iter().flatten().collect();
        refs.sort_by_key(|e| e.seq);
        refs.into_iter()
    }

    /// Serializes the retained events as a JSONL document (one event
    /// per line, sequence order, trailing newline). When the ring
    /// evicted anything, a final `{"type":"evictions",…}` trailer line
    /// records the per-severity losses so downstream tools can report
    /// them (see [`crate::parse_jsonl_log`]).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        if let Some(summary) = self.eviction_summary() {
            out.push_str(&summary.to_json_line());
            out.push('\n');
        }
        if let Some(stats) = self.reorder {
            out.push_str(&stats.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// A cloneable, thread-safe handle around a [`Recorder`].
///
/// The simulator takes ownership of attached observers, so a plain
/// `Recorder` cannot be inspected after the run. `SharedRecorder`
/// solves this: attach one clone to the simulation and keep another to
/// read the events back afterwards.
#[derive(Clone, Debug)]
pub struct SharedRecorder(Arc<Mutex<Recorder>>);

impl SharedRecorder {
    /// Creates a shared recorder with the given ring capacity.
    pub fn new(capacity: usize) -> Self {
        Self(Arc::new(Mutex::new(Recorder::new(capacity))))
    }

    /// Wraps an already-configured recorder (e.g. one with a sink).
    pub fn from_recorder(recorder: Recorder) -> Self {
        Self(Arc::new(Mutex::new(recorder)))
    }

    /// Records one event.
    pub fn record(&self, event: &Event) {
        self.0.lock().expect("recorder lock").record(event);
    }

    /// Runs `f` with shared access to the inner recorder.
    pub fn with<R>(&self, f: impl FnOnce(&Recorder) -> R) -> R {
        f(&self.0.lock().expect("recorder lock"))
    }

    /// Clones out the retained events, sequence order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.with(|r| r.events().cloned().collect())
    }

    /// Serializes the retained events as a JSONL document.
    pub fn to_jsonl(&self) -> String {
        self.with(|r| r.to_jsonl())
    }

    /// Flushes the sink, if any, returning the first sink error.
    pub fn finish(&self) -> Option<String> {
        self.0.lock().expect("recorder lock").finish()
    }

    /// Stores the reorder-buffer statistics of a sharded run.
    pub fn set_reorder_stats(&self, stats: ReorderStats) {
        self.0
            .lock()
            .expect("recorder lock")
            .set_reorder_stats(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::mpsc;

    fn fault(seq: u64) -> Event {
        Event {
            seq,
            parent: None,
            t: seq as f64,
            queue_depth: 0,
            kind: EventKind::Fault {
                desc: format!("f{seq}"),
            },
        }
    }

    fn served(seq: u64) -> Event {
        Event {
            seq,
            parent: None,
            t: seq as f64,
            queue_depth: 0,
            kind: EventKind::RequestServed {
                gateway: 0,
                object: 1,
                host: 2,
                latency: 0.05,
                hops: 2,
            },
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut rec = Recorder::new(3);
        for seq in 1..=5 {
            rec.record(&fault(seq));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.evicted(), 2);
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert_eq!(rec.capacity(), 3);
        assert!(!rec.is_empty());
    }

    #[test]
    fn routine_events_evicted_before_critical() {
        let mut rec = Recorder::new(4);
        // Interleave: served 1, fault 2, served 3, fault 4, served 5…
        rec.record(&served(1));
        rec.record(&fault(2));
        rec.record(&served(3));
        rec.record(&fault(4));
        rec.record(&served(5)); // evicts served #1
        rec.record(&fault(6)); // evicts served #3
        rec.record(&fault(7)); // evicts served #5
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 4, 6, 7], "faults survive, served evicted");
        assert_eq!(rec.evicted_of(Severity::Routine), 3);
        assert_eq!(rec.evicted_of(Severity::Critical), 0);
        let summary = rec.eviction_summary().expect("evictions happened");
        assert_eq!(summary.routine, 3);
        assert_eq!(summary.total(), 3);
    }

    #[test]
    fn critical_events_evict_among_themselves_when_alone() {
        let mut rec = Recorder::new(2);
        for seq in 1..=4 {
            rec.record(&fault(seq));
        }
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(rec.evicted_of(Severity::Critical), 2);
    }

    #[test]
    fn incoming_routine_event_yields_to_resident_critical() {
        let mut rec = Recorder::new(2);
        rec.record(&fault(1));
        rec.record(&fault(2));
        rec.record(&served(3)); // ring full of criticals: the newcomer goes
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(rec.evicted_of(Severity::Routine), 1);
    }

    #[test]
    fn decision_candidate_buffers_recycle_without_corruption() {
        use crate::event::{CandidateSnapshot, DecisionBranch, DecisionEvent};
        let decision = |seq: u64| Event {
            seq,
            parent: None,
            t: seq as f64,
            queue_depth: 0,
            kind: EventKind::Decision(DecisionEvent {
                object: 1,
                gateway: 0,
                chosen: seq as u16,
                branch: DecisionBranch::Closest,
                constant: 2.0,
                closest: Some(seq as u16),
                least: Some(seq as u16),
                unit_closest: Some(1.0),
                unit_least: Some(1.0),
                candidates: vec![CandidateSnapshot {
                    host: seq as u16,
                    rcnt: seq,
                    aff: 1,
                    unit: seq as f64,
                    distance: 2,
                }],
            }),
        };
        let mut rec = Recorder::new(2);
        for seq in 1..=5 {
            rec.record(&decision(seq));
        }
        let held: Vec<&Event> = rec.events().collect();
        assert_eq!(held.len(), 2);
        for e in held {
            match &e.kind {
                EventKind::Decision(d) => {
                    assert_eq!(d.candidates.len(), 1, "recycled buffer was cleared");
                    assert_eq!(d.candidates[0].rcnt, e.seq, "right snapshot retained");
                }
                other => panic!("unexpected kind {other:?}"),
            }
        }
        assert_eq!(rec.evicted(), 3);
    }

    #[test]
    fn to_jsonl_appends_eviction_trailer() {
        let mut rec = Recorder::new(1);
        rec.record(&served(1));
        rec.record(&fault(2)); // evicts served #1
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"type\":\"evictions\""), "{jsonl}");
        assert!(lines[1].contains("\"routine\":1"), "{jsonl}");
        // No trailer when nothing was evicted.
        let mut quiet = Recorder::new(8);
        quiet.record(&fault(1));
        assert_eq!(quiet.to_jsonl().lines().count(), 1);
    }

    #[test]
    fn sink_sees_evicted_events() {
        struct Chan(mpsc::Sender<Vec<u8>>);
        impl std::io::Write for Chan {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.send(buf.to_vec()).ok();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (tx, rx) = mpsc::channel();
        let mut rec = Recorder::new(1).with_sink(Box::new(Chan(tx)));
        for seq in 1..=4 {
            rec.record(&fault(seq));
        }
        assert_eq!(rec.finish(), None);
        drop(rec);
        let text: String = rx.iter().map(|b| String::from_utf8(b).unwrap()).collect();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "sink sees the full stream");
        assert!(lines[0].contains("\"seq\":1"));
        assert!(lines[3].contains("\"seq\":4"));
    }

    #[test]
    fn sink_errors_are_sticky_not_fatal() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut rec = Recorder::new(8).with_sink(Box::new(Broken));
        rec.record(&fault(1));
        rec.record(&fault(2));
        assert_eq!(rec.len(), 2, "ring still records");
        let err = rec.finish().expect("error reported");
        assert!(err.contains("disk full"), "{err}");
    }

    #[test]
    fn shared_recorder_round_trip() {
        let shared = SharedRecorder::new(16);
        let clone = shared.clone();
        clone.record(&fault(1));
        clone.record(&fault(2));
        assert_eq!(shared.snapshot().len(), 2);
        assert_eq!(shared.with(|r| r.len()), 2);
        let jsonl = shared.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert_eq!(shared.finish(), None);
    }
}
