//! Flight recorder for the RaDaR reproduction.
//!
//! This crate is the platform's observability spine: a typed event
//! vocabulary ([`Event`] / [`EventKind`]) covering every redirector
//! decision, placement action, fault transition, re-replication, and
//! count reset; a bounded, severity-aware ring-buffer [`Recorder`]
//! with streaming JSONL export; a streaming [`MetricsObserver`] that
//! folds the same event feed into dashboard aggregates; a structural
//! log differ ([`diff_events`]) for regression diffing of seeded runs;
//! and [`LoopProfile`] counters for event-loop wall time and queue
//! depth.
//!
//! Design rules:
//!
//! - **Dependency-free.** Serialization and parsing are implemented
//!   here (see [`jsonl`]); event logs can be read without the
//!   simulator.
//! - **Deterministic.** Events carry sim time, sequence numbers,
//!   causal parents, and queue depth — never wall clock — so two
//!   identical seeded runs serialize byte-identically. Wall-clock
//!   profiling lives in [`LoopProfile`], outside the event stream.
//! - **Bounded.** The ring evicts oldest-first at capacity; an
//!   optional sink still sees the full stream.
//!
//! ```
//! use radar_obs::{Event, EventKind, SharedRecorder};
//!
//! let rec = SharedRecorder::new(1024);
//! rec.record(&Event {
//!     seq: 1,
//!     parent: None,
//!     t: 0.5,
//!     queue_depth: 0,
//!     kind: EventKind::RequestArrived { gateway: 0, object: 7 },
//! });
//! let jsonl = rec.to_jsonl();
//! let parsed = radar_obs::parse_jsonl(&jsonl).unwrap();
//! assert_eq!(parsed[0].object(), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod diff;
mod event;
mod explain;
pub mod jsonl;
mod ledger;
mod metrics;
mod profile;
mod recorder;
mod reorder;
mod shard_profile;

pub use audit::{AuditDelta, InvariantAuditor, Violation, ViolationKind};
pub use diff::{diff_events, DiffOutcome};
pub use event::{
    CandidateSnapshot, ConsistencyClass, DecisionBranch, DecisionEvent, Event, EventKind,
    FailReason, PlacementActionEvent, PlacementActionKind, ProviderUpdateEvent, ResetCause,
    Severity, UpdateDeliveredEvent, EVENT_TYPES,
};
pub use jsonl::{
    parse_jsonl, parse_jsonl_log, EventLog, EvictionSummary, ParseError, ReorderStats,
};
pub use ledger::{
    LedgerConfig, NodeChurn, ObjectChurn, ObjectLedger, ProtocolHealth, ReplicaChange,
    SharedObjectLedger, TimelineStep,
};
pub use metrics::{MetricsConfig, MetricsObserver, ObjectCounters, SharedMetrics};
pub use profile::{HandlerStats, LoopProfile};
pub use recorder::{Recorder, SharedRecorder, DEFAULT_CAPACITY};
pub use reorder::EventReorderBuffer;
pub use shard_profile::{
    BarrierCause, LaneProfile, Log2Histogram, ShardProfile, SharedShardProfile, SpanKind,
    LOG2_BUCKETS,
};
