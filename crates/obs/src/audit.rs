//! Online replica-set invariant auditing over the event stream.
//!
//! The paper's correctness contract for replica management is the
//! replica-set invariant: a host notifies the directory *after*
//! creating a copy and *before* deleting one, so the directory's
//! replica set is always a subset of the copies that physically exist
//! (§3). [`InvariantAuditor`] checks that contract from the outside,
//! using only the flight-recorder stream: it reconstructs each
//! object's replica set from placement actions, counts-reset
//! notifications, re-replications and redirect decisions, and flags
//! any event that contradicts the reconstruction.
//!
//! Checks performed, in stream order:
//!
//! - **drop-before-notify** — a `drop` placement action with no
//!   matching `counts-reset(dropped)` notification in the same
//!   placement epoch: the host deleted its copy without telling the
//!   directory first.
//! - **orphaned-replica** — a replicate/migrate placement action with
//!   no matching `counts-reset(created)` notification: a physical copy
//!   exists that the directory was never told about, so it can never
//!   serve.
//! - **use-after-drop** — a redirect decision whose chosen host or
//!   candidate list includes a host whose replica was previously
//!   dropped (and never recreated): the directory redirected traffic
//!   at a copy that no longer exists.
//! - **disagreement** — bookkeeping mismatches that are neither of the
//!   above, e.g. a migration source that neither dropped its copy nor
//!   reported an affinity reduction.
//!
//! The auditor is deliberately lenient about what it cannot know:
//! initial placement emits no events, so a host first seen serving or
//! listed as a candidate is admitted as an inferred initial replica;
//! purges after a crash name no host, so every currently-down host's
//! copy is demoted to *unknown* (not absent) — a recovered host that
//! kept its replicas never trips a false positive. Requests already
//! redirected when a replica was dropped may legitimately complete
//! afterwards, so `served` events are never flagged — only decisions,
//! which read live directory state, are. A `primary-fallback`
//! decision means the platform found no usable replica and re-fetched
//! the object from the provider origin, installing a copy at the live
//! primary without a placement event; the decision itself is the only
//! trace of that install, so the chosen host is marked present rather
//! than checked.

use crate::event::{Event, EventKind, PlacementActionKind, ResetCause};
use std::collections::BTreeMap;
use std::fmt;

/// What the directory/host reconstruction knows about one `(object,
/// host)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Presence {
    /// Never mentioned, or demoted after a purge the stream cannot
    /// attribute to a single host.
    #[default]
    Unknown,
    /// The host holds a copy (created in-stream or inferred from use).
    Present,
    /// The host's copy was dropped and not recreated since.
    Absent,
}

/// The category of an audited inconsistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A replica was deleted without a directory notification.
    DropBeforeNotify,
    /// A replica was created without a directory notification.
    OrphanedReplica,
    /// The directory referenced a replica that was already dropped.
    UseAfterDrop,
    /// Directory and host bookkeeping disagree in some other way.
    Disagreement,
}

impl ViolationKind {
    /// Stable kebab-case tag for rendering and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            ViolationKind::DropBeforeNotify => "drop-before-notify",
            ViolationKind::OrphanedReplica => "orphaned-replica",
            ViolationKind::UseAfterDrop => "use-after-drop",
            ViolationKind::Disagreement => "disagreement",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One replica-set-invariant violation, anchored to the offending
/// event's sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Sequence number of the event that exposed the inconsistency.
    pub seq: u64,
    /// Simulated time of that event (seconds).
    pub t: f64,
    /// The object whose replica set is inconsistent.
    pub object: u32,
    /// The host involved, when one is identifiable.
    pub host: Option<u16>,
    /// The category of the inconsistency.
    pub kind: ViolationKind,
    /// Human-readable description of what contradicted what.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq {} (t={:.3}s) {}: {}",
            self.seq, self.t, self.kind, self.detail
        )
    }
}

/// The replica-set change one folded event implied, reported back to
/// callers (the [`crate::ObjectLedger`]) so churn accounting shares the
/// auditor's reconstruction instead of duplicating it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AuditDelta {
    /// A copy appeared on this host; `true` when it is a new physical
    /// copy (data actually moved), `false` when the target already held
    /// one and only its affinity grew.
    pub created: Option<(u16, bool)>,
    /// A copy disappeared from this host.
    pub removed: Option<u16>,
    /// The event was a migration `(source, target)`.
    pub migration: Option<(u16, u16)>,
}

/// Streaming replica-set invariant auditor.
///
/// Fold events in sequence order via [`fold`](Self::fold) — the order
/// every observer and every written JSONL log already has, serial or
/// sharded — and read accumulated [`violations`](Self::violations) at
/// any point. The fold is an online check: each violation is detected
/// at the event that exposes it.
///
/// ```
/// use radar_obs::{Event, EventKind, InvariantAuditor, PlacementActionEvent,
///                 PlacementActionKind};
///
/// let mut audit = InvariantAuditor::new();
/// // A drop with no counts-reset notification in the same epoch:
/// audit.fold(&Event {
///     seq: 1,
///     parent: None,
///     t: 60.0,
///     queue_depth: 0,
///     kind: EventKind::PlacementAction(PlacementActionEvent {
///         host: 3,
///         object: 7,
///         action: PlacementActionKind::Drop,
///         target: None,
///         unit_rate: 0.001,
///         share: None,
///         ratio: None,
///         deletion_threshold: 0.01,
///         replication_threshold: 0.18,
///     }),
/// });
/// assert_eq!(audit.violations().len(), 1);
/// assert_eq!(audit.violations()[0].seq, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InvariantAuditor {
    /// Reconstructed per-object replica presence.
    state: BTreeMap<u32, BTreeMap<u16, Presence>>,
    /// Directory notifications (counts-resets) of the in-progress
    /// placement epoch, not yet paired with their placement action.
    pending: BTreeMap<u32, Vec<(u64, f64, ResetCause)>>,
    /// Hosts currently crashed, from fault-transition descriptions.
    down: BTreeMap<u16, bool>,
    violations: Vec<Violation>,
    /// Running count of pairs in `state` that are `Present`.
    present_count: u64,
    events_seen: u64,
}

impl InvariantAuditor {
    /// Creates an empty auditor.
    pub fn new() -> Self {
        Self::default()
    }

    /// All violations detected so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total events folded.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Replicas currently reconstructed as present, across all objects.
    /// Inferred initial replicas count once first observed in use.
    pub fn active_replicas(&self) -> u64 {
        self.present_count
    }

    /// Whether the reconstruction currently believes `host` holds a
    /// copy of `object`.
    pub fn is_present(&self, object: u32, host: u16) -> bool {
        self.presence(object, host) == Presence::Present
    }

    fn presence(&self, object: u32, host: u16) -> Presence {
        self.state
            .get(&object)
            .and_then(|hosts| hosts.get(&host))
            .copied()
            .unwrap_or(Presence::Unknown)
    }

    fn set_presence(&mut self, object: u32, host: u16, next: Presence) {
        let slot = self
            .state
            .entry(object)
            .or_default()
            .entry(host)
            .or_default();
        match (*slot, next) {
            (Presence::Present, Presence::Present) => {}
            (Presence::Present, _) => self.present_count -= 1,
            (_, Presence::Present) => self.present_count += 1,
            _ => {}
        }
        *slot = next;
    }

    fn violation(
        &mut self,
        event: &Event,
        object: u32,
        host: Option<u16>,
        kind: ViolationKind,
        detail: String,
    ) {
        self.violations.push(Violation {
            seq: event.seq,
            t: event.t,
            object,
            host,
            kind,
            detail,
        });
    }

    /// Consumes the oldest unpaired directory notification for
    /// `object` with the given cause from the current epoch (same
    /// timestamp — resets always precede their placement action within
    /// an epoch, and epochs never share a timestamp with each other for
    /// the same object). Stale notifications from earlier epochs are
    /// discarded on the way.
    fn take_reset(&mut self, object: u32, t: f64, cause: ResetCause) -> Option<u64> {
        let pending = self.pending.get_mut(&object)?;
        pending.retain(|&(_, pt, _)| pt >= t);
        let idx = pending
            .iter()
            .position(|&(_, pt, pc)| pt == t && pc == cause)?;
        Some(pending.remove(idx).0)
    }

    /// Folds one event into the reconstruction, returning the replica
    /// change it implied (for churn accounting layered on top).
    pub fn fold(&mut self, event: &Event) -> AuditDelta {
        self.events_seen += 1;
        let mut delta = AuditDelta::default();
        match &event.kind {
            EventKind::CountsReset { object, cause } => match cause {
                // A purge names no host; the purged host is one of the
                // currently-crashed ones. Demote (never condemn) every
                // down host's copy so a host that recovers before being
                // declared dead cannot trip a false use-after-drop.
                ResetCause::Purge => {
                    let down: Vec<u16> = self
                        .down
                        .iter()
                        .filter(|&(_, &d)| d)
                        .map(|(&h, _)| h)
                        .collect();
                    for host in down {
                        if self.presence(*object, host) == Presence::Present {
                            self.set_presence(*object, host, Presence::Unknown);
                        }
                    }
                }
                _ => self
                    .pending
                    .entry(*object)
                    .or_default()
                    .push((event.seq, event.t, *cause)),
            },
            EventKind::PlacementAction(p) => self.fold_placement(event, p.clone(), &mut delta),
            EventKind::Decision(d) => {
                for c in &d.candidates {
                    self.check_directory_reference(event, d.object, c.host, "candidate");
                }
                if d.branch == crate::event::DecisionBranch::PrimaryFallback {
                    // Graceful degradation: no usable replica remained,
                    // so the platform fetched from the provider origin
                    // and re-installed the object at the (live) primary
                    // — directory and copy in one step, with no
                    // counts-reset to pair. The chosen host therefore
                    // holds a copy again, even if it was dropped before.
                    self.set_presence(d.object, d.chosen, Presence::Present);
                } else {
                    self.check_directory_reference(event, d.object, d.chosen, "chosen host");
                }
            }
            EventKind::RequestServed { object, host, .. } => {
                // A request redirected before a drop may complete after
                // it, so an absent host here is not a violation; only
                // infer presence for hosts never seen before.
                if self.presence(*object, *host) == Presence::Unknown {
                    self.set_presence(*object, *host, Presence::Present);
                }
            }
            EventKind::ReReplication { object, target, .. } => {
                // The sweep installs directly (directory and host in one
                // step), so there is no counts-reset to pair with.
                let new_copy = self.presence(*object, *target) != Presence::Present;
                self.set_presence(*object, *target, Presence::Present);
                delta.created = Some((*target, new_copy));
            }
            EventKind::Fault { desc } => {
                if let Some(host) = parse_host_transition(desc, "host-crash ") {
                    self.down.insert(host, true);
                } else if let Some(host) = parse_host_transition(desc, "host-recover ") {
                    self.down.insert(host, false);
                }
            }
            EventKind::ProviderUpdate(u) => {
                // The platform reassigns the primary before issuing when
                // the old one is unreachable, so the primary named here
                // must still hold a copy the directory knows about.
                self.check_directory_reference(event, u.object, u.primary, "update primary");
            }
            EventKind::UpdateDelivered(u) => {
                // A delivery the simulator applied (not wasted) found the
                // target in the replica set at delivery time; one landing
                // on a dropped copy means update routing and the
                // directory disagree. Wasted deliveries are the expected
                // drop-raced case and imply nothing.
                if !u.wasted {
                    self.check_directory_reference(event, u.object, u.host, "update delivery");
                }
            }
            EventKind::RequestArrived { .. } | EventKind::RequestFailed { .. } => {}
        }
        delta
    }

    /// A redirect decision listed `host` for `object`: flag it if the
    /// reconstruction knows that copy was dropped, otherwise admit it
    /// as an (inferred) replica.
    fn check_directory_reference(&mut self, event: &Event, object: u32, host: u16, role: &str) {
        match self.presence(object, host) {
            Presence::Absent => {
                let detail = format!(
                    "directory offered host {host} as {role} for object {object} \
                     after its replica was dropped"
                );
                self.violation(
                    event,
                    object,
                    Some(host),
                    ViolationKind::UseAfterDrop,
                    detail,
                );
            }
            Presence::Unknown => self.set_presence(object, host, Presence::Present),
            Presence::Present => {}
        }
    }

    fn fold_placement(
        &mut self,
        event: &Event,
        p: crate::event::PlacementActionEvent,
        delta: &mut AuditDelta,
    ) {
        let object = p.object;
        let source = p.host;
        match p.action {
            PlacementActionKind::Drop => {
                if self
                    .take_reset(object, event.t, ResetCause::Dropped)
                    .is_none()
                {
                    let detail = format!(
                        "host {source} dropped its copy of object {object} without a \
                         directory notification in the same epoch"
                    );
                    self.violation(
                        event,
                        object,
                        Some(source),
                        ViolationKind::DropBeforeNotify,
                        detail,
                    );
                }
                self.set_presence(object, source, Presence::Absent);
                delta.removed = Some(source);
            }
            PlacementActionKind::AffinityReduce => {
                if self
                    .take_reset(object, event.t, ResetCause::Affinity)
                    .is_none()
                {
                    let detail = format!(
                        "host {source} reduced affinity for object {object} without a \
                         directory notification"
                    );
                    self.violation(
                        event,
                        object,
                        Some(source),
                        ViolationKind::Disagreement,
                        detail,
                    );
                }
                self.set_presence(object, source, Presence::Present);
            }
            PlacementActionKind::DropRefused => {
                // The replica floor vetoed the drop; nothing changed.
                self.set_presence(object, source, Presence::Present);
            }
            PlacementActionKind::GeoReplicate | PlacementActionKind::LoadReplicate => {
                self.set_presence(object, source, Presence::Present);
                if let Some(target) = p.target {
                    self.admit_create(event, object, target, delta);
                }
            }
            PlacementActionKind::GeoMigrate | PlacementActionKind::LoadMigrate => {
                if let Some(target) = p.target {
                    self.admit_create(event, object, target, delta);
                    delta.migration = Some((source, target));
                }
                // The source sheds one affinity unit: a drop when it was
                // the last, otherwise just a reduction. The paired
                // notification says which.
                if self
                    .take_reset(object, event.t, ResetCause::Dropped)
                    .is_some()
                {
                    self.set_presence(object, source, Presence::Absent);
                    delta.removed = Some(source);
                } else if self
                    .take_reset(object, event.t, ResetCause::Affinity)
                    .is_some()
                {
                    self.set_presence(object, source, Presence::Present);
                } else {
                    let detail = format!(
                        "migration source host {source} of object {object} neither dropped \
                         its copy nor reported an affinity reduction"
                    );
                    self.violation(
                        event,
                        object,
                        Some(source),
                        ViolationKind::Disagreement,
                        detail,
                    );
                }
            }
        }
    }

    /// A placement action claims a copy now exists on `target`; pair it
    /// with the `created` notification of the same epoch or flag an
    /// orphaned replica.
    fn admit_create(&mut self, event: &Event, object: u32, target: u16, delta: &mut AuditDelta) {
        let new_copy = self.presence(object, target) != Presence::Present;
        if self
            .take_reset(object, event.t, ResetCause::Created)
            .is_none()
        {
            let detail = format!(
                "a copy of object {object} was created on host {target} without \
                 notifying the directory (orphaned replica)"
            );
            self.violation(
                event,
                object,
                Some(target),
                ViolationKind::OrphanedReplica,
                detail,
            );
        }
        self.set_presence(object, target, Presence::Present);
        delta.created = Some((target, new_copy));
    }
}

/// Parses the host id out of a `host-crash H` / `host-recover H` fault
/// description.
fn parse_host_transition(desc: &str, prefix: &str) -> Option<u16> {
    desc.strip_prefix(prefix)?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CandidateSnapshot, DecisionBranch, DecisionEvent, PlacementActionEvent};

    fn ev(seq: u64, t: f64, kind: EventKind) -> Event {
        Event {
            seq,
            parent: None,
            t,
            queue_depth: 0,
            kind,
        }
    }

    fn reset(seq: u64, t: f64, object: u32, cause: ResetCause) -> Event {
        ev(seq, t, EventKind::CountsReset { object, cause })
    }

    fn action(
        seq: u64,
        t: f64,
        host: u16,
        object: u32,
        kind: PlacementActionKind,
        target: Option<u16>,
    ) -> Event {
        ev(
            seq,
            t,
            EventKind::PlacementAction(PlacementActionEvent {
                host,
                object,
                action: kind,
                target,
                unit_rate: 0.1,
                share: None,
                ratio: None,
                deletion_threshold: 0.01,
                replication_threshold: 0.18,
            }),
        )
    }

    fn decision(seq: u64, t: f64, object: u32, chosen: u16, candidates: &[u16]) -> Event {
        ev(
            seq,
            t,
            EventKind::Decision(DecisionEvent {
                object,
                gateway: 0,
                chosen,
                branch: DecisionBranch::Closest,
                constant: 2.0,
                closest: Some(chosen),
                least: Some(chosen),
                unit_closest: Some(1.0),
                unit_least: Some(1.0),
                candidates: candidates
                    .iter()
                    .map(|&host| CandidateSnapshot {
                        host,
                        rcnt: 1,
                        aff: 1,
                        unit: 1.0,
                        distance: 1,
                    })
                    .collect(),
            }),
        )
    }

    #[test]
    fn notified_drop_and_replicate_are_clean() {
        let mut a = InvariantAuditor::new();
        // Replicate 7 from host 1 to host 2, properly notified.
        a.fold(&reset(1, 60.0, 7, ResetCause::Created));
        let d = a.fold(&action(
            2,
            60.0,
            1,
            7,
            PlacementActionKind::GeoReplicate,
            Some(2),
        ));
        assert_eq!(d.created, Some((2, true)));
        // Later epoch: drop host 2's copy, properly notified.
        a.fold(&reset(3, 120.0, 7, ResetCause::Dropped));
        let d = a.fold(&action(4, 120.0, 2, 7, PlacementActionKind::Drop, None));
        assert_eq!(d.removed, Some(2));
        assert!(a.violations().is_empty(), "{:?}", a.violations());
        assert!(a.is_present(7, 1));
        assert!(!a.is_present(7, 2));
    }

    #[test]
    fn drop_without_notification_is_flagged_with_seq() {
        let mut a = InvariantAuditor::new();
        a.fold(&action(5, 60.0, 3, 9, PlacementActionKind::Drop, None));
        assert_eq!(a.violations().len(), 1);
        let v = &a.violations()[0];
        assert_eq!(v.seq, 5);
        assert_eq!(v.kind, ViolationKind::DropBeforeNotify);
        assert_eq!(v.object, 9);
        assert_eq!(v.host, Some(3));
    }

    #[test]
    fn create_without_notification_is_an_orphan() {
        let mut a = InvariantAuditor::new();
        a.fold(&action(
            8,
            60.0,
            1,
            4,
            PlacementActionKind::GeoReplicate,
            Some(6),
        ));
        assert_eq!(a.violations().len(), 1);
        let v = &a.violations()[0];
        assert_eq!(v.kind, ViolationKind::OrphanedReplica);
        assert_eq!(v.seq, 8);
        assert_eq!(v.host, Some(6));
    }

    #[test]
    fn decision_at_dropped_replica_is_use_after_drop() {
        let mut a = InvariantAuditor::new();
        a.fold(&reset(1, 60.0, 7, ResetCause::Dropped));
        a.fold(&action(2, 60.0, 4, 7, PlacementActionKind::Drop, None));
        a.fold(&decision(3, 61.0, 7, 4, &[4]));
        // Both the candidate listing and the chosen host are flagged.
        assert_eq!(a.violations().len(), 2);
        assert!(a
            .violations()
            .iter()
            .all(|v| v.kind == ViolationKind::UseAfterDrop && v.seq == 3));
    }

    #[test]
    fn served_after_drop_is_tolerated_as_in_flight() {
        let mut a = InvariantAuditor::new();
        a.fold(&reset(1, 60.0, 7, ResetCause::Dropped));
        a.fold(&action(2, 60.0, 4, 7, PlacementActionKind::Drop, None));
        a.fold(&ev(
            3,
            60.2,
            EventKind::RequestServed {
                gateway: 0,
                object: 7,
                host: 4,
                latency: 0.05,
                hops: 2,
            },
        ));
        assert!(a.violations().is_empty());
        // And the tolerated completion does not resurrect the replica.
        assert!(!a.is_present(7, 4));
    }

    #[test]
    fn migration_pairs_created_and_source_outcome() {
        let mut a = InvariantAuditor::new();
        // Migration whose source held affinity > 1: created + affinity.
        a.fold(&reset(1, 60.0, 7, ResetCause::Created));
        a.fold(&reset(2, 60.0, 7, ResetCause::Affinity));
        let d = a.fold(&action(
            3,
            60.0,
            1,
            7,
            PlacementActionKind::GeoMigrate,
            Some(2),
        ));
        assert_eq!(d.migration, Some((1, 2)));
        assert_eq!(d.removed, None, "affinity-reduced source keeps its copy");
        assert!(a.is_present(7, 1));
        // Migration whose source dropped: created + dropped.
        a.fold(&reset(4, 120.0, 7, ResetCause::Created));
        a.fold(&reset(5, 120.0, 7, ResetCause::Dropped));
        let d = a.fold(&action(
            6,
            120.0,
            1,
            7,
            PlacementActionKind::LoadMigrate,
            Some(3),
        ));
        assert_eq!(d.removed, Some(1));
        assert!(!a.is_present(7, 1));
        assert!(a.violations().is_empty(), "{:?}", a.violations());
    }

    #[test]
    fn unaccounted_migration_source_is_a_disagreement() {
        let mut a = InvariantAuditor::new();
        a.fold(&reset(1, 60.0, 7, ResetCause::Created));
        a.fold(&action(
            2,
            60.0,
            1,
            7,
            PlacementActionKind::GeoMigrate,
            Some(2),
        ));
        assert_eq!(a.violations().len(), 1);
        assert_eq!(a.violations()[0].kind, ViolationKind::Disagreement);
    }

    #[test]
    fn replicate_to_existing_holder_is_affinity_transfer_not_new_copy() {
        let mut a = InvariantAuditor::new();
        a.fold(&decision(1, 10.0, 7, 2, &[2]));
        a.fold(&reset(2, 60.0, 7, ResetCause::Created));
        let d = a.fold(&action(
            3,
            60.0,
            1,
            7,
            PlacementActionKind::GeoReplicate,
            Some(2),
        ));
        assert_eq!(d.created, Some((2, false)), "no data moved");
        assert!(a.violations().is_empty());
    }

    #[test]
    fn purge_demotes_down_hosts_without_condemning_them() {
        let mut a = InvariantAuditor::new();
        a.fold(&decision(1, 10.0, 7, 2, &[2, 3]));
        assert_eq!(a.active_replicas(), 2);
        a.fold(&ev(
            2,
            20.0,
            EventKind::Fault {
                desc: "host-crash 2".into(),
            },
        ));
        a.fold(&reset(3, 50.0, 7, ResetCause::Purge));
        assert_eq!(a.active_replicas(), 1, "down host demoted to unknown");
        // The host recovers with its replicas intact and serves again:
        // no violation, presence re-inferred.
        a.fold(&ev(
            4,
            60.0,
            EventKind::Fault {
                desc: "host-recover 2".into(),
            },
        ));
        a.fold(&decision(5, 70.0, 7, 2, &[2, 3]));
        assert!(a.violations().is_empty());
        assert_eq!(a.active_replicas(), 2);
    }

    #[test]
    fn re_replication_installs_without_notification_pairing() {
        let mut a = InvariantAuditor::new();
        let d = a.fold(&ev(
            1,
            90.0,
            EventKind::ReReplication {
                object: 7,
                target: 5,
                elapsed: 30.0,
            },
        ));
        assert_eq!(d.created, Some((5, true)));
        assert!(a.violations().is_empty());
        assert!(a.is_present(7, 5));
    }

    #[test]
    fn stale_notifications_from_earlier_epochs_never_pair() {
        let mut a = InvariantAuditor::new();
        a.fold(&reset(1, 60.0, 7, ResetCause::Dropped));
        // The matching action never arrives (e.g. truncated log); a
        // drop in a *later* epoch must not consume the stale entry.
        a.fold(&action(2, 120.0, 4, 7, PlacementActionKind::Drop, None));
        assert_eq!(a.violations().len(), 1);
        assert_eq!(a.violations()[0].kind, ViolationKind::DropBeforeNotify);
    }

    #[test]
    fn primary_fallback_reinstalls_the_chosen_copy() {
        let mut a = InvariantAuditor::new();
        // Host 4's copy of object 7 is dropped with notification.
        a.fold(&reset(1, 60.0, 7, ResetCause::Dropped));
        a.fold(&action(2, 60.0, 4, 7, PlacementActionKind::Drop, None));
        assert!(!a.is_present(7, 4));
        // No usable replica remains: the platform fetches from the
        // origin and installs at the live primary (host 4) with no
        // placement event — only this fallback decision records it.
        let mut fallback = decision(3, 61.0, 7, 4, &[]);
        if let EventKind::Decision(d) = &mut fallback.kind {
            d.branch = DecisionBranch::PrimaryFallback;
        }
        a.fold(&fallback);
        assert!(a.violations().is_empty(), "{:?}", a.violations());
        assert!(a.is_present(7, 4), "fallback install admits the copy");
        // Later ordinary decisions may legitimately offer host 4.
        a.fold(&decision(4, 62.0, 7, 4, &[4]));
        assert!(a.violations().is_empty(), "{:?}", a.violations());
    }

    #[test]
    fn violation_display_names_seq() {
        let mut a = InvariantAuditor::new();
        a.fold(&action(41, 60.0, 3, 9, PlacementActionKind::Drop, None));
        let text = a.violations()[0].to_string();
        assert!(text.contains("seq 41"), "{text}");
        assert!(text.contains("drop-before-notify"), "{text}");
    }
}
