//! Sequence-order merging of out-of-order event emissions.
//!
//! The sharded simulation loop (`radar-sim`'s `simulate --shards N`)
//! reserves flight-recorder sequence numbers when it hands a redirect
//! to a worker shard, and only emits the finished `Decision` event when
//! the shard's answer is committed. Meanwhile the sequencer keeps
//! emitting inline events with *later* sequence numbers. Observers,
//! however, are promised the same stream a serial run produces: strictly
//! increasing sequence numbers, parents before children.
//!
//! [`EventReorderBuffer`] restores that promise. Emissions are pushed in
//! whatever order they complete; [`pop_ready`](EventReorderBuffer::pop_ready)
//! releases them in exact sequence order, holding back any event whose
//! predecessors are still outstanding. Because every reserved number is
//! eventually emitted exactly once, the buffer drains completely at each
//! epoch barrier — the merged per-shard streams form one causally
//! ordered JSONL log, byte-identical to the serial run's.

use std::collections::BTreeMap;

use crate::Event;

/// Re-sequencing buffer between out-of-order event producers and
/// in-order observers. Sequence numbers are 1-based, matching the
/// platform's flight-recorder counter.
///
/// ```
/// use radar_obs::{Event, EventKind, EventReorderBuffer};
///
/// let ev = |seq| Event {
///     seq,
///     parent: None,
///     t: 0.0,
///     queue_depth: 0,
///     kind: EventKind::RequestArrived { gateway: 0, object: 0 },
/// };
/// let mut buf = EventReorderBuffer::new();
/// buf.push(ev(2)); // completed early, held back
/// assert!(buf.pop_ready().is_none());
/// buf.push(ev(1));
/// assert_eq!(buf.pop_ready().unwrap().seq, 1);
/// assert_eq!(buf.pop_ready().unwrap().seq, 2);
/// assert!(buf.is_empty());
/// ```
#[derive(Debug)]
pub struct EventReorderBuffer {
    /// The next sequence number to release.
    next: u64,
    /// Events that completed ahead of a still-outstanding predecessor.
    held: BTreeMap<u64, Event>,
    /// High-water mark of `held.len()`, observed after each push.
    max_held: usize,
    /// Completed reorder episodes: times the buffer returned to empty
    /// after holding at least one out-of-order event.
    drains: u64,
    /// An out-of-order event is currently (or was, since the last
    /// drain) held back — arms the next drain count.
    reordering: bool,
}

impl EventReorderBuffer {
    /// Creates an empty buffer expecting sequence number 1 first.
    pub fn new() -> Self {
        Self {
            next: 1,
            held: BTreeMap::new(),
            max_held: 0,
            drains: 0,
            reordering: false,
        }
    }

    /// Accepts one completed event, in any order relative to its
    /// neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `event.seq` was already released or pushed — each
    /// sequence number must be emitted exactly once.
    pub fn push(&mut self, event: Event) {
        assert!(
            event.seq >= self.next,
            "event {} was already released (next expected is {})",
            event.seq,
            self.next
        );
        if event.seq > self.next {
            // Pushed ahead of an outstanding predecessor: this episode
            // will require reordering before the buffer drains.
            self.reordering = true;
        }
        let clash = self.held.insert(event.seq, event);
        assert!(
            clash.is_none(),
            "duplicate emission for an event sequence number"
        );
        self.max_held = self.max_held.max(self.held.len());
    }

    /// Accepts a whole batch-reserved run of emissions at once.
    ///
    /// The sharded loop's batched hand-off reserves runs of consecutive
    /// sequence numbers in one block and commits them together; this is
    /// the matching entry point. The run must be seq-contiguous — that
    /// contiguity is the invariant bulk reservation relies on, so a gap
    /// here means the batch was assembled wrong.
    ///
    /// # Panics
    ///
    /// Panics if the run's sequence numbers are not consecutive, or on
    /// any condition [`push`](Self::push) panics on.
    pub fn push_run(&mut self, events: impl IntoIterator<Item = Event>) {
        let mut expected = None;
        for event in events {
            if let Some(seq) = expected {
                assert_eq!(event.seq, seq, "batch-reserved run is not contiguous");
            }
            expected = Some(event.seq + 1);
            self.push(event);
        }
    }

    /// Releases the next event in sequence order, or `None` while a
    /// predecessor is still outstanding. Call in a loop after each
    /// [`push`](Self::push) to drain everything that became ready.
    pub fn pop_ready(&mut self) -> Option<Event> {
        let event = self.held.remove(&self.next)?;
        self.next += 1;
        if self.held.is_empty() && self.reordering {
            self.drains += 1;
            self.reordering = false;
        }
        Some(event)
    }

    /// Number of events held back waiting on a predecessor.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// `true` when nothing is held back — every pushed event has been
    /// released in order.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// The sequence number the buffer will release next.
    pub fn next_expected(&self) -> u64 {
        self.next
    }

    /// High-water mark of events held at once (including the one just
    /// pushed, so an in-order stream reports 1).
    pub fn max_held(&self) -> usize {
        self.max_held
    }

    /// Completed reorder episodes: the number of times the buffer
    /// fully drained after holding at least one event back for an
    /// outstanding predecessor. An in-order stream reports 0.
    pub fn drains(&self) -> u64 {
        self.drains
    }
}

impl Default for EventReorderBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            parent: (seq > 1).then(|| seq - 1),
            t: seq as f64,
            queue_depth: 0,
            kind: EventKind::RequestArrived {
                gateway: 0,
                object: seq as u32,
            },
        }
    }

    #[test]
    fn in_order_stream_passes_straight_through() {
        let mut buf = EventReorderBuffer::new();
        for seq in 1..=5 {
            buf.push(ev(seq));
            assert_eq!(buf.pop_ready().unwrap().seq, seq);
            assert!(buf.pop_ready().is_none());
        }
        assert!(buf.is_empty());
        assert_eq!(buf.next_expected(), 6);
    }

    #[test]
    fn out_of_order_emissions_release_in_sequence() {
        let mut buf = EventReorderBuffer::new();
        for seq in [3, 5, 2, 1, 4] {
            buf.push(ev(seq));
        }
        let released: Vec<u64> = std::iter::from_fn(|| buf.pop_ready().map(|e| e.seq)).collect();
        assert_eq!(released, vec![1, 2, 3, 4, 5]);
        assert!(buf.is_empty());
    }

    #[test]
    fn gap_holds_back_later_events() {
        let mut buf = EventReorderBuffer::new();
        buf.push(ev(1));
        buf.push(ev(3));
        assert_eq!(buf.pop_ready().unwrap().seq, 1);
        assert!(buf.pop_ready().is_none(), "2 is outstanding");
        assert_eq!(buf.len(), 1);
        buf.push(ev(2));
        assert_eq!(buf.pop_ready().unwrap().seq, 2);
        assert_eq!(buf.pop_ready().unwrap().seq, 3);
    }

    #[test]
    fn gap_at_capacity_holds_a_full_ring_of_events() {
        // A single outstanding predecessor can force the buffer to
        // hold a flight-recorder ring's worth of later events; nothing
        // may be released (or lost) until the gap fills.
        const CAPACITY: u64 = 4096;
        let mut buf = EventReorderBuffer::new();
        for seq in 2..=CAPACITY {
            buf.push(ev(seq));
            assert!(buf.pop_ready().is_none(), "released across the gap");
        }
        assert_eq!(buf.len(), (CAPACITY - 1) as usize);
        buf.push(ev(1));
        assert_eq!(buf.max_held(), CAPACITY as usize);
        let released: Vec<u64> = std::iter::from_fn(|| buf.pop_ready().map(|e| e.seq)).collect();
        assert_eq!(released.len(), CAPACITY as usize);
        assert!(released.windows(2).all(|w| w[1] == w[0] + 1));
        assert!(buf.is_empty());
        assert_eq!(buf.drains(), 1, "one reorder episode");
    }

    #[test]
    fn out_of_order_release_across_an_epoch_barrier() {
        // The sharded loop drains the buffer at every epoch barrier
        // and keeps using the same buffer afterwards: sequence numbers
        // keep climbing, and a pre-barrier seq arriving late must
        // still panic rather than silently reorder across the epoch.
        let mut buf = EventReorderBuffer::new();
        // Epoch 1: seqs 1..=4 complete out of order, then the barrier
        // requires a full drain.
        for seq in [2, 4, 1, 3] {
            buf.push(ev(seq));
        }
        while buf.pop_ready().is_some() {}
        assert!(buf.is_empty(), "barrier requires a drained buffer");
        assert_eq!(buf.drains(), 1);
        assert_eq!(buf.next_expected(), 5);
        // Epoch 2: later seqs reorder independently of epoch 1.
        for seq in [6, 5] {
            buf.push(ev(seq));
        }
        let released: Vec<u64> = std::iter::from_fn(|| buf.pop_ready().map(|e| e.seq)).collect();
        assert_eq!(released, vec![5, 6]);
        assert_eq!(buf.drains(), 2);
        assert_eq!(buf.max_held(), 4, "epoch-1 backlog was the high water");
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn pre_barrier_sequence_arriving_after_the_barrier_panics() {
        let mut buf = EventReorderBuffer::new();
        buf.push(ev(1));
        buf.push(ev(2));
        while buf.pop_ready().is_some() {}
        // A worker echoing an epoch-1 seq after the drain is a bug the
        // buffer must catch, not reorder.
        buf.push(ev(2));
    }

    #[test]
    fn reserved_but_never_filled_seq_stalls_without_corruption() {
        // Seq 1 was reserved by the sequencer but its decision never
        // committed (the bug the sharded loop's barrier debug_assert
        // exists to catch). The buffer must stall — releasing nothing,
        // losing nothing — and stay safe to drop with events held.
        let mut buf = EventReorderBuffer::new();
        for seq in [2, 3, 4] {
            buf.push(ev(seq));
        }
        for _ in 0..3 {
            assert!(buf.pop_ready().is_none(), "released past the hole");
        }
        assert_eq!(buf.len(), 3, "no event was dropped");
        assert_eq!(buf.next_expected(), 1, "still waiting on the hole");
        assert!(!buf.is_empty());
        assert_eq!(buf.drains(), 0, "a stalled episode never drains");
        drop(buf); // held events are simply discarded, no panic
    }

    #[test]
    fn batch_reserved_run_releases_in_order() {
        // The sequencer reserves seqs 2..=4 for one batched defer run,
        // emits 1 inline, keeps going (5), and the run commits late and
        // all at once. Observers must still see 1..=5 in order.
        let mut buf = EventReorderBuffer::new();
        buf.push(ev(1));
        assert_eq!(buf.pop_ready().unwrap().seq, 1);
        buf.push(ev(5));
        assert!(buf.pop_ready().is_none(), "run 2..=4 is outstanding");
        buf.push_run([ev(2), ev(3), ev(4)]);
        let released: Vec<u64> = std::iter::from_fn(|| buf.pop_ready().map(|e| e.seq)).collect();
        assert_eq!(released, vec![2, 3, 4, 5]);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "not contiguous")]
    fn non_contiguous_run_panics() {
        let mut buf = EventReorderBuffer::new();
        buf.push_run([ev(2), ev(4)]);
    }

    #[test]
    fn stats_stay_zero_for_in_order_streams() {
        let mut buf = EventReorderBuffer::new();
        for seq in 1..=8 {
            buf.push(ev(seq));
            buf.pop_ready();
        }
        assert_eq!(buf.drains(), 0);
        assert_eq!(buf.max_held(), 1);
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn replaying_a_released_sequence_panics() {
        let mut buf = EventReorderBuffer::new();
        buf.push(ev(1));
        buf.pop_ready();
        buf.push(ev(1));
    }

    #[test]
    #[should_panic(expected = "duplicate emission")]
    fn duplicate_held_sequence_panics() {
        let mut buf = EventReorderBuffer::new();
        buf.push(ev(2));
        buf.push(ev(2));
    }
}
