//! Sequence-order merging of out-of-order event emissions.
//!
//! The sharded simulation loop (`radar-sim`'s `simulate --shards N`)
//! reserves flight-recorder sequence numbers when it hands a redirect
//! to a worker shard, and only emits the finished `Decision` event when
//! the shard's answer is committed. Meanwhile the sequencer keeps
//! emitting inline events with *later* sequence numbers. Observers,
//! however, are promised the same stream a serial run produces: strictly
//! increasing sequence numbers, parents before children.
//!
//! [`EventReorderBuffer`] restores that promise. Emissions are pushed in
//! whatever order they complete; [`pop_ready`](EventReorderBuffer::pop_ready)
//! releases them in exact sequence order, holding back any event whose
//! predecessors are still outstanding. Because every reserved number is
//! eventually emitted exactly once, the buffer drains completely at each
//! epoch barrier — the merged per-shard streams form one causally
//! ordered JSONL log, byte-identical to the serial run's.

use std::collections::BTreeMap;

use crate::Event;

/// Re-sequencing buffer between out-of-order event producers and
/// in-order observers. Sequence numbers are 1-based, matching the
/// platform's flight-recorder counter.
///
/// ```
/// use radar_obs::{Event, EventKind, EventReorderBuffer};
///
/// let ev = |seq| Event {
///     seq,
///     parent: None,
///     t: 0.0,
///     queue_depth: 0,
///     kind: EventKind::RequestArrived { gateway: 0, object: 0 },
/// };
/// let mut buf = EventReorderBuffer::new();
/// buf.push(ev(2)); // completed early, held back
/// assert!(buf.pop_ready().is_none());
/// buf.push(ev(1));
/// assert_eq!(buf.pop_ready().unwrap().seq, 1);
/// assert_eq!(buf.pop_ready().unwrap().seq, 2);
/// assert!(buf.is_empty());
/// ```
#[derive(Debug)]
pub struct EventReorderBuffer {
    /// The next sequence number to release.
    next: u64,
    /// Events that completed ahead of a still-outstanding predecessor.
    held: BTreeMap<u64, Event>,
}

impl EventReorderBuffer {
    /// Creates an empty buffer expecting sequence number 1 first.
    pub fn new() -> Self {
        Self {
            next: 1,
            held: BTreeMap::new(),
        }
    }

    /// Accepts one completed event, in any order relative to its
    /// neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `event.seq` was already released or pushed — each
    /// sequence number must be emitted exactly once.
    pub fn push(&mut self, event: Event) {
        assert!(
            event.seq >= self.next,
            "event {} was already released (next expected is {})",
            event.seq,
            self.next
        );
        let clash = self.held.insert(event.seq, event);
        assert!(
            clash.is_none(),
            "duplicate emission for an event sequence number"
        );
    }

    /// Releases the next event in sequence order, or `None` while a
    /// predecessor is still outstanding. Call in a loop after each
    /// [`push`](Self::push) to drain everything that became ready.
    pub fn pop_ready(&mut self) -> Option<Event> {
        let event = self.held.remove(&self.next)?;
        self.next += 1;
        Some(event)
    }

    /// Number of events held back waiting on a predecessor.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// `true` when nothing is held back — every pushed event has been
    /// released in order.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// The sequence number the buffer will release next.
    pub fn next_expected(&self) -> u64 {
        self.next
    }
}

impl Default for EventReorderBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            parent: (seq > 1).then(|| seq - 1),
            t: seq as f64,
            queue_depth: 0,
            kind: EventKind::RequestArrived {
                gateway: 0,
                object: seq as u32,
            },
        }
    }

    #[test]
    fn in_order_stream_passes_straight_through() {
        let mut buf = EventReorderBuffer::new();
        for seq in 1..=5 {
            buf.push(ev(seq));
            assert_eq!(buf.pop_ready().unwrap().seq, seq);
            assert!(buf.pop_ready().is_none());
        }
        assert!(buf.is_empty());
        assert_eq!(buf.next_expected(), 6);
    }

    #[test]
    fn out_of_order_emissions_release_in_sequence() {
        let mut buf = EventReorderBuffer::new();
        for seq in [3, 5, 2, 1, 4] {
            buf.push(ev(seq));
        }
        let released: Vec<u64> = std::iter::from_fn(|| buf.pop_ready().map(|e| e.seq)).collect();
        assert_eq!(released, vec![1, 2, 3, 4, 5]);
        assert!(buf.is_empty());
    }

    #[test]
    fn gap_holds_back_later_events() {
        let mut buf = EventReorderBuffer::new();
        buf.push(ev(1));
        buf.push(ev(3));
        assert_eq!(buf.pop_ready().unwrap().seq, 1);
        assert!(buf.pop_ready().is_none(), "2 is outstanding");
        assert_eq!(buf.len(), 1);
        buf.push(ev(2));
        assert_eq!(buf.pop_ready().unwrap().seq, 2);
        assert_eq!(buf.pop_ready().unwrap().seq, 3);
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn replaying_a_released_sequence_panics() {
        let mut buf = EventReorderBuffer::new();
        buf.push(ev(1));
        buf.pop_ready();
        buf.push(ev(1));
    }

    #[test]
    #[should_panic(expected = "duplicate emission")]
    fn duplicate_held_sequence_panics() {
        let mut buf = EventReorderBuffer::new();
        buf.push(ev(2));
        buf.push(ev(2));
    }
}
