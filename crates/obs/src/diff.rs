//! Structural comparison of two flight-recorder event logs.
//!
//! Seeded runs serialize byte-identically, so the first divergence
//! between two logs pinpoints the first behavioural difference between
//! two runs (or two builds). Events are compared by their serialized
//! JSONL form — the canonical representation — so `NaN` payloads and
//! float formatting cannot produce false positives.

use crate::event::Event;

/// The result of diffing two event sequences.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffOutcome {
    /// Every event matched, position by position.
    Identical {
        /// How many events each log contained.
        events: usize,
    },
    /// The logs diverge.
    Divergent {
        /// 0-based position of the first difference.
        index: usize,
        /// Sequence number at the divergence (from the left event when
        /// present, otherwise the right).
        seq: u64,
        /// The left log's event at the divergence (`None` when the left
        /// log ended first; boxed to keep the enum small).
        left: Option<Box<Event>>,
        /// The right log's event at the divergence (`None` when the
        /// right log ended first).
        right: Option<Box<Event>>,
    },
}

/// Compares two event sequences position by position and reports the
/// first divergence, if any.
pub fn diff_events(a: &[Event], b: &[Event]) -> DiffOutcome {
    let shared = a.len().min(b.len());
    for i in 0..shared {
        if a[i].to_json_line() != b[i].to_json_line() {
            return DiffOutcome::Divergent {
                index: i,
                seq: a[i].seq,
                left: Some(Box::new(a[i].clone())),
                right: Some(Box::new(b[i].clone())),
            };
        }
    }
    if a.len() != b.len() {
        let left = a.get(shared).cloned().map(Box::new);
        let right = b.get(shared).cloned().map(Box::new);
        let seq = left.as_ref().or(right.as_ref()).map(|e| e.seq).unwrap_or(0);
        return DiffOutcome::Divergent {
            index: shared,
            seq,
            left,
            right,
        };
    }
    DiffOutcome::Identical { events: shared }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn fault(seq: u64, desc: &str) -> Event {
        Event {
            seq,
            parent: None,
            t: seq as f64,
            queue_depth: 0,
            kind: EventKind::Fault { desc: desc.into() },
        }
    }

    #[test]
    fn identical_logs_match() {
        let a = vec![fault(1, "x"), fault(2, "y")];
        assert_eq!(
            diff_events(&a, &a.clone()),
            DiffOutcome::Identical { events: 2 }
        );
        assert_eq!(diff_events(&[], &[]), DiffOutcome::Identical { events: 0 });
    }

    #[test]
    fn first_payload_divergence_reported() {
        let a = vec![fault(1, "x"), fault(2, "y"), fault(3, "z")];
        let b = vec![fault(1, "x"), fault(2, "Y"), fault(3, "z")];
        match diff_events(&a, &b) {
            DiffOutcome::Divergent {
                index,
                seq,
                left,
                right,
            } => {
                assert_eq!(index, 1);
                assert_eq!(seq, 2);
                assert_eq!(left.unwrap().seq, 2);
                assert_eq!(right.unwrap().seq, 2);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn truncated_log_diverges_at_the_missing_event() {
        let a = vec![fault(1, "x"), fault(2, "y")];
        let b = vec![fault(1, "x")];
        match diff_events(&a, &b) {
            DiffOutcome::Divergent {
                index,
                seq,
                left,
                right,
            } => {
                assert_eq!(index, 1);
                assert_eq!(seq, 2);
                assert!(left.is_some());
                assert!(right.is_none());
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn nan_payloads_do_not_false_positive() {
        // A non-finite float serializes as null and parses back as NaN;
        // comparing serialized forms keeps such logs equal to themselves.
        let mut e = fault(1, "x");
        e.t = f64::NAN;
        let a = vec![e.clone()];
        let b = vec![e];
        assert_eq!(diff_events(&a, &b), DiffOutcome::Identical { events: 1 });
    }
}
