//! JSONL (one JSON object per line) serialization of [`Event`]s.
//!
//! The writer emits keys in a fixed order and uses Rust's shortest-
//! roundtrip `f64` formatting, so a seeded run produces byte-identical
//! output across invocations. The reader is a minimal, dependency-free
//! JSON parser covering exactly the grammar the writer emits (which is
//! full RFC 8259 minus nothing we use: objects, arrays, strings with
//! escapes, numbers, booleans, null).

use crate::event::{
    CandidateSnapshot, ConsistencyClass, DecisionBranch, DecisionEvent, Event, EventKind,
    FailReason, PlacementActionEvent, PlacementActionKind, ProviderUpdateEvent, ResetCause,
    UpdateDeliveredEvent,
};
use std::fmt;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------
//
// All serialization goes through `write!` into a caller-owned `String`
// (`fmt::Write` on `String` is infallible), so a recorder that reuses
// its line buffer serializes events with zero heap allocations.

fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Interned tags contain no characters needing escapes, so they skip
/// the per-character scan.
fn push_tag(out: &mut String, tag: &'static str) {
    out.push('"');
    out.push_str(tag);
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

impl Event {
    /// Serializes the event as one JSON object (no trailing newline).
    ///
    /// Key order is fixed per event type, so identical event sequences
    /// serialize byte-identically. Convenience wrapper around
    /// [`write_json_line`](Self::write_json_line).
    pub fn to_json_line(&self) -> String {
        let mut o = String::with_capacity(128);
        self.write_json_line(&mut o);
        o
    }

    /// Serializes the event into a caller-owned buffer (appended; no
    /// trailing newline). Reusing the buffer across events makes the
    /// serialization path allocation-free once its capacity plateaus.
    pub fn write_json_line(&self, o: &mut String) {
        let _ = write!(o, "{{\"seq\":{},\"t\":", self.seq);
        push_f64(o, self.t);
        o.push_str(",\"parent\":");
        push_opt_u64(o, self.parent);
        let _ = write!(o, ",\"qd\":{},\"type\":\"", self.queue_depth);
        o.push_str(self.type_name());
        o.push('"');
        match &self.kind {
            EventKind::RequestArrived { gateway, object } => {
                let _ = write!(o, ",\"gateway\":{gateway},\"object\":{object}");
            }
            EventKind::Decision(d) => {
                let _ = write!(
                    o,
                    ",\"object\":{},\"gateway\":{},\"chosen\":{},\"branch\":",
                    d.object, d.gateway, d.chosen
                );
                push_tag(o, d.branch.as_str());
                o.push_str(",\"constant\":");
                push_f64(o, d.constant);
                o.push_str(",\"closest\":");
                push_opt_u64(o, d.closest.map(u64::from));
                o.push_str(",\"least\":");
                push_opt_u64(o, d.least.map(u64::from));
                o.push_str(",\"unit_closest\":");
                push_opt_f64(o, d.unit_closest);
                o.push_str(",\"unit_least\":");
                push_opt_f64(o, d.unit_least);
                o.push_str(",\"candidates\":[");
                for (i, c) in d.candidates.iter().enumerate() {
                    if i > 0 {
                        o.push(',');
                    }
                    let _ = write!(
                        o,
                        "{{\"host\":{},\"rcnt\":{},\"aff\":{},\"unit\":",
                        c.host, c.rcnt, c.aff
                    );
                    push_f64(o, c.unit);
                    let _ = write!(o, ",\"distance\":{}}}", c.distance);
                }
                o.push(']');
            }
            EventKind::RequestServed {
                gateway,
                object,
                host,
                latency,
                hops,
            } => {
                let _ = write!(
                    o,
                    ",\"gateway\":{gateway},\"object\":{object},\"host\":{host},\"latency\":"
                );
                push_f64(o, *latency);
                let _ = write!(o, ",\"hops\":{hops}");
            }
            EventKind::RequestFailed {
                gateway,
                object,
                reason,
            } => {
                let _ = write!(o, ",\"gateway\":{gateway},\"object\":{object},\"reason\":");
                push_tag(o, reason.as_str());
            }
            EventKind::PlacementAction(p) => {
                let _ = write!(
                    o,
                    ",\"host\":{},\"object\":{},\"action\":",
                    p.host, p.object
                );
                push_tag(o, p.action.as_str());
                o.push_str(",\"target\":");
                push_opt_u64(o, p.target.map(u64::from));
                o.push_str(",\"unit_rate\":");
                push_f64(o, p.unit_rate);
                o.push_str(",\"share\":");
                push_opt_f64(o, p.share);
                o.push_str(",\"ratio\":");
                push_opt_f64(o, p.ratio);
                o.push_str(",\"u\":");
                push_f64(o, p.deletion_threshold);
                o.push_str(",\"m\":");
                push_f64(o, p.replication_threshold);
            }
            EventKind::CountsReset { object, cause } => {
                let _ = write!(o, ",\"object\":{object},\"cause\":");
                push_tag(o, cause.as_str());
            }
            EventKind::Fault { desc } => {
                o.push_str(",\"desc\":");
                push_str_escaped(o, desc);
            }
            EventKind::ReReplication {
                object,
                target,
                elapsed,
            } => {
                let _ = write!(o, ",\"object\":{object},\"target\":{target},\"elapsed\":");
                push_f64(o, *elapsed);
            }
            EventKind::ProviderUpdate(u) => {
                let _ = write!(o, ",\"object\":{},\"class\":", u.object);
                push_tag(o, u.class.as_str());
                let _ = write!(
                    o,
                    ",\"version\":{},\"primary\":{},\"targets\":{},\
                     \"bytes_hops\":{},\"reassigned\":{}",
                    u.version, u.primary, u.targets, u.bytes_hops, u.reassigned
                );
            }
            EventKind::UpdateDelivered(u) => {
                let _ = write!(o, ",\"object\":{},\"host\":{},\"class\":", u.object, u.host);
                push_tag(o, u.class.as_str());
                let _ = write!(o, ",\"version\":{},\"lag\":", u.version);
                push_f64(o, u.lag);
                let _ = write!(o, ",\"wasted\":{}", u.wasted);
            }
        }
        o.push('}');
    }
}

/// Per-severity tally of events the recorder ring evicted before the
/// log was written, serialized as the optional final
/// `{"type":"evictions",…}` trailer line of a JSONL document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionSummary {
    /// Routine events (request/decision/served) evicted.
    pub routine: u64,
    /// Notable events (counts-reset) evicted.
    pub notable: u64,
    /// Critical events (failed/placement/fault/re-replication) evicted.
    pub critical: u64,
}

impl EvictionSummary {
    /// Total events evicted across all severities.
    pub fn total(&self) -> u64 {
        self.routine + self.notable + self.critical
    }

    /// Serializes the trailer as one JSON object (no trailing newline),
    /// with the same fixed key order every time.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"type\":\"evictions\",\"routine\":{},\"notable\":{},\"critical\":{}}}",
            self.routine, self.notable, self.critical
        )
    }
}

/// Reorder-buffer statistics from a sharded run, serialized as an
/// optional `{"type":"reorder",…}` trailer line of a JSONL document.
///
/// These are *operational* metadata, like wall-clock time: the event
/// stream itself is byte-identical to a serial run's, but how hard the
/// [`crate::EventReorderBuffer`] had to work to make it so depends on
/// thread timing. Serial runs never write this trailer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Total recorder sequence numbers reserved for deferred decisions.
    pub reserved: u64,
    /// Peak count of reserved seqs outstanding at once.
    pub max_in_flight: u64,
    /// High-water mark of events held by the reorder buffer.
    pub max_held: u64,
    /// Completed reorder episodes (buffer drained after holding an
    /// out-of-order event).
    pub drains: u64,
}

impl ReorderStats {
    /// Serializes the trailer as one JSON object (no trailing newline),
    /// with the same fixed key order every time.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"type\":\"reorder\",\"reserved\":{},\"max_in_flight\":{},\"max_held\":{},\"drains\":{}}}",
            self.reserved, self.max_in_flight, self.max_held, self.drains
        )
    }
}

/// A parsed JSONL document: the events plus the eviction trailer, when
/// the recorder ring lost anything before the log was written, and the
/// reorder trailer, when the run was sharded.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLog {
    /// The recorded events, in file order.
    pub events: Vec<Event>,
    /// The `{"type":"evictions",…}` trailer, if present.
    pub evictions: Option<EvictionSummary>,
    /// The `{"type":"reorder",…}` trailer, if present (sharded runs).
    pub reorder: Option<ReorderStats>,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Error from parsing a JSONL event line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Minimal JSON document model for the reader side.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Val>),
    Obj(Vec<(String, Val)>),
}

impl Val {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Val> {
        match self {
            Val::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn u64(&self) -> Option<u64> {
        match self {
            Val::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Val, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => self.literal("true", Val::Bool(true)),
            Some(b'f') => self.literal("false", Val::Bool(false)),
            Some(b'n') => self.literal("null", Val::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, val: Val) -> Result<Val, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Val, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        match text.parse::<f64>() {
            Ok(v) => Ok(Val::Num(v)),
            Err(_) => err(format!("bad number {text:?}")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return err("bad \\u escape"),
                            }
                        }
                        _ => return err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| ParseError("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Val, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                _ => return err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Val, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Val::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Val::Obj(fields));
                }
                _ => return err("expected ',' or '}'"),
            }
        }
    }
}

fn need<'a>(v: &'a Val, key: &str) -> Result<&'a Val, ParseError> {
    match v.get(key) {
        Some(f) => Ok(f),
        None => err(format!("missing field {key:?}")),
    }
}

fn need_u64(v: &Val, key: &str) -> Result<u64, ParseError> {
    match need(v, key)?.u64() {
        Some(n) => Ok(n),
        None => err(format!("field {key:?} is not an unsigned integer")),
    }
}

fn need_u32(v: &Val, key: &str) -> Result<u32, ParseError> {
    u32::try_from(need_u64(v, key)?).map_err(|_| ParseError(format!("field {key:?} overflows u32")))
}

fn need_u16(v: &Val, key: &str) -> Result<u16, ParseError> {
    u16::try_from(need_u64(v, key)?).map_err(|_| ParseError(format!("field {key:?} overflows u16")))
}

fn need_f64(v: &Val, key: &str) -> Result<f64, ParseError> {
    match need(v, key)? {
        Val::Num(n) => Ok(*n),
        Val::Null => Ok(f64::NAN),
        _ => err(format!("field {key:?} is not a number")),
    }
}

fn need_bool(v: &Val, key: &str) -> Result<bool, ParseError> {
    match need(v, key)? {
        Val::Bool(b) => Ok(*b),
        _ => err(format!("field {key:?} is not a boolean")),
    }
}

fn need_str(v: &Val, key: &str) -> Result<String, ParseError> {
    match need(v, key)?.str() {
        Some(s) => Ok(s.to_string()),
        None => err(format!("field {key:?} is not a string")),
    }
}

/// Decodes an interned-tag field, rejecting tags outside the closed
/// vocabulary so a corrupted log fails loudly instead of folding into a
/// catch-all value.
fn need_tag<T>(v: &Val, key: &str, parse: fn(&str) -> Option<T>) -> Result<T, ParseError> {
    let s = match need(v, key)?.str() {
        Some(s) => s,
        None => return err(format!("field {key:?} is not a string")),
    };
    match parse(s) {
        Some(t) => Ok(t),
        None => err(format!("field {key:?} has unknown tag {s:?}")),
    }
}

fn opt_u16(v: &Val, key: &str) -> Result<Option<u16>, ParseError> {
    match v.get(key) {
        None | Some(Val::Null) => Ok(None),
        Some(f) => match f.u64() {
            Some(n) => u16::try_from(n)
                .map(Some)
                .map_err(|_| ParseError(format!("field {key:?} overflows u16"))),
            None => err(format!("field {key:?} is not an unsigned integer")),
        },
    }
}

fn opt_f64(v: &Val, key: &str) -> Result<Option<f64>, ParseError> {
    match v.get(key) {
        None | Some(Val::Null) => Ok(None),
        Some(Val::Num(n)) => Ok(Some(*n)),
        Some(_) => err(format!("field {key:?} is not a number")),
    }
}

impl Event {
    /// Parses one JSONL line produced by
    /// [`to_json_line`](Self::to_json_line).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first malformed or
    /// missing field.
    pub fn from_json_line(line: &str) -> Result<Self, ParseError> {
        Self::from_val(&parse_root(line)?)
    }

    /// Builds an event from an already-parsed JSON object.
    fn from_val(root: &Val) -> Result<Self, ParseError> {
        let root = root.clone();
        let seq = need_u64(&root, "seq")?;
        let t = need_f64(&root, "t")?;
        let parent = match root.get("parent") {
            None | Some(Val::Null) => None,
            Some(f) => match f.u64() {
                Some(n) => Some(n),
                None => return err("field \"parent\" is not an unsigned integer"),
            },
        };
        let queue_depth = need_u32(&root, "qd")?;
        let kind_tag = need_str(&root, "type")?;
        let kind = match kind_tag.as_str() {
            "request" => EventKind::RequestArrived {
                gateway: need_u16(&root, "gateway")?,
                object: need_u32(&root, "object")?,
            },
            "decision" => {
                let raw = match need(&root, "candidates")? {
                    Val::Arr(items) => items.clone(),
                    _ => return err("field \"candidates\" is not an array"),
                };
                let mut candidates = Vec::with_capacity(raw.len());
                for c in &raw {
                    candidates.push(CandidateSnapshot {
                        host: need_u16(c, "host")?,
                        rcnt: need_u64(c, "rcnt")?,
                        aff: need_u32(c, "aff")?,
                        unit: need_f64(c, "unit")?,
                        distance: need_u32(c, "distance")?,
                    });
                }
                EventKind::Decision(DecisionEvent {
                    object: need_u32(&root, "object")?,
                    gateway: need_u16(&root, "gateway")?,
                    chosen: need_u16(&root, "chosen")?,
                    branch: need_tag(&root, "branch", DecisionBranch::from_tag)?,
                    constant: need_f64(&root, "constant")?,
                    closest: opt_u16(&root, "closest")?,
                    least: opt_u16(&root, "least")?,
                    unit_closest: opt_f64(&root, "unit_closest")?,
                    unit_least: opt_f64(&root, "unit_least")?,
                    candidates,
                })
            }
            "served" => EventKind::RequestServed {
                gateway: need_u16(&root, "gateway")?,
                object: need_u32(&root, "object")?,
                host: need_u16(&root, "host")?,
                latency: need_f64(&root, "latency")?,
                hops: need_u32(&root, "hops")?,
            },
            "failed" => EventKind::RequestFailed {
                gateway: need_u16(&root, "gateway")?,
                object: need_u32(&root, "object")?,
                reason: need_tag(&root, "reason", FailReason::from_tag)?,
            },
            "placement" => EventKind::PlacementAction(PlacementActionEvent {
                host: need_u16(&root, "host")?,
                object: need_u32(&root, "object")?,
                action: need_tag(&root, "action", PlacementActionKind::from_tag)?,
                target: opt_u16(&root, "target")?,
                unit_rate: need_f64(&root, "unit_rate")?,
                share: opt_f64(&root, "share")?,
                ratio: opt_f64(&root, "ratio")?,
                deletion_threshold: need_f64(&root, "u")?,
                replication_threshold: need_f64(&root, "m")?,
            }),
            "counts-reset" => EventKind::CountsReset {
                object: need_u32(&root, "object")?,
                cause: need_tag(&root, "cause", ResetCause::from_tag)?,
            },
            "fault" => EventKind::Fault {
                desc: need_str(&root, "desc")?,
            },
            "re-replication" => EventKind::ReReplication {
                object: need_u32(&root, "object")?,
                target: need_u16(&root, "target")?,
                elapsed: need_f64(&root, "elapsed")?,
            },
            "provider-update" => EventKind::ProviderUpdate(ProviderUpdateEvent {
                object: need_u32(&root, "object")?,
                class: need_tag(&root, "class", ConsistencyClass::from_tag)?,
                version: need_u64(&root, "version")?,
                primary: need_u16(&root, "primary")?,
                targets: need_u16(&root, "targets")?,
                bytes_hops: need_u64(&root, "bytes_hops")?,
                reassigned: need_bool(&root, "reassigned")?,
            }),
            "update-delivered" => EventKind::UpdateDelivered(UpdateDeliveredEvent {
                object: need_u32(&root, "object")?,
                host: need_u16(&root, "host")?,
                class: need_tag(&root, "class", ConsistencyClass::from_tag)?,
                version: need_u64(&root, "version")?,
                lag: need_f64(&root, "lag")?,
                wasted: need_bool(&root, "wasted")?,
            }),
            other => return err(format!("unknown event type {other:?}")),
        };
        Ok(Event {
            seq,
            parent,
            t,
            queue_depth,
            kind,
        })
    }
}

/// Parses one line into the JSON document model, rejecting trailing
/// garbage.
fn parse_root(line: &str) -> Result<Val, ParseError> {
    let mut p = Parser::new(line);
    let root = p.value()?;
    p.skip_ws();
    if p.pos != line.len() {
        return err("trailing garbage after JSON object");
    }
    Ok(root)
}

/// Parses a whole JSONL document (blank lines skipped), reporting the
/// first error with its 1-based line number. An `evictions` trailer
/// line, if present, is parsed and discarded; use [`parse_jsonl_log`]
/// to keep it.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, ParseError> {
    parse_jsonl_log(text).map(|log| log.events)
}

/// Parses a whole JSONL document into an [`EventLog`]: the events plus
/// the recorder's `{"type":"evictions",…}` trailer when one is present
/// (written by [`crate::Recorder::to_jsonl`] after ring evictions).
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_jsonl_log(text: &str) -> Result<EventLog, ParseError> {
    let mut events = Vec::new();
    let mut evictions = None;
    let mut reorder = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |e: ParseError| ParseError(format!("line {}: {e}", i + 1));
        let root = parse_root(line).map_err(at)?;
        match root.get("type").and_then(Val::str) {
            Some("evictions") => {
                evictions = Some(EvictionSummary {
                    routine: need_u64(&root, "routine").map_err(at)?,
                    notable: need_u64(&root, "notable").map_err(at)?,
                    critical: need_u64(&root, "critical").map_err(at)?,
                });
                continue;
            }
            Some("reorder") => {
                reorder = Some(ReorderStats {
                    reserved: need_u64(&root, "reserved").map_err(at)?,
                    max_in_flight: need_u64(&root, "max_in_flight").map_err(at)?,
                    max_held: need_u64(&root, "max_held").map_err(at)?,
                    drains: need_u64(&root, "drains").map_err(at)?,
                });
                continue;
            }
            _ => {}
        }
        events.push(Event::from_val(&root).map_err(at)?);
    }
    Ok(EventLog {
        events,
        evictions,
        reorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: Event) {
        let line = event.to_json_line();
        let back = Event::from_json_line(&line).expect("round trip parses");
        assert_eq!(back, event, "line: {line}");
        // Re-serialization is byte-stable.
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn round_trips_every_variant() {
        let base = |kind| Event {
            seq: 9,
            parent: Some(3),
            t: 12.5,
            queue_depth: 4,
            kind,
        };
        round_trip(base(EventKind::RequestArrived {
            gateway: 1,
            object: 2,
        }));
        round_trip(base(EventKind::Decision(DecisionEvent {
            object: 42,
            gateway: 7,
            chosen: 3,
            branch: DecisionBranch::LeastRequested,
            constant: 2.0,
            closest: Some(5),
            least: Some(3),
            unit_closest: Some(10.0),
            unit_least: Some(2.5),
            candidates: vec![
                CandidateSnapshot {
                    host: 3,
                    rcnt: 5,
                    aff: 2,
                    unit: 2.5,
                    distance: 6,
                },
                CandidateSnapshot {
                    host: 5,
                    rcnt: 10,
                    aff: 1,
                    unit: 10.0,
                    distance: 1,
                },
            ],
        })));
        round_trip(base(EventKind::RequestServed {
            gateway: 1,
            object: 2,
            host: 3,
            latency: 0.125,
            hops: 4,
        }));
        round_trip(base(EventKind::RequestFailed {
            gateway: 1,
            object: 2,
            reason: FailReason::Unreachable,
        }));
        round_trip(base(EventKind::PlacementAction(PlacementActionEvent {
            host: 3,
            object: 42,
            action: PlacementActionKind::GeoReplicate,
            target: Some(9),
            unit_rate: 0.21,
            share: Some(0.4),
            ratio: Some(0.3),
            deletion_threshold: 0.01,
            replication_threshold: 0.18,
        })));
        round_trip(base(EventKind::CountsReset {
            object: 42,
            cause: ResetCause::Created,
        }));
        round_trip(base(EventKind::Fault {
            desc: "link-degrade 3-12 x4".into(),
        }));
        round_trip(base(EventKind::ReReplication {
            object: 42,
            target: 9,
            elapsed: 61.5,
        }));
        round_trip(base(EventKind::ProviderUpdate(ProviderUpdateEvent {
            object: 42,
            class: ConsistencyClass::Type1,
            version: 3,
            primary: 7,
            targets: 2,
            bytes_hops: 98_304,
            reassigned: true,
        })));
        round_trip(base(EventKind::UpdateDelivered(UpdateDeliveredEvent {
            object: 42,
            host: 11,
            class: ConsistencyClass::Type2,
            version: 3,
            lag: 0.31,
            wasted: false,
        })));
    }

    #[test]
    fn none_parent_serializes_as_null() {
        let e = Event {
            seq: 1,
            parent: None,
            t: 0.0,
            queue_depth: 0,
            kind: EventKind::RequestArrived {
                gateway: 0,
                object: 0,
            },
        };
        let line = e.to_json_line();
        assert!(line.contains("\"parent\":null"), "{line}");
        round_trip(e);
    }

    #[test]
    fn string_escapes_round_trip() {
        round_trip(Event {
            seq: 2,
            parent: None,
            t: 1.0,
            queue_depth: 0,
            kind: EventKind::Fault {
                desc: "weird \"desc\"\n\\tab\t".into(),
            },
        });
    }

    #[test]
    fn unknown_interned_tag_is_a_parse_error() {
        let line = "{\"seq\":1,\"t\":0,\"parent\":null,\"qd\":0,\
                    \"type\":\"counts-reset\",\"object\":3,\"cause\":\"vibes\"}";
        let e = Event::from_json_line(line).unwrap_err();
        assert!(e.to_string().contains("unknown tag"), "{e}");
        assert!(e.to_string().contains("vibes"), "{e}");
    }

    #[test]
    fn write_json_line_appends_to_reused_buffer() {
        let e = Event {
            seq: 4,
            parent: None,
            t: 1.5,
            queue_depth: 2,
            kind: EventKind::RequestArrived {
                gateway: 3,
                object: 8,
            },
        };
        let mut buf = String::from("prefix|");
        e.write_json_line(&mut buf);
        assert_eq!(buf, format!("prefix|{}", e.to_json_line()));
        buf.clear();
        e.write_json_line(&mut buf);
        assert_eq!(buf, e.to_json_line());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Event::from_json_line("not json").is_err());
        assert!(Event::from_json_line("{}").is_err());
        assert!(Event::from_json_line(
            "{\"seq\":1,\"t\":0,\"parent\":null,\"qd\":0,\"type\":\"mystery\"}"
        )
        .is_err());
        let valid = "{\"seq\":1,\"t\":0,\"parent\":null,\"qd\":0,\
                     \"type\":\"request\",\"gateway\":0,\"object\":0}";
        assert!(Event::from_json_line(valid).is_ok());
        assert!(Event::from_json_line(&format!("{valid} extra")).is_err());
    }

    #[test]
    fn eviction_trailer_round_trips_through_parse_jsonl_log() {
        let event = Event {
            seq: 5,
            parent: None,
            t: 2.0,
            queue_depth: 1,
            kind: EventKind::Fault {
                desc: "host-crash 7".into(),
            },
        };
        let summary = EvictionSummary {
            routine: 120,
            notable: 3,
            critical: 0,
        };
        let text = format!("{}\n{}\n", event.to_json_line(), summary.to_json_line());
        let log = parse_jsonl_log(&text).expect("parses");
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.evictions, Some(summary));
        assert_eq!(summary.total(), 123);
        // parse_jsonl tolerates (and discards) the trailer.
        assert_eq!(parse_jsonl(&text).expect("parses").len(), 1);
        // A log without a trailer reports None.
        let bare = parse_jsonl_log(&format!("{}\n", event.to_json_line())).unwrap();
        assert_eq!(bare.evictions, None);
    }

    #[test]
    fn reorder_trailer_round_trips_through_parse_jsonl_log() {
        let event = Event {
            seq: 1,
            parent: None,
            t: 0.5,
            queue_depth: 2,
            kind: EventKind::RequestArrived {
                gateway: 3,
                object: 9,
            },
        };
        let stats = ReorderStats {
            reserved: 4210,
            max_in_flight: 7,
            max_held: 12,
            drains: 905,
        };
        assert_eq!(
            stats.to_json_line(),
            "{\"type\":\"reorder\",\"reserved\":4210,\
             \"max_in_flight\":7,\"max_held\":12,\"drains\":905}"
        );
        let text = format!("{}\n{}\n", event.to_json_line(), stats.to_json_line());
        let log = parse_jsonl_log(&text).expect("parses");
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.reorder, Some(stats));
        // parse_jsonl tolerates (and discards) the trailer.
        assert_eq!(parse_jsonl(&text).expect("parses").len(), 1);
        // A serial log (no trailer) reports None.
        let bare = parse_jsonl_log(&format!("{}\n", event.to_json_line())).unwrap();
        assert_eq!(bare.reorder, None);
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let good = Event {
            seq: 1,
            parent: None,
            t: 0.0,
            queue_depth: 0,
            kind: EventKind::RequestArrived {
                gateway: 0,
                object: 0,
            },
        }
        .to_json_line();
        let text = format!("{good}\n\nbroken\n");
        let e = parse_jsonl(&text).unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
        assert_eq!(parse_jsonl(&format!("{good}\n{good}\n")).unwrap().len(), 2);
    }
}
