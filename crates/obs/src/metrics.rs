//! Streaming metrics folded from the flight-recorder event stream.
//!
//! [`MetricsObserver`] consumes the same typed [`Event`] feed the
//! [`crate::Recorder`] does and folds it into the `radar-stats`
//! primitives the paper's evaluation is phrased in: per-host
//! [`WindowedRate`] load gauges (§2.1's measurement interval),
//! per-object request counters, a bytes×hops bandwidth [`TimeSeries`]
//! (§4, Table 2), a latency [`Histogram`] with streaming quantiles,
//! and rolling fault / re-replication rates. The same fold powers the
//! live `radar simulate --dashboard` view and the offline
//! `radar events watch FILE` replay, so both render identical
//! aggregates from identical streams.
//!
//! The fold reproduces the simulator's own accounting exactly for
//! fault-free runs: served events carry the service-completion time
//! the simulator uses for both its bandwidth series and its host-load
//! windows, and latency samples arrive in the same order they were
//! recorded.

use crate::event::{ConsistencyClass, Event, EventKind, PlacementActionKind};
use radar_stats::{BinSpec, Histogram, OnlineSummary, P2Quantile, TimeSeries, WindowedRate};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Tuning knobs for a [`MetricsObserver`], mirroring the scenario
/// parameters the simulator's own metrics use so folded aggregates are
/// comparable with the end-of-run report.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsConfig {
    /// Object size in bytes (bandwidth = size × hops per response).
    pub object_size: u64,
    /// Width of bandwidth time bins, seconds (the scenario's
    /// `metric_bin`; the paper plots 100 s bins).
    pub bandwidth_bin: f64,
    /// Host load measurement interval, seconds (§2.1; 20 s in the
    /// evaluation).
    pub load_interval: f64,
    /// Latency histogram bucket width, seconds.
    pub latency_bucket: f64,
    /// Number of latency histogram buckets (plus overflow).
    pub latency_buckets: usize,
    /// Window for the rolling served/failed/re-replication rates the
    /// dashboard displays, seconds.
    pub rolling_window: f64,
    /// How many recent fault transitions the fault banner retains.
    pub fault_banner: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self {
            object_size: 12 * 1024,
            bandwidth_bin: 100.0,
            load_interval: 20.0,
            latency_bucket: 0.025,
            latency_buckets: 40,
            rolling_window: 20.0,
            fault_banner: 5,
        }
    }
}

/// Per-object tallies maintained by the fold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectCounters {
    /// Requests that entered a gateway for this object.
    pub requests: u64,
    /// Responses delivered.
    pub served: u64,
    /// Requests that failed (no live reachable replica).
    pub failed: u64,
    /// Placement actions (drops, migrations, replications) that touched
    /// this object.
    pub placement_actions: u64,
    /// Net replica-count change observed in the stream: +1 per
    /// replication / re-replication, −1 per drop, 0 for migrations.
    pub replica_delta: i64,
}

/// One host's load gauge.
#[derive(Debug, Clone, PartialEq)]
struct HostGauge {
    rate: WindowedRate,
    served_total: u64,
}

/// Folds flight-recorder events into streaming dashboard aggregates.
///
/// Feed it events in sequence order via [`fold`](Self::fold) (or
/// attach it to a simulation as an observer), then call
/// [`finalize`](Self::finalize) with the run duration so windowed
/// gauges complete their last interval.
///
/// ```
/// use radar_obs::{Event, EventKind, MetricsObserver};
///
/// let mut m = MetricsObserver::default();
/// m.fold(&Event {
///     seq: 1,
///     parent: None,
///     t: 0.5,
///     queue_depth: 0,
///     kind: EventKind::RequestServed {
///         gateway: 0,
///         object: 7,
///         host: 3,
///         latency: 0.08,
///         hops: 2,
///     },
/// });
/// m.finalize(20.0);
/// assert_eq!(m.served(), 1);
/// assert_eq!(m.bandwidth().bin_sum(0), (12 * 1024 * 2) as f64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsObserver {
    cfg: MetricsConfig,
    events_seen: u64,
    last_t: f64,
    type_counts: BTreeMap<&'static str, u64>,
    hosts: BTreeMap<u16, HostGauge>,
    objects: BTreeMap<u32, ObjectCounters>,
    bandwidth: TimeSeries,
    max_load: TimeSeries,
    next_load_sample: f64,
    latency_summary: OnlineSummary,
    latency_p50: P2Quantile,
    latency_p99: P2Quantile,
    latency_hist: Histogram,
    served_rate: WindowedRate,
    failed_rate: WindowedRate,
    re_replication_rate: WindowedRate,
    branch_counts: BTreeMap<&'static str, u64>,
    placement_counts: BTreeMap<&'static str, u64>,
    recent_faults: VecDeque<(f64, String)>,
    faults_total: u64,
    failed_total: u64,
    served_total: u64,
    request_total: u64,
    re_replications_total: u64,
    update_bandwidth: TimeSeries,
    updates_total: u64,
    updates_by_class: [u64; 3],
    primary_reassignments: u64,
    update_deliveries: u64,
    wasted_deliveries: u64,
    updates_merged: u64,
    update_lag_type1: OnlineSummary,
    update_lag_type2: OnlineSummary,
}

impl Default for MetricsObserver {
    fn default() -> Self {
        Self::new(MetricsConfig::default())
    }
}

impl MetricsObserver {
    /// Creates an empty fold with the given configuration.
    pub fn new(cfg: MetricsConfig) -> Self {
        let bandwidth = TimeSeries::new(BinSpec::new(cfg.bandwidth_bin));
        let update_bandwidth = TimeSeries::new(BinSpec::new(cfg.bandwidth_bin));
        let max_load = TimeSeries::new(BinSpec::new(cfg.load_interval));
        let latency_hist = Histogram::new(cfg.latency_bucket, cfg.latency_buckets.max(1));
        let next_load_sample = cfg.load_interval;
        Self {
            served_rate: WindowedRate::new(cfg.rolling_window),
            failed_rate: WindowedRate::new(cfg.rolling_window),
            re_replication_rate: WindowedRate::new(cfg.rolling_window),
            cfg,
            events_seen: 0,
            last_t: 0.0,
            type_counts: BTreeMap::new(),
            hosts: BTreeMap::new(),
            objects: BTreeMap::new(),
            bandwidth,
            max_load,
            next_load_sample,
            latency_summary: OnlineSummary::new(),
            latency_p50: P2Quantile::new(0.5),
            latency_p99: P2Quantile::new(0.99),
            latency_hist,
            branch_counts: BTreeMap::new(),
            placement_counts: BTreeMap::new(),
            recent_faults: VecDeque::new(),
            faults_total: 0,
            failed_total: 0,
            served_total: 0,
            request_total: 0,
            re_replications_total: 0,
            update_bandwidth,
            updates_total: 0,
            updates_by_class: [0; 3],
            primary_reassignments: 0,
            update_deliveries: 0,
            wasted_deliveries: 0,
            updates_merged: 0,
            update_lag_type1: OnlineSummary::new(),
            update_lag_type2: OnlineSummary::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MetricsConfig {
        &self.cfg
    }

    /// Completes any load-measurement intervals that have fully elapsed
    /// by `t`, sampling the platform-wide maximum host load at each
    /// boundary (the simulator does the same at every `LoadSample`
    /// tick).
    fn sample_load_until(&mut self, t: f64) {
        while self.next_load_sample <= t {
            let boundary = self.next_load_sample;
            let mut max = 0.0f64;
            for gauge in self.hosts.values_mut() {
                gauge.rate.advance_to(boundary);
                if gauge.rate.rate() > max {
                    max = gauge.rate.rate();
                }
            }
            self.max_load.record(boundary, max);
            self.next_load_sample += self.cfg.load_interval;
        }
    }

    /// Folds one event into the aggregates. Events must arrive in
    /// sequence (non-decreasing time) order, as the recorder emits
    /// them.
    pub fn fold(&mut self, event: &Event) {
        self.sample_load_until(event.t);
        self.events_seen += 1;
        if event.t > self.last_t {
            self.last_t = event.t;
        }
        *self.type_counts.entry(event.type_name()).or_insert(0) += 1;
        match &event.kind {
            EventKind::RequestArrived { object, .. } => {
                self.request_total += 1;
                self.objects.entry(*object).or_default().requests += 1;
            }
            EventKind::Decision(d) => {
                *self.branch_counts.entry(d.branch.as_str()).or_insert(0) += 1;
            }
            EventKind::RequestServed {
                object,
                host,
                latency,
                hops,
                ..
            } => {
                self.served_total += 1;
                self.served_rate.record(event.t);
                self.objects.entry(*object).or_default().served += 1;
                let gauge = self.hosts.entry(*host).or_insert_with(|| HostGauge {
                    rate: WindowedRate::new(self.cfg.load_interval),
                    served_total: 0,
                });
                gauge.rate.record(event.t);
                gauge.served_total += 1;
                self.bandwidth
                    .record(event.t, (self.cfg.object_size * u64::from(*hops)) as f64);
                self.latency_summary.record(*latency);
                self.latency_p50.record(*latency);
                self.latency_p99.record(*latency);
                self.latency_hist.record(*latency);
            }
            EventKind::RequestFailed { object, .. } => {
                self.failed_total += 1;
                self.failed_rate.record(event.t);
                self.objects.entry(*object).or_default().failed += 1;
            }
            EventKind::PlacementAction(p) => {
                *self.placement_counts.entry(p.action.as_str()).or_insert(0) += 1;
                let counters = self.objects.entry(p.object).or_default();
                counters.placement_actions += 1;
                counters.replica_delta += match p.action {
                    PlacementActionKind::GeoReplicate | PlacementActionKind::LoadReplicate => 1,
                    PlacementActionKind::Drop => -1,
                    _ => 0,
                };
            }
            EventKind::CountsReset { .. } => {}
            EventKind::Fault { desc } => {
                self.faults_total += 1;
                self.recent_faults.push_back((event.t, desc.clone()));
                while self.recent_faults.len() > self.cfg.fault_banner {
                    self.recent_faults.pop_front();
                }
            }
            EventKind::ReReplication { object, .. } => {
                self.re_replications_total += 1;
                self.re_replication_rate.record(event.t);
                self.objects.entry(*object).or_default().replica_delta += 1;
            }
            EventKind::ProviderUpdate(u) => {
                // Same fold the simulator applies at issue time: one
                // update, its class tally, and the propagation traffic
                // charged as a whole (the event carries the exact
                // bytes×hops sum, so the cast matches bit for bit).
                self.updates_total += 1;
                self.updates_by_class[class_index(u.class)] += 1;
                self.update_bandwidth.record(event.t, u.bytes_hops as f64);
                if u.reassigned {
                    self.primary_reassignments += 1;
                }
            }
            EventKind::UpdateDelivered(u) => {
                if u.wasted {
                    self.wasted_deliveries += 1;
                } else {
                    self.update_deliveries += 1;
                    match u.class {
                        ConsistencyClass::Type1 => self.update_lag_type1.record(u.lag),
                        ConsistencyClass::Type2 => {
                            self.update_lag_type2.record(u.lag);
                            self.updates_merged += 1;
                        }
                        ConsistencyClass::Type3 => {}
                    }
                }
            }
        }
    }

    /// Rolls every windowed gauge forward to the end of the run,
    /// completing measurement intervals the event stream alone cannot
    /// close (the simulator's final `LoadSample` ticks fire on a timer,
    /// not on traffic).
    pub fn finalize(&mut self, t_end: f64) {
        self.sample_load_until(t_end);
        self.served_rate.advance_to(t_end);
        self.failed_rate.advance_to(t_end);
        self.re_replication_rate.advance_to(t_end);
        if t_end > self.last_t {
            self.last_t = t_end;
        }
    }

    // ---- aggregate views -------------------------------------------------

    /// Total events folded.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Latest time observed (event time or `finalize` horizon).
    pub fn last_t(&self) -> f64 {
        self.last_t
    }

    /// Requests that entered a gateway.
    pub fn requests(&self) -> u64 {
        self.request_total
    }

    /// Responses delivered (the report's `total_requests`).
    pub fn served(&self) -> u64 {
        self.served_total
    }

    /// Requests that failed outright.
    pub fn failed(&self) -> u64 {
        self.failed_total
    }

    /// Fault transitions applied.
    pub fn faults(&self) -> u64 {
        self.faults_total
    }

    /// Replicas restored by the re-replication sweep.
    pub fn re_replications(&self) -> u64 {
        self.re_replications_total
    }

    /// Client bandwidth (bytes×hops) per time bin.
    pub fn bandwidth(&self) -> &TimeSeries {
        &self.bandwidth
    }

    /// Maximum measured host load per measurement interval, sampled at
    /// interval boundaries exactly like the simulator's Fig. 8a series.
    pub fn max_load(&self) -> &TimeSeries {
        &self.max_load
    }

    /// Whole-run latency summary (mean/min/max/variance).
    pub fn latency_summary(&self) -> &OnlineSummary {
        &self.latency_summary
    }

    /// Streaming median latency estimate, seconds.
    pub fn latency_p50(&self) -> Option<f64> {
        self.latency_p50.estimate()
    }

    /// Streaming 99th-percentile latency estimate, seconds.
    pub fn latency_p99(&self) -> Option<f64> {
        self.latency_p99.estimate()
    }

    /// The latency histogram.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Rolling served-responses rate (events/s over the last completed
    /// rolling window).
    pub fn served_rate(&self) -> f64 {
        self.served_rate.rate()
    }

    /// Rolling failed-requests rate.
    pub fn failed_rate(&self) -> f64 {
        self.failed_rate.rate()
    }

    /// Rolling re-replication rate.
    pub fn re_replication_rate(&self) -> f64 {
        self.re_replication_rate.rate()
    }

    /// Per-host `(host, current measured load, total served)` rows,
    /// ascending by host id. The load is the rate of the host's last
    /// completed measurement interval.
    pub fn host_loads(&self) -> Vec<(u16, f64, u64)> {
        self.hosts
            .iter()
            .map(|(&h, g)| (h, g.rate.rate(), g.served_total))
            .collect()
    }

    /// The `n` objects with the most gateway requests, descending (ties
    /// broken by object id).
    pub fn top_objects(&self, n: usize) -> Vec<(u32, ObjectCounters)> {
        let mut rows: Vec<(u32, ObjectCounters)> =
            self.objects.iter().map(|(&o, &c)| (o, c)).collect();
        rows.sort_by(|a, b| b.1.requests.cmp(&a.1.requests).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Counters for one object, if any event mentioned it.
    pub fn object(&self, object: u32) -> Option<ObjectCounters> {
        self.objects.get(&object).copied()
    }

    /// The most recent fault transitions `(t, description)`, oldest
    /// first, capped at the configured banner size.
    pub fn recent_faults(&self) -> impl Iterator<Item = &(f64, String)> {
        self.recent_faults.iter()
    }

    /// Per-event-type counts, keyed by stable type tag.
    pub fn type_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.type_counts
    }

    /// Redirector branch counts (`closest`, `least-requested`, …),
    /// keyed by the interned branch tag.
    pub fn branch_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.branch_counts
    }

    /// Placement action counts (`drop`, `geo-migrate`, …), keyed by the
    /// interned action tag.
    pub fn placement_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.placement_counts
    }

    /// Propagation traffic (bytes × hops) from provider updates, binned
    /// like [`MetricsObserver::bandwidth`].
    pub fn update_bandwidth(&self) -> &TimeSeries {
        &self.update_bandwidth
    }

    /// Total provider updates folded.
    pub fn updates(&self) -> u64 {
        self.updates_total
    }

    /// Provider updates per §5 consistency class (type-1, type-2,
    /// type-3 in index order).
    pub fn updates_by_class(&self) -> [u64; 3] {
        self.updates_by_class
    }

    /// Updates that landed while the primary copy was unreachable and
    /// forced a primary reassignment.
    pub fn primary_reassignments(&self) -> u64 {
        self.primary_reassignments
    }

    /// Asynchronous update deliveries applied at a live replica.
    pub fn update_deliveries(&self) -> u64 {
        self.update_deliveries
    }

    /// Deliveries that arrived after the target replica was dropped.
    pub fn wasted_deliveries(&self) -> u64 {
        self.wasted_deliveries
    }

    /// Type-2 deliveries merged commutatively at the replica.
    pub fn updates_merged(&self) -> u64 {
        self.updates_merged
    }

    /// Staleness (update lag, seconds) summary for type-1 deliveries.
    pub fn update_lag_type1(&self) -> &OnlineSummary {
        &self.update_lag_type1
    }

    /// Staleness (update lag, seconds) summary for type-2 deliveries.
    pub fn update_lag_type2(&self) -> &OnlineSummary {
        &self.update_lag_type2
    }
}

fn class_index(class: ConsistencyClass) -> usize {
    match class {
        ConsistencyClass::Type1 => 0,
        ConsistencyClass::Type2 => 1,
        ConsistencyClass::Type3 => 2,
    }
}

/// A cloneable, thread-safe handle around a [`MetricsObserver`]:
/// attach one clone to the simulation and read the aggregates from
/// another (the dashboard renderer does exactly this).
#[derive(Clone, Debug)]
pub struct SharedMetrics(Arc<Mutex<MetricsObserver>>);

impl SharedMetrics {
    /// Creates a shared fold with the given configuration.
    pub fn new(cfg: MetricsConfig) -> Self {
        Self(Arc::new(Mutex::new(MetricsObserver::new(cfg))))
    }

    /// Folds one event.
    pub fn fold(&self, event: &Event) {
        self.0.lock().expect("metrics lock").fold(event);
    }

    /// Rolls windowed gauges forward to the end of the run.
    pub fn finalize(&self, t_end: f64) {
        self.0.lock().expect("metrics lock").finalize(t_end);
    }

    /// Runs `f` with shared access to the inner fold.
    pub fn with<R>(&self, f: impl FnOnce(&MetricsObserver) -> R) -> R {
        f(&self.0.lock().expect("metrics lock"))
    }
}

impl Default for SharedMetrics {
    fn default() -> Self {
        Self::new(MetricsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DecisionBranch, DecisionEvent, FailReason, PlacementActionEvent};

    fn ev(seq: u64, t: f64, kind: EventKind) -> Event {
        Event {
            seq,
            parent: None,
            t,
            queue_depth: 0,
            kind,
        }
    }

    fn served(seq: u64, t: f64, object: u32, host: u16, latency: f64, hops: u32) -> Event {
        ev(
            seq,
            t,
            EventKind::RequestServed {
                gateway: 0,
                object,
                host,
                latency,
                hops,
            },
        )
    }

    #[test]
    fn served_events_feed_bandwidth_latency_and_host_gauges() {
        let mut m = MetricsObserver::new(MetricsConfig {
            object_size: 1000,
            bandwidth_bin: 100.0,
            load_interval: 10.0,
            ..MetricsConfig::default()
        });
        // Host 3 serves 20 requests in [0, 10): load 2.0 req/s.
        for i in 0..20 {
            m.fold(&served(i + 1, i as f64 * 0.5, 7, 3, 0.05, 2));
        }
        m.fold(&served(21, 12.0, 8, 4, 0.15, 3));
        m.finalize(20.0);
        assert_eq!(m.served(), 21);
        assert_eq!(m.bandwidth().bin_sum(0), 20.0 * 2000.0 + 3000.0);
        // Sample at t=10 saw host 3 at 2 req/s; host 4 had not served yet.
        assert_eq!(m.max_load().bin_sum(1), 2.0);
        let hosts = m.host_loads();
        assert_eq!(hosts.len(), 2);
        assert_eq!(hosts[0].0, 3);
        assert_eq!(hosts[0].2, 20);
        let mean = m.latency_summary().mean().unwrap();
        assert!((mean - (20.0 * 0.05 + 0.15) / 21.0).abs() < 1e-12);
        assert_eq!(m.latency_histogram().total(), 21);
        let top = m.top_objects(1);
        assert_eq!(top[0].0, 7);
        assert_eq!(top[0].1.served, 20);
    }

    #[test]
    fn load_sampling_matches_interval_boundaries() {
        let mut m = MetricsObserver::new(MetricsConfig {
            load_interval: 20.0,
            ..MetricsConfig::default()
        });
        m.fold(&served(1, 5.0, 1, 0, 0.1, 1));
        // No boundary crossed yet.
        assert_eq!(m.max_load().len(), 0);
        m.fold(&served(2, 45.0, 1, 0, 0.1, 1));
        // Boundaries at 20 and 40 sampled before folding the event.
        assert_eq!(m.max_load().bin_count(1), 1);
        assert_eq!(m.max_load().bin_sum(1), 1.0 / 20.0);
        assert_eq!(m.max_load().bin_count(2), 1);
        assert_eq!(m.max_load().bin_sum(2), 0.0);
        m.finalize(100.0);
        // Remaining boundaries 60, 80, 100 completed by finalize.
        assert_eq!(m.max_load().total_count(), 5);
    }

    #[test]
    fn placement_and_rereplication_track_replica_delta() {
        let mut m = MetricsObserver::default();
        let action = |seq, action: PlacementActionKind, target| {
            ev(
                seq,
                30.0,
                EventKind::PlacementAction(PlacementActionEvent {
                    host: 1,
                    object: 5,
                    action,
                    target,
                    unit_rate: 0.2,
                    share: None,
                    ratio: None,
                    deletion_threshold: 0.01,
                    replication_threshold: 0.18,
                }),
            )
        };
        m.fold(&action(1, PlacementActionKind::GeoReplicate, Some(2)));
        m.fold(&action(2, PlacementActionKind::GeoMigrate, Some(3)));
        m.fold(&action(3, PlacementActionKind::Drop, None));
        m.fold(&ev(
            4,
            40.0,
            EventKind::ReReplication {
                object: 5,
                target: 9,
                elapsed: 12.0,
            },
        ));
        let o = m.object(5).unwrap();
        assert_eq!(o.placement_actions, 3);
        assert_eq!(o.replica_delta, 1); // +1 −1 +1
        assert_eq!(m.re_replications(), 1);
        assert_eq!(m.placement_counts()["drop"], 1);
    }

    #[test]
    fn faults_and_failures_update_banner_and_rates() {
        let mut m = MetricsObserver::new(MetricsConfig {
            fault_banner: 2,
            rolling_window: 10.0,
            ..MetricsConfig::default()
        });
        for (i, t) in [1.0, 2.0, 3.0].iter().enumerate() {
            m.fold(&ev(
                i as u64 + 1,
                *t,
                EventKind::Fault {
                    desc: format!("host-crash {i}"),
                },
            ));
        }
        m.fold(&ev(
            4,
            4.0,
            EventKind::RequestFailed {
                gateway: 0,
                object: 1,
                reason: FailReason::AllReplicasDown,
            },
        ));
        assert_eq!(m.faults(), 3);
        assert_eq!(m.failed(), 1);
        let banner: Vec<&(f64, String)> = m.recent_faults().collect();
        assert_eq!(banner.len(), 2, "banner capped");
        assert_eq!(banner[0].0, 2.0, "oldest banner entry rotated out");
        m.finalize(10.0);
        assert!((m.failed_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn decision_branches_and_requests_counted() {
        let mut m = MetricsObserver::default();
        m.fold(&ev(
            1,
            0.5,
            EventKind::RequestArrived {
                gateway: 2,
                object: 9,
            },
        ));
        m.fold(&ev(
            2,
            0.6,
            EventKind::Decision(DecisionEvent {
                object: 9,
                gateway: 2,
                chosen: 1,
                branch: DecisionBranch::Closest,
                constant: 2.0,
                closest: Some(1),
                least: Some(1),
                unit_closest: Some(1.0),
                unit_least: Some(1.0),
                candidates: Vec::new(),
            }),
        ));
        assert_eq!(m.requests(), 1);
        assert_eq!(m.branch_counts()["closest"], 1);
        assert_eq!(m.type_counts()["decision"], 1);
        assert_eq!(m.events_seen(), 2);
    }

    #[test]
    fn shared_metrics_round_trip() {
        let shared = SharedMetrics::default();
        let clone = shared.clone();
        clone.fold(&served(1, 1.0, 3, 2, 0.05, 1));
        clone.finalize(20.0);
        assert_eq!(shared.with(|m| m.served()), 1);
        assert_eq!(shared.with(|m| m.max_load().total_count()), 1);
    }
}
