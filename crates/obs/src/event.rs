//! The typed event vocabulary of the flight recorder.
//!
//! Every event carries a monotonic sequence number assigned by the
//! emitting platform and an optional *causal parent*: the sequence
//! number of the event that triggered it. A served request therefore
//! forms a chain `request → decision → served`, traceable from gateway
//! through redirector to host.
//!
//! All payload fields are plain integers, floats, and small interned
//! enums (plus a free-form string only where the vocabulary is open,
//! like fault descriptions) — no platform types — so the crate stays
//! dependency-free, event logs parse without the simulator, and the
//! steady-state tracing path allocates nothing per event.

use std::fmt;

/// Retention class of an event, used by the severity-aware recorder
/// ring: when the ring is full, lower-severity events are evicted
/// first, so a long run never loses the faults and placement actions
/// that explain its request traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Per-request lifecycle traffic (`request`, `decision`, `served`) —
    /// the bulk of any log, evicted first.
    Routine = 0,
    /// Infrequent bookkeeping (`counts-reset`) — evicted only once no
    /// routine events remain.
    Notable = 1,
    /// Events that explain everything else (`failed`, `placement`,
    /// `fault`, `re-replication`) — evicted last, and only to make room
    /// for other critical events.
    Critical = 2,
}

impl Severity {
    /// All severities, lowest (evicted first) to highest.
    pub const ALL: [Severity; 3] = [Severity::Routine, Severity::Notable, Severity::Critical];

    /// Stable lowercase tag (`routine`, `notable`, `critical`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Routine => "routine",
            Severity::Notable => "notable",
            Severity::Critical => "critical",
        }
    }
}

/// Which Fig. 2 rule picked the serving host. Interned: the tag set is
/// closed, so events carry a copyable enum instead of a heap `String`
/// (the JSONL wire format still writes the lowercase tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DecisionBranch {
    /// The closest replica was under the distribution constant.
    Closest,
    /// Load spread to the least unit-requested replica.
    LeastRequested,
    /// Degraded mode: no usable replica, served from the primary copy.
    PrimaryFallback,
    /// Baseline (non-RaDaR) selection policy.
    Policy,
}

impl DecisionBranch {
    /// Stable lowercase tag, as serialized in the JSONL `branch` field.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionBranch::Closest => "closest",
            DecisionBranch::LeastRequested => "least-requested",
            DecisionBranch::PrimaryFallback => "primary-fallback",
            DecisionBranch::Policy => "policy",
        }
    }

    /// Parses the JSONL tag back into the enum.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "closest" => DecisionBranch::Closest,
            "least-requested" => DecisionBranch::LeastRequested,
            "primary-fallback" => DecisionBranch::PrimaryFallback,
            "policy" => DecisionBranch::Policy,
            _ => return None,
        })
    }
}

impl fmt::Display for DecisionBranch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a request failed outright. Interned like [`DecisionBranch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailReason {
    /// Every replica host was down.
    AllReplicasDown,
    /// Replicas were up but no route reached any of them.
    Unreachable,
    /// The serving host crashed while the request was in flight.
    CrashedMidService,
}

impl FailReason {
    /// Stable lowercase tag, as serialized in the JSONL `reason` field.
    pub fn as_str(self) -> &'static str {
        match self {
            FailReason::AllReplicasDown => "all-replicas-down",
            FailReason::Unreachable => "unreachable",
            FailReason::CrashedMidService => "crashed-mid-service",
        }
    }

    /// Parses the JSONL tag back into the enum.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "all-replicas-down" => FailReason::AllReplicasDown,
            "unreachable" => FailReason::Unreachable,
            "crashed-mid-service" => FailReason::CrashedMidService,
            _ => return None,
        })
    }
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What changed a replica set and triggered the Fig. 2 companion
/// count reset. Interned like [`DecisionBranch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResetCause {
    /// A new replica was created.
    Created,
    /// A replica's affinity changed.
    Affinity,
    /// A replica was dropped.
    Dropped,
    /// A host purge removed the replica.
    Purge,
}

impl ResetCause {
    /// Stable lowercase tag, as serialized in the JSONL `cause` field.
    pub fn as_str(self) -> &'static str {
        match self {
            ResetCause::Created => "created",
            ResetCause::Affinity => "affinity",
            ResetCause::Dropped => "dropped",
            ResetCause::Purge => "purge",
        }
    }

    /// Parses the JSONL tag back into the enum.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "created" => ResetCause::Created,
            "affinity" => ResetCause::Affinity,
            "dropped" => ResetCause::Dropped,
            "purge" => ResetCause::Purge,
            _ => return None,
        })
    }
}

impl fmt::Display for ResetCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The §5 consistency class of an object, as carried by update events.
/// Interned like [`DecisionBranch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConsistencyClass {
    /// Type-1: updates at a primary copy propagate asynchronously;
    /// replicas may serve slightly stale versions.
    Type1,
    /// Type-2: commuting updates, merged at every replica.
    Type2,
    /// Type-3: non-commuting updates; replication is capped and the
    /// update applies synchronously at every copy.
    Type3,
}

impl ConsistencyClass {
    /// Stable lowercase tag, as serialized in the JSONL `class` field.
    pub fn as_str(self) -> &'static str {
        match self {
            ConsistencyClass::Type1 => "type-1",
            ConsistencyClass::Type2 => "type-2",
            ConsistencyClass::Type3 => "type-3",
        }
    }

    /// Parses the JSONL tag back into the enum.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "type-1" => ConsistencyClass::Type1,
            "type-2" => ConsistencyClass::Type2,
            "type-3" => ConsistencyClass::Type3,
            _ => return None,
        })
    }
}

impl fmt::Display for ConsistencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The action a placement run took on one object (paper Figs. 3–5).
/// Interned like [`DecisionBranch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PlacementActionKind {
    /// Deletion test: the replica was dropped.
    Drop,
    /// Deletion test on the last copy: affinity reduced instead.
    AffinityReduce,
    /// Deletion test fired but the directory refused the drop.
    DropRefused,
    /// Geographic migration along a preference path.
    GeoMigrate,
    /// Geographic replication along a preference path.
    GeoReplicate,
    /// Offload migration to a less-loaded host.
    LoadMigrate,
    /// Offload replication to a less-loaded host.
    LoadReplicate,
}

impl PlacementActionKind {
    /// Stable lowercase tag, as serialized in the JSONL `action` field.
    pub fn as_str(self) -> &'static str {
        match self {
            PlacementActionKind::Drop => "drop",
            PlacementActionKind::AffinityReduce => "affinity-reduce",
            PlacementActionKind::DropRefused => "drop-refused",
            PlacementActionKind::GeoMigrate => "geo-migrate",
            PlacementActionKind::GeoReplicate => "geo-replicate",
            PlacementActionKind::LoadMigrate => "load-migrate",
            PlacementActionKind::LoadReplicate => "load-replicate",
        }
    }

    /// Parses the JSONL tag back into the enum.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "drop" => PlacementActionKind::Drop,
            "affinity-reduce" => PlacementActionKind::AffinityReduce,
            "drop-refused" => PlacementActionKind::DropRefused,
            "geo-migrate" => PlacementActionKind::GeoMigrate,
            "geo-replicate" => PlacementActionKind::GeoReplicate,
            "load-migrate" => PlacementActionKind::LoadMigrate,
            "load-replicate" => PlacementActionKind::LoadReplicate,
            _ => return None,
        })
    }
}

impl fmt::Display for PlacementActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded platform event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (1-based; unique within a run).
    pub seq: u64,
    /// Sequence number of the event that caused this one, if any.
    pub parent: Option<u64>,
    /// Simulated time of the event (seconds).
    pub t: f64,
    /// Event-queue depth when the event was emitted (a deterministic
    /// backlog signal — wall-clock profiling stays out of the log so
    /// seeded runs serialize byte-identically).
    pub queue_depth: u32,
    /// What happened.
    pub kind: EventKind,
}

/// The event payload: one variant per traced platform occurrence.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A client request entered the platform at its gateway.
    RequestArrived {
        /// The gateway node.
        gateway: u16,
        /// The requested object.
        object: u32,
    },
    /// The redirector chose a replica (paper Fig. 2).
    Decision(DecisionEvent),
    /// A response was delivered to its gateway.
    RequestServed {
        /// The gateway node.
        gateway: u16,
        /// The requested object.
        object: u32,
        /// The host that served it.
        host: u16,
        /// End-to-end latency (seconds).
        latency: f64,
        /// Hops the response traveled.
        hops: u32,
    },
    /// A request failed: no live, reachable replica could serve it.
    RequestFailed {
        /// The gateway node.
        gateway: u16,
        /// The requested object.
        object: u32,
        /// Failure cause.
        reason: FailReason,
    },
    /// A placement run took an action on one object (paper Figs. 3–5),
    /// with the threshold comparison that triggered it.
    PlacementAction(PlacementActionEvent),
    /// A replica-set change reset the object's request counts (the
    /// Fig. 2 companion rule).
    CountsReset {
        /// The affected object.
        object: u32,
        /// What changed the set.
        cause: ResetCause,
    },
    /// A scheduled fault transition was applied.
    Fault {
        /// Human/machine-readable transition description, e.g.
        /// `host-crash 7` or `link-degrade 3-12 x4`.
        desc: String,
    },
    /// The re-replication sweep restored a copy of an object.
    ReReplication {
        /// The restored object.
        object: u32,
        /// The host that received the new copy.
        target: u16,
        /// Seconds the object spent below its replica floor.
        elapsed: f64,
    },
    /// A content provider issued a new version of an object (§5); the
    /// update propagates from the primary copy to every other replica.
    ProviderUpdate(ProviderUpdateEvent),
    /// An asynchronously propagated provider update reached one replica
    /// (or found it already gone).
    UpdateDelivered(UpdateDeliveredEvent),
}

/// A provider update at its primary copy (§5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProviderUpdateEvent {
    /// The updated object.
    pub object: u32,
    /// The object's consistency class.
    pub class: ConsistencyClass,
    /// The object's provider-update version after this update.
    pub version: u64,
    /// The primary copy's host.
    pub primary: u16,
    /// Number of secondary replicas the update propagates to.
    pub targets: u16,
    /// Propagation traffic charged at issue (bytes×hops over every
    /// primary→secondary path).
    pub bytes_hops: u64,
    /// Whether the primary copy had to be reassigned first (its host
    /// had shed the object).
    pub reassigned: bool,
}

/// One asynchronous update delivery at a replica (§5, types 1–2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateDeliveredEvent {
    /// The updated object.
    pub object: u32,
    /// The replica host the delivery targeted.
    pub host: u16,
    /// The object's consistency class.
    pub class: ConsistencyClass,
    /// The delivered provider-update version.
    pub version: u64,
    /// Seconds the replica was stale for this version (delivery time
    /// minus issue time).
    pub lag: f64,
    /// Whether the target replica was already dropped or migrated away
    /// when the update arrived.
    pub wasted: bool,
}

/// One candidate replica as the redirector saw it at decision time
/// (counts snapshotted *before* the winner's count increments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateSnapshot {
    /// The hosting node.
    pub host: u16,
    /// Request count `rcnt` since the last replica-set change.
    pub rcnt: u64,
    /// Replica affinity.
    pub aff: u32,
    /// Unit request count `rcnt/aff`.
    pub unit: f64,
    /// Hop distance from this replica to the gateway.
    pub distance: u32,
}

/// A redirector decision: the full Fig. 2 input and which branch won.
///
/// `closest`/`least` and the unit counts are `None` when the run used a
/// baseline policy (no Fig. 2 data) or the primary-copy fallback; the
/// `branch` tag tells which.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// The requested object.
    pub object: u32,
    /// The gateway the request entered at.
    pub gateway: u16,
    /// The host chosen to serve the request.
    pub chosen: u16,
    /// Which rule picked the host.
    pub branch: DecisionBranch,
    /// The distribution constant in force (2.0 in the paper).
    pub constant: f64,
    /// The closest usable replica `p`.
    pub closest: Option<u16>,
    /// The usable replica `q` with the least unit request count.
    pub least: Option<u16>,
    /// `unit_rcnt(p)` at decision time.
    pub unit_closest: Option<f64>,
    /// `unit_rcnt(q)` at decision time.
    pub unit_least: Option<f64>,
    /// Every usable candidate replica, sorted by host id.
    pub candidates: Vec<CandidateSnapshot>,
}

impl Default for DecisionEvent {
    /// A placeholder value for reusable scratch decisions; every field
    /// is overwritten before the event is observed.
    fn default() -> Self {
        Self {
            object: 0,
            gateway: 0,
            chosen: 0,
            branch: DecisionBranch::Policy,
            constant: 0.0,
            closest: None,
            least: None,
            unit_closest: None,
            unit_least: None,
            candidates: Vec::new(),
        }
    }
}

/// One placement action with the test values that triggered it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementActionEvent {
    /// The deciding host.
    pub host: u16,
    /// The object acted on.
    pub object: u32,
    /// The action taken.
    pub action: PlacementActionKind,
    /// The recipient host, for migrations and replications.
    pub target: Option<u16>,
    /// The object's unit access rate `cnt_s/aff/period` that the
    /// deletion and replication tests compared.
    pub unit_rate: f64,
    /// The qualifying access-count share: the preference-path share of
    /// the chosen candidate (geo moves) or the foreign-request share
    /// (offload ordering). `None` for deletion-test actions.
    pub share: Option<f64>,
    /// The path-share ratio the geo test required (`MIGR_RATIO` or
    /// `REPL_RATIO`). `None` for load- and deletion-driven actions.
    pub ratio: Option<f64>,
    /// The deletion threshold `u` in force.
    pub deletion_threshold: f64,
    /// The replication threshold `m` in force.
    pub replication_threshold: f64,
}

impl Event {
    /// The event's stable type tag, as used in the JSONL `type` field
    /// and by `radar events filter --type`.
    pub fn type_name(&self) -> &'static str {
        match &self.kind {
            EventKind::RequestArrived { .. } => "request",
            EventKind::Decision(_) => "decision",
            EventKind::RequestServed { .. } => "served",
            EventKind::RequestFailed { .. } => "failed",
            EventKind::PlacementAction(_) => "placement",
            EventKind::CountsReset { .. } => "counts-reset",
            EventKind::Fault { .. } => "fault",
            EventKind::ReReplication { .. } => "re-replication",
            EventKind::ProviderUpdate(_) => "provider-update",
            EventKind::UpdateDelivered(_) => "update-delivered",
        }
    }

    /// The event's retention class for the severity-aware recorder
    /// ring (see [`Severity`]).
    pub fn severity(&self) -> Severity {
        match &self.kind {
            EventKind::RequestArrived { .. }
            | EventKind::Decision(_)
            | EventKind::RequestServed { .. }
            | EventKind::UpdateDelivered(_) => Severity::Routine,
            EventKind::CountsReset { .. } | EventKind::ProviderUpdate(_) => Severity::Notable,
            EventKind::RequestFailed { .. }
            | EventKind::PlacementAction(_)
            | EventKind::Fault { .. }
            | EventKind::ReReplication { .. } => Severity::Critical,
        }
    }

    /// The object the event concerns, when it concerns one.
    pub fn object(&self) -> Option<u32> {
        match &self.kind {
            EventKind::RequestArrived { object, .. }
            | EventKind::RequestServed { object, .. }
            | EventKind::RequestFailed { object, .. }
            | EventKind::CountsReset { object, .. }
            | EventKind::ReReplication { object, .. } => Some(*object),
            EventKind::Decision(d) => Some(d.object),
            EventKind::PlacementAction(p) => Some(p.object),
            EventKind::ProviderUpdate(u) => Some(u.object),
            EventKind::UpdateDelivered(u) => Some(u.object),
            EventKind::Fault { .. } => None,
        }
    }

    /// The gateway node involved, when there is one.
    pub fn gateway(&self) -> Option<u16> {
        match &self.kind {
            EventKind::RequestArrived { gateway, .. }
            | EventKind::RequestServed { gateway, .. }
            | EventKind::RequestFailed { gateway, .. } => Some(*gateway),
            EventKind::Decision(d) => Some(d.gateway),
            _ => None,
        }
    }

    /// The host node involved, when there is one: the chosen/serving
    /// host, the deciding placement host, or a re-replication target.
    pub fn host(&self) -> Option<u16> {
        match &self.kind {
            EventKind::RequestServed { host, .. } => Some(*host),
            EventKind::Decision(d) => Some(d.chosen),
            EventKind::PlacementAction(p) => Some(p.host),
            EventKind::ReReplication { target, .. } => Some(*target),
            EventKind::ProviderUpdate(u) => Some(u.primary),
            EventKind::UpdateDelivered(u) => Some(u.host),
            _ => None,
        }
    }

    /// One-line rendering for `radar events tail` / `filter` listings.
    pub fn brief(&self) -> String {
        let head = format!(
            "#{:<6} t={:<10.3} {:<13}",
            self.seq,
            self.t,
            self.type_name()
        );
        let detail = match &self.kind {
            EventKind::RequestArrived { gateway, object } => {
                format!("object {object} enters at gateway {gateway}")
            }
            EventKind::Decision(d) if d.candidates.is_empty() => format!(
                "object {} gw {} -> host {} ({} branch, degraded: {})",
                d.object,
                d.gateway,
                d.chosen,
                d.branch,
                degradation_reason(d.branch)
            ),
            EventKind::Decision(d) => format!(
                "object {} gw {} -> host {} ({} branch, {} candidates)",
                d.object,
                d.gateway,
                d.chosen,
                d.branch,
                d.candidates.len()
            ),
            EventKind::RequestServed {
                gateway,
                object,
                host,
                latency,
                hops,
            } => format!(
                "object {object} served by host {host} to gw {gateway} \
                 ({:.1} ms, {hops} hops)",
                latency * 1e3
            ),
            EventKind::RequestFailed {
                gateway,
                object,
                reason,
            } => format!("object {object} at gw {gateway} failed: {reason}"),
            EventKind::PlacementAction(p) => {
                let target = p
                    .target
                    .map(|h| format!(" -> host {h}"))
                    .unwrap_or_default();
                format!(
                    "host {} {} object {}{} (unit rate {:.4})",
                    p.host, p.action, p.object, target, p.unit_rate
                )
            }
            EventKind::CountsReset { object, cause } => {
                format!("object {object} request counts reset ({cause})")
            }
            EventKind::Fault { desc } => desc.clone(),
            EventKind::ReReplication {
                object,
                target,
                elapsed,
            } => format!("object {object} restored on host {target} after {elapsed:.1}s"),
            EventKind::ProviderUpdate(u) => format!(
                "object {} v{} updated at primary {} ({}, {} targets{})",
                u.object,
                u.version,
                u.primary,
                u.class,
                u.targets,
                if u.reassigned {
                    ", primary reassigned"
                } else {
                    ""
                }
            ),
            EventKind::UpdateDelivered(u) => format!(
                "object {} v{} {} at host {} ({}, lag {:.1} ms)",
                u.object,
                u.version,
                if u.wasted { "wasted" } else { "delivered" },
                u.host,
                u.class,
                u.lag * 1e3
            ),
        };
        format!("{head} {detail}")
    }
}

/// Why a decision carries no candidate snapshot: the degraded-mode
/// explanation shown in place of an empty candidate table.
pub(crate) fn degradation_reason(branch: DecisionBranch) -> &'static str {
    match branch {
        DecisionBranch::PrimaryFallback => {
            "no usable replica was reachable; served from the primary copy"
        }
        DecisionBranch::Policy => "baseline policy decision; no Fig. 2 candidate data",
        _ => "no candidate snapshot recorded",
    }
}

/// All known type tags, in the order `radar events summary` lists them.
pub const EVENT_TYPES: &[&str] = &[
    "request",
    "decision",
    "served",
    "failed",
    "placement",
    "counts-reset",
    "fault",
    "re-replication",
    "provider-update",
    "update-delivered",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 7,
            parent: Some(6),
            t: 1.25,
            queue_depth: 3,
            kind: EventKind::RequestServed {
                gateway: 2,
                object: 42,
                host: 5,
                latency: 0.08,
                hops: 3,
            },
        }
    }

    #[test]
    fn type_names_cover_all_variants() {
        assert_eq!(sample().type_name(), "served");
        assert!(EVENT_TYPES.contains(&sample().type_name()));
        assert_eq!(EVENT_TYPES.len(), 10);
    }

    #[test]
    fn accessors() {
        let e = sample();
        assert_eq!(e.object(), Some(42));
        assert_eq!(e.gateway(), Some(2));
        assert_eq!(e.host(), Some(5));
        let fault = Event {
            kind: EventKind::Fault {
                desc: "host-crash 7".into(),
            },
            ..sample()
        };
        assert_eq!(fault.object(), None);
        assert_eq!(fault.host(), None);
    }

    #[test]
    fn severity_partitions_all_types() {
        let base = |kind| Event {
            seq: 1,
            parent: None,
            t: 0.0,
            queue_depth: 0,
            kind,
        };
        assert_eq!(sample().severity(), Severity::Routine);
        assert_eq!(
            base(EventKind::CountsReset {
                object: 1,
                cause: ResetCause::Created,
            })
            .severity(),
            Severity::Notable
        );
        assert_eq!(
            base(EventKind::Fault {
                desc: "host-crash 7".into(),
            })
            .severity(),
            Severity::Critical
        );
        assert_eq!(
            base(EventKind::RequestFailed {
                gateway: 0,
                object: 1,
                reason: FailReason::Unreachable,
            })
            .severity(),
            Severity::Critical
        );
        assert!(Severity::Routine < Severity::Notable);
        assert!(Severity::Notable < Severity::Critical);
        assert_eq!(Severity::Critical.as_str(), "critical");
    }

    #[test]
    fn degraded_decision_brief_names_the_reason() {
        let e = Event {
            seq: 3,
            parent: Some(2),
            t: 9.0,
            queue_depth: 1,
            kind: EventKind::Decision(DecisionEvent {
                object: 7,
                gateway: 2,
                chosen: 0,
                branch: DecisionBranch::PrimaryFallback,
                constant: 2.0,
                closest: None,
                least: None,
                unit_closest: None,
                unit_least: None,
                candidates: Vec::new(),
            }),
        };
        let line = e.brief();
        assert!(!line.contains("0 candidates"), "{line}");
        assert!(line.contains("degraded"), "{line}");
        assert!(line.contains("no usable replica"), "{line}");
    }

    #[test]
    fn interned_tags_round_trip() {
        use ConsistencyClass as C;
        use DecisionBranch as B;
        use FailReason as F;
        use PlacementActionKind as P;
        use ResetCause as R;
        for c in [C::Type1, C::Type2, C::Type3] {
            assert_eq!(C::from_tag(c.as_str()), Some(c));
        }
        assert_eq!(C::from_tag("type-4"), None);
        for b in [B::Closest, B::LeastRequested, B::PrimaryFallback, B::Policy] {
            assert_eq!(B::from_tag(b.as_str()), Some(b));
        }
        for r in [F::AllReplicasDown, F::Unreachable, F::CrashedMidService] {
            assert_eq!(F::from_tag(r.as_str()), Some(r));
        }
        for c in [R::Created, R::Affinity, R::Dropped, R::Purge] {
            assert_eq!(R::from_tag(c.as_str()), Some(c));
        }
        for a in [
            P::Drop,
            P::AffinityReduce,
            P::DropRefused,
            P::GeoMigrate,
            P::GeoReplicate,
            P::LoadMigrate,
            P::LoadReplicate,
        ] {
            assert_eq!(P::from_tag(a.as_str()), Some(a));
        }
        assert_eq!(B::from_tag("mystery"), None);
        assert_eq!(F::from_tag(""), None);
        assert_eq!(R::from_tag("reset"), None);
        assert_eq!(P::from_tag("replicate"), None);
        assert_eq!(format!("{}", B::LeastRequested), "least-requested");
    }

    #[test]
    fn brief_is_single_line() {
        let line = sample().brief();
        assert!(!line.contains('\n'));
        assert!(line.contains("#7"), "{line}");
        assert!(line.contains("host 5"), "{line}");
    }
}
