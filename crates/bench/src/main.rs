//! `experiments` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick|--tiny] [--seed N] [--out DIR] <command>...
//!
//! commands: table1 fig6 fig7 fig8a fig8b table2 fig9 baselines
//!           ablation-constant ablation-thresholds ablation-period
//!           demand-shift all
//! ```
//!
//! Default scale is the paper's Table 1 (10 000 objects, 40 req/s per
//! node, 3 000 simulated seconds); `--quick` runs a reduced scale for
//! smoke-testing and `--tiny` the unit-test scale (used by
//! `scripts/check.sh` to regenerate `BENCH_policies.json` cheaply).
//! `--out DIR` additionally writes each series as CSV.

use radar_bench::experiments::{self, Harness};
use radar_bench::ExpConfig;

const COMMANDS: &[&str] = &[
    "table1",
    "fig6",
    "fig7",
    "fig8a",
    "fig8b",
    "table2",
    "fig9",
    "baselines",
    "ablation-constant",
    "ablation-thresholds",
    "ablation-period",
    "demand-shift",
    "updates",
    "policies",
    "redirectors",
    "heterogeneous",
    "links",
    "storage",
    "variance",
    "faults",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::full();
    let mut commands: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                let seed = cfg.seed;
                let out = cfg.out_dir.clone();
                cfg = ExpConfig::quick();
                cfg.seed = seed;
                cfg.out_dir = out;
            }
            "--tiny" => {
                let seed = cfg.seed;
                let out = cfg.out_dir.clone();
                cfg = ExpConfig::tiny();
                cfg.seed = seed;
                cfg.out_dir = out;
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                cfg.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--out needs a directory"));
                cfg.out_dir = Some(v.into());
            }
            "--help" | "-h" => usage(""),
            cmd if COMMANDS.contains(&cmd) || cmd == "all" => commands.push(cmd.to_string()),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if commands.is_empty() {
        usage("no command given");
    }
    if commands.iter().any(|c| c == "all") {
        commands = COMMANDS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!(
        "scale: {} objects, {} req/s per node, {}s simulated, seed {}",
        cfg.num_objects, cfg.node_rate, cfg.duration, cfg.seed
    );
    let start = std::time::Instant::now();
    let mut harness = Harness::new(cfg);
    if commands.len() > 1 {
        harness.preload_parallel();
    }
    for cmd in &commands {
        let output = run_command(&mut harness, cmd);
        println!("{output}");
    }
    eprintln!("total wall time: {:?}", start.elapsed());
}

fn run_command(h: &mut Harness, cmd: &str) -> String {
    match cmd {
        "table1" => experiments::table1(h),
        "fig6" => experiments::fig6(h),
        "fig7" => experiments::fig7(h),
        "fig8a" => experiments::fig8a(h),
        "fig8b" => experiments::fig8b(h),
        "table2" => experiments::table2(h),
        "fig9" => experiments::fig9(h),
        "baselines" => experiments::baselines(h),
        "ablation-constant" => experiments::ablation_constant(h),
        "ablation-thresholds" => experiments::ablation_thresholds(h),
        "ablation-period" => experiments::ablation_period(h),
        "demand-shift" => experiments::demand_shift(h),
        "updates" => experiments::updates(h),
        "policies" => experiments::policies(h),
        "redirectors" => experiments::redirectors(h),
        "heterogeneous" => experiments::heterogeneous(h),
        "links" => experiments::links(h),
        "storage" => experiments::storage(h),
        "variance" => experiments::variance(h),
        "faults" => experiments::faults(h),
        other => unreachable!("validated command {other}"),
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: experiments [--quick|--tiny] [--seed N] [--out DIR] <command>...\n\
         commands: {} all",
        COMMANDS.join(" ")
    );
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
