//! A minimal micro-benchmark driver for the `benches/` targets.
//!
//! Each bench target is a plain `harness = false` binary: it builds a
//! [`Bench`] from its command line and registers closures. Run normally
//! (`cargo bench`), each closure is auto-calibrated to a measurable
//! iteration count and its per-iteration time printed; run with `--test`
//! (as `scripts/check.sh` does), every closure executes exactly once so
//! the benches are smoke-tested without paying measurement time.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
pub use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Measurement time the calibration loop aims for per benchmark.
const TARGET: Duration = Duration::from_millis(50);
/// Upper bound on the iteration count, for degenerate sub-ns closures.
const MAX_ITERS: u64 = 1 << 24;

/// The benchmark driver: registers and times named closures.
#[derive(Debug)]
pub struct Bench {
    test_only: bool,
}

impl Bench {
    /// Builds a driver from the process arguments; `--test` switches to
    /// single-iteration smoke mode (other flags are ignored).
    pub fn from_args() -> Self {
        Self {
            test_only: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Times `f`, doubling the iteration count until the measurement
    /// window is long enough, and prints ns/iteration.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if self.test_only || elapsed >= TARGET || iters >= MAX_ITERS {
                report(name, elapsed, iters, self.test_only);
                return;
            }
            iters *= 2;
        }
    }

    /// Like [`bench`](Self::bench) but rebuilds fresh state via `setup`
    /// before every iteration, timing only `routine`.
    pub fn bench_batched<S>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S),
    ) {
        let mut iters = 1u64;
        loop {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let state = setup();
                let start = Instant::now();
                routine(state);
                elapsed += start.elapsed();
            }
            if self.test_only || elapsed >= TARGET || iters >= MAX_ITERS {
                report(name, elapsed, iters, self.test_only);
                return;
            }
            iters *= 2;
        }
    }
}

/// Process-wide allocator-call count (allocs plus reallocs) since
/// start, maintained by [`CountingAlloc`].
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Process-wide bytes requested from the allocator since start.
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Per-thread mirrors of the global counters, so [`CountingAlloc::measure`]
    // is immune to allocator traffic on other threads (e.g. parallel
    // tests). `const`-initialized Cells: reading or bumping them never
    // allocates, which keeps the allocator hooks re-entrancy-free.
    static TL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A counting wrapper over the system allocator, for allocation-budget
/// tests and the `throughput` bench. Install it with
/// `#[global_allocator]`; it delegates every call to [`System`] and
/// only bumps two counters, so instrumented binaries behave identically
/// apart from the bookkeeping.
///
/// This workspace takes no external dependencies, so the counting is
/// hand-rolled here rather than pulled from a crate.
pub struct CountingAlloc;

/// Allocator activity observed across one [`CountingAlloc::measure`]
/// call, on the calling thread only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocator calls that obtained memory (`alloc` + `realloc`).
    pub allocations: u64,
    /// Bytes requested by those calls.
    pub bytes: u64,
}

impl CountingAlloc {
    /// Allocator calls made by the whole process so far. Zero unless
    /// the running binary installed [`CountingAlloc`] as its
    /// `#[global_allocator]`.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Bytes requested from the allocator by the whole process so far.
    pub fn allocated_bytes() -> u64 {
        ALLOCATED_BYTES.load(Ordering::Relaxed)
    }

    /// Runs `f` and reports how much allocator traffic it generated on
    /// this thread (work `f` moves to other threads is not counted).
    pub fn measure<R>(f: impl FnOnce() -> R) -> (AllocDelta, R) {
        let before = (TL_ALLOCATIONS.get(), TL_BYTES.get());
        let result = f();
        let delta = AllocDelta {
            allocations: TL_ALLOCATIONS.get() - before.0,
            bytes: TL_BYTES.get() - before.1,
        };
        (delta, result)
    }
}

// One of the workspace's two sanctioned `unsafe` sites (next to the
// SPSC ring in `radar_simcore::spsc`): a `GlobalAlloc` impl is an
// unsafe trait, and this one only counts and delegates.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        TL_ALLOCATIONS.with(|c| c.set(c.get() + 1));
        TL_BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let grown = new_size.saturating_sub(layout.size()) as u64;
        ALLOCATED_BYTES.fetch_add(grown, Ordering::Relaxed);
        TL_ALLOCATIONS.with(|c| c.set(c.get() + 1));
        TL_BYTES.with(|c| c.set(c.get() + grown));
        System.realloc(ptr, layout, new_size)
    }
}

fn report(name: &str, elapsed: Duration, iters: u64, test_only: bool) {
    if test_only {
        println!("{name:<44} ok (smoke)");
    } else {
        let per_iter = elapsed.as_nanos() as f64 / iters as f64;
        println!("{name:<44} {per_iter:>14.1} ns/iter  ({iters} iters)");
    }
}

/// One per-event-type row of the loop-profile baseline written to
/// `BENCH_loop.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopRow {
    /// Event-loop handler label (e.g. `redirect`, `placement`).
    pub label: String,
    /// Events dispatched with this label over the profiled run.
    pub count: u64,
    /// Mean handler wall time per dispatch, in nanoseconds.
    pub mean_ns: f64,
    /// Slowest single dispatch, in nanoseconds.
    pub max_ns: u64,
}

/// Serializes the loop-profile baseline as the `BENCH_loop.json`
/// document: the generating configuration plus one object per handler
/// label with `count`/`mean_ns`/`max_ns`.
///
/// The JSON is hand-rolled (this workspace takes no external
/// dependencies) and emitted with keys in a fixed order so successive
/// baselines diff cleanly.
pub fn loop_baseline_json(config: &[(&str, String)], rows: &[LoopRow]) -> String {
    let mut out = String::from("{\n  \"config\": {");
    for (i, (key, value)) in config.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{key}\": {value}"));
    }
    out.push_str("},\n  \"handlers\": {\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}}}",
            row.label, row.count, row.mean_ns, row.max_ns
        ));
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// The whole-run measurement written to `BENCH_throughput.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Flight-recorder events the traced run emitted.
    pub events: u64,
    /// Events emitted per wall-clock second (best of the repetitions).
    pub events_per_sec: f64,
    /// Allocator calls over the whole run (deterministic per seed).
    pub allocations: u64,
    /// Allocator calls per emitted event.
    pub allocations_per_event: f64,
}

/// One point of the per-shard-count scaling curve appended to
/// `BENCH_throughput.json`: the same seed-42 workload replayed through
/// [`run_sharded`](../radar_sim/struct.Simulation.html#method.run_sharded)
/// at a fixed shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Worker shards the run was split across (1 = the serial loop).
    pub shards: usize,
    /// Events emitted per wall-clock second at this shard count.
    pub events_per_sec: f64,
}

impl ScalingRow {
    /// The JSON key this row is recorded and gated under, e.g.
    /// `shard2_events_per_sec`. Each shard count gets a distinct key so
    /// [`json_number`]'s first-occurrence lookup addresses each row
    /// unambiguously (and never collides with the serial
    /// `events_per_sec`, which keeps its leading quote in the needle).
    pub fn key(&self) -> String {
        format!("shard{}_events_per_sec", self.shards)
    }
}

/// Serializes the end-to-end throughput baseline as the
/// `BENCH_throughput.json` document, in the same hand-rolled fixed-key
/// style as [`loop_baseline_json`]. A non-empty `scaling` slice appends
/// a `"scaling"` section with one `shardN_events_per_sec` entry per
/// recorded shard count, and for every multi-shard count two derived
/// fields: `shardN_speedup_vs_serial` (that row's events/sec over the
/// 1-shard row's — the serial loop measured under identical
/// conditions) and `shardN_parallel_efficiency` (speedup over N, the
/// fraction of perfect linear scaling). Derived fields are documentary:
/// the regression gate reads only the `shardN_events_per_sec` keys.
pub fn throughput_baseline_json(
    config: &[(&str, String)],
    row: &ThroughputRow,
    scaling: &[ScalingRow],
) -> String {
    let mut out = String::from("{\n  \"config\": {");
    for (i, (key, value)) in config.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{key}\": {value}"));
    }
    out.push_str("},\n  \"throughput\": {\n");
    out.push_str(&format!("    \"events\": {},\n", row.events));
    out.push_str(&format!(
        "    \"events_per_sec\": {:.1},\n",
        row.events_per_sec
    ));
    out.push_str(&format!("    \"allocations\": {},\n", row.allocations));
    out.push_str(&format!(
        "    \"allocations_per_event\": {:.4}\n",
        row.allocations_per_event
    ));
    if scaling.is_empty() {
        out.push_str("  }\n}\n");
        return out;
    }
    out.push_str("  },\n  \"scaling\": {\n");
    let serial_eps = scaling
        .iter()
        .find(|p| p.shards == 1)
        .map(|p| p.events_per_sec)
        .unwrap_or(row.events_per_sec);
    for (i, point) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.1}",
            point.key(),
            point.events_per_sec
        ));
        if point.shards != 1 && serial_eps > 0.0 {
            let speedup = point.events_per_sec / serial_eps;
            out.push_str(&format!(
                ",\n    \"shard{n}_speedup_vs_serial\": {speedup:.4},\n    \
                 \"shard{n}_parallel_efficiency\": {:.4}",
                speedup / point.shards as f64,
                n = point.shards
            ));
        }
        out.push_str(if i + 1 < scaling.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Compares a fresh throughput measurement against the committed
/// `BENCH_throughput.json` document. Returns an error message when
/// events/sec regressed by more than `tolerance` (a fraction, e.g. 0.1
/// for 10%) or allocations/event grew by more than it — the regression
/// gate behind the `throughput` bench, `scripts/check.sh`, and CI.
/// A baseline missing either number gates nothing.
pub fn throughput_gate(previous: &str, row: &ThroughputRow, tolerance: f64) -> Result<(), String> {
    throughput_gate_with_scaling(previous, row, &[], tolerance)
}

/// Like [`throughput_gate`], but additionally checks every point of the
/// per-shard-count scaling curve: each fresh `shardN_events_per_sec`
/// must stay within `tolerance` of the committed value under the same
/// key. Shard counts absent from the baseline (or a baseline with no
/// scaling section at all) gate nothing, so the curve can grow new
/// points without a flag day.
pub fn throughput_gate_with_scaling(
    previous: &str,
    row: &ThroughputRow,
    scaling: &[ScalingRow],
    tolerance: f64,
) -> Result<(), String> {
    for point in scaling {
        let key = point.key();
        if let Some(old_eps) = json_number(previous, &key) {
            if point.events_per_sec < old_eps * (1.0 - tolerance) {
                return Err(format!(
                    "scaling regression at {} shards: {:.1} events/sec is more \
                     than {:.0}% below the baseline {:.1}",
                    point.shards,
                    point.events_per_sec,
                    tolerance * 100.0,
                    old_eps
                ));
            }
        }
    }
    throughput_gate_serial(previous, row, tolerance)
}

fn throughput_gate_serial(
    previous: &str,
    row: &ThroughputRow,
    tolerance: f64,
) -> Result<(), String> {
    if let Some(old_eps) = json_number(previous, "events_per_sec") {
        if row.events_per_sec < old_eps * (1.0 - tolerance) {
            return Err(format!(
                "throughput regression: {:.1} events/sec is more than {:.0}% below \
                 the baseline {:.1}",
                row.events_per_sec,
                tolerance * 100.0,
                old_eps
            ));
        }
    }
    if let Some(old_ape) = json_number(previous, "allocations_per_event") {
        if row.allocations_per_event > old_ape * (1.0 + tolerance) + 1e-9 {
            return Err(format!(
                "allocation regression: {:.4} allocations/event is more than {:.0}% above \
                 the baseline {:.4}",
                row.allocations_per_event,
                tolerance * 100.0,
                old_ape
            ));
        }
    }
    Ok(())
}

/// Extracts the number following `"key":` in a JSON document produced
/// by the baseline serializers above — enough of a parser for the
/// regression gates, which only read back their own output.
pub fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_baseline_json_is_well_formed() {
        let rows = vec![
            LoopRow {
                label: "placement".into(),
                count: 26,
                mean_ns: 5220.4,
                max_ns: 51650,
            },
            LoopRow {
                label: "redirect".into(),
                count: 398,
                mean_ns: 3340.0,
                max_ns: 33760,
            },
        ];
        let json = loop_baseline_json(&[("seed", "42".into()), ("objects", "64".into())], &rows);
        assert!(json.contains("\"seed\": 42"), "{json}");
        assert!(json.contains("\"redirect\": {\"count\": 398"), "{json}");
        assert!(json.contains("\"mean_ns\": 5220.4"), "{json}");
        // Balanced braces and a trailing newline keep the file friendly
        // to line-oriented diffing.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn loop_baseline_json_handles_empty_rows() {
        let json = loop_baseline_json(&[], &[]);
        assert!(json.contains("\"handlers\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn throughput_gate_accepts_equal_and_trips_on_regression() {
        let row = ThroughputRow {
            events: 1_000,
            events_per_sec: 900.0,
            allocations: 50,
            allocations_per_event: 0.05,
        };
        let same = throughput_baseline_json(&[], &row, &[]);
        assert!(throughput_gate(&same, &row, 0.1).is_ok());
        let mut slower = row.clone();
        slower.events_per_sec = 700.0; // >10% below 900
        assert!(throughput_gate(&same, &slower, 0.1).is_err());
        let mut leakier = row.clone();
        leakier.allocations_per_event = 0.06; // >10% above 0.05
        assert!(throughput_gate(&same, &leakier, 0.1).is_err());
        // Garbage baselines gate nothing.
        assert!(throughput_gate("not json", &slower, 0.1).is_ok());
    }

    #[test]
    fn scaling_gate_trips_per_shard_count() {
        let row = ThroughputRow {
            events: 1_000,
            events_per_sec: 900.0,
            allocations: 50,
            allocations_per_event: 0.05,
        };
        let curve = [
            ScalingRow {
                shards: 1,
                events_per_sec: 900.0,
            },
            ScalingRow {
                shards: 2,
                events_per_sec: 500.0,
            },
        ];
        let baseline = throughput_baseline_json(&[], &row, &curve);
        // Fresh numbers equal to the baseline pass.
        assert!(throughput_gate_with_scaling(&baseline, &row, &curve, 0.1).is_ok());
        // A regression at one shard count trips even when the serial
        // number and the other shard counts are healthy.
        let mut slower = curve.to_vec();
        slower[1].events_per_sec = 400.0; // >10% below 500
        let err = throughput_gate_with_scaling(&baseline, &row, &slower, 0.1).unwrap_err();
        assert!(err.contains("2 shards"), "{err}");
        // A shard count the baseline never recorded gates nothing.
        let novel = [ScalingRow {
            shards: 8,
            events_per_sec: 1.0,
        }];
        assert!(throughput_gate_with_scaling(&baseline, &row, &novel, 0.1).is_ok());
        // A baseline without a scaling section gates only the serial row.
        let bare = throughput_baseline_json(&[], &row, &[]);
        assert!(throughput_gate_with_scaling(&bare, &row, &slower, 0.1).is_ok());
    }

    #[test]
    fn throughput_baseline_json_round_trips() {
        let row = ThroughputRow {
            events: 16934,
            events_per_sec: 1_234_567.8,
            allocations: 420,
            allocations_per_event: 0.0248,
        };
        let json = throughput_baseline_json(&[("seed", "42".into())], &row, &[]);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json_number(&json, "events"), Some(16934.0));
        assert_eq!(json_number(&json, "events_per_sec"), Some(1_234_567.8));
        assert_eq!(json_number(&json, "allocations_per_event"), Some(0.0248));
        assert_eq!(json_number(&json, "missing"), None);
        assert_eq!(json_number("{\"x\": nope}", "x"), None);
    }

    #[test]
    fn throughput_baseline_json_with_scaling_round_trips() {
        let row = ThroughputRow {
            events: 100,
            events_per_sec: 1_000.0,
            allocations: 10,
            allocations_per_event: 0.1,
        };
        let curve = [
            ScalingRow {
                shards: 1,
                events_per_sec: 1_000.0,
            },
            ScalingRow {
                shards: 4,
                events_per_sec: 1_600.5,
            },
        ];
        let json = throughput_baseline_json(&[], &row, &curve);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"scaling\""), "{json}");
        // The serial key still resolves to the throughput section (the
        // shardN_ keys do not shadow it: the needle's leading quote
        // rules out substring hits inside them).
        assert_eq!(json_number(&json, "events_per_sec"), Some(1_000.0));
        assert_eq!(json_number(&json, "shard1_events_per_sec"), Some(1_000.0));
        assert_eq!(json_number(&json, "shard4_events_per_sec"), Some(1_600.5));
        assert_eq!(json_number(&json, "shard2_events_per_sec"), None);
    }

    #[test]
    fn scaling_section_derives_speedup_and_efficiency() {
        let row = ThroughputRow {
            events: 100,
            events_per_sec: 999.0, // NOT the serial reference: shard1 is
            allocations: 10,
            allocations_per_event: 0.1,
        };
        let curve = [
            ScalingRow {
                shards: 1,
                events_per_sec: 1_000.0,
            },
            ScalingRow {
                shards: 4,
                events_per_sec: 2_000.0,
            },
        ];
        let json = throughput_baseline_json(&[], &row, &curve);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // 2000/1000 = 2× on 4 shards = 50% of linear.
        assert_eq!(json_number(&json, "shard4_speedup_vs_serial"), Some(2.0));
        assert_eq!(json_number(&json, "shard4_parallel_efficiency"), Some(0.5));
        // The serial row itself carries no derived fields.
        assert!(!json.contains("shard1_speedup_vs_serial"), "{json}");
        // Derived keys must not confuse the per-shard gate lookups.
        assert_eq!(json_number(&json, "shard4_events_per_sec"), Some(2_000.0));
        assert!(throughput_gate_with_scaling(&json, &row, &curve, 0.1).is_ok());
    }

    #[test]
    fn counting_allocator_sees_boxed_allocations() {
        let (delta, b) = CountingAlloc::measure(|| Box::new([0u8; 4096]));
        assert!(delta.allocations >= 1, "{delta:?}");
        assert!(delta.bytes >= 4096, "{delta:?}");
        drop(b);
        let (delta, v) = CountingAlloc::measure(|| Vec::<u64>::with_capacity(8));
        assert_eq!(delta.allocations, 1, "{delta:?}");
        drop(v);
        // A no-op closure allocates nothing.
        let (delta, ()) = CountingAlloc::measure(|| {});
        assert_eq!(delta.allocations, 0, "{delta:?}");
    }

    /// Satellite of the allocation-free hot-path work: once the
    /// recorder's ring, candidate pool, and sink line buffer are warm,
    /// tracing a redirect `Decision` event — the hottest event type —
    /// performs zero heap allocations.
    #[test]
    fn traced_decision_event_records_without_allocating() {
        use radar_sim::obs::{
            CandidateSnapshot, DecisionBranch, DecisionEvent, Event, EventKind, Recorder,
        };
        let probe = |seq: u64| Event {
            seq,
            parent: Some(1),
            t: 2.5,
            queue_depth: 3,
            kind: EventKind::Decision(DecisionEvent {
                object: 7,
                gateway: 1,
                chosen: 4,
                branch: DecisionBranch::Closest,
                constant: 2.0,
                closest: Some(4),
                least: Some(5),
                unit_closest: Some(1.0),
                unit_least: Some(3.0),
                candidates: (0..8)
                    .map(|h| CandidateSnapshot {
                        host: h,
                        rcnt: 2,
                        aff: 1,
                        unit: 2.0,
                        distance: 3,
                    })
                    .collect(),
            }),
        };
        let mut recorder = Recorder::new(32).with_sink(Box::new(std::io::sink()));
        // Warm-up: fill the ring past capacity so eviction starts
        // recycling candidate buffers, and size the sink line buffer.
        for seq in 0..100 {
            recorder.record(&probe(seq));
        }
        let event = probe(1_000);
        let (delta, ()) = CountingAlloc::measure(|| {
            for _ in 0..1_000 {
                recorder.record(&event);
            }
        });
        assert_eq!(
            delta.allocations, 0,
            "steady-state decision tracing must not allocate: {delta:?}"
        );
    }

    /// Satellite: a warmed-up seed-42 traced run stays within a fixed
    /// allocation budget per placement epoch — the steady-state request
    /// path (redirects, host arrivals, completions, their events)
    /// contributes none, so total allocator traffic is bounded by the
    /// per-epoch placement work alone.
    #[test]
    fn seed42_steady_state_run_stays_within_allocation_budget() {
        use radar_sim::obs::{Recorder, SharedRecorder};
        use radar_sim::{Scenario, Simulation};
        let scenario = Scenario::builder()
            .num_objects(64)
            .node_request_rate(0.5)
            .duration(600.0)
            .seed(42)
            .build()
            .expect("valid scenario");
        let workload = crate::make_workload("zipf", 64, 42);
        // A ring small enough to fill during warm-up: steady state for
        // the recorder is the evicting regime, where decision candidate
        // buffers recycle instead of being freshly cloned. (Filling a
        // larger ring costs one allocation per slot — bounded by the
        // ring capacity, not by the run length.)
        let recorder = SharedRecorder::from_recorder(Recorder::new(4_096));
        let mut sim = Simulation::new(scenario, workload);
        sim.attach_observer(Box::new(recorder.clone()));
        // Warm-up: two full placement rounds, so every scratch buffer,
        // cache slot, and per-host structure has reached steady state.
        sim.run_until(250.0);
        let before = recorder.with(|r| r.len() as u64 + r.evicted());
        let (delta, ()) = CountingAlloc::measure(|| sim.run_until(450.0));
        let events = recorder.with(|r| r.len() as u64 + r.evicted()) - before;
        // The 200 s window covers two placement rounds (period 100 s)
        // across 53 hosts = 106 placement epochs, and roughly 5 300
        // traced requests. The budget is per-epoch placement work plus
        // slack; the request path must contribute ~nothing, so the
        // ratio stays far below one allocation per event.
        assert!(events > 10_000, "window saw only {events} events");
        let per_epoch = delta.allocations as f64 / 106.0;
        assert!(
            per_epoch <= 25.0,
            "placement epochs exceed their allocation budget: \
             {delta:?} over 106 epochs = {per_epoch:.1} per epoch"
        );
        let per_event = delta.allocations as f64 / events as f64;
        assert!(
            per_event < 0.15,
            "steady state allocates too much: {} allocations over \
             {events} events = {per_event:.3} per event",
            delta.allocations
        );
    }
}
